//! workload_drill — the YCSB-style mixes and the surrogate-model DHT
//! scenario, on both execution engines.
//!
//! For each of the four standard mixes (`kvs_workloads::ycsb`) the drill
//! generates one seeded operation stream and runs the *same* arrival
//! schedule twice. The simulated world (`cluster::sim`, paper cost
//! model, simulated milliseconds) prices the read-path projection
//! (`expand_requests`): every leg shaped as a request, RMW as two
//! sequential rounds. The measured world lowers the stream to *typed*
//! legs (`lower_ops`) and issues them over loopback sockets through the
//! replicated write path (`NetMaster::run_mixed`): reads stay read
//! frames, updates and inserts become real LWW `Write` frames, RMWs a
//! single `Rmw` frame — no read-path emulation anywhere. Per-operation
//! latency re-aggregates the legs: scans take the max of their fan-out;
//! in the sim world an RMW is the sum of its two rounds, on the wire it
//! is its one frame. The two worlds' absolute latencies differ by
//! design — the simulator charges 2010-era Cassandra service times, the
//! sockets pay this machine's loopback — so the drill reports both
//! rather than asserting closeness; the acceptance cross-checks where
//! the comparison *is* apples-to-apples live in
//! `crates/net/tests/workload_mix.rs` (straggler p99) and the
//! consistency drill (`consistency_drill`, QUORUM p99 sim-vs-sockets).
//!
//! The surrogate-DHT scenario (`kvs_workloads::surrogate`) then runs the
//! same seeded walk against the RAM table and the durable tier,
//! reporting the hit-rate curve and the `ReadReceipt` disk-vs-cache
//! split as the table fills.
//!
//! Knobs (environment):
//! - `KVSCALE_WL_OPS` — operations per mix (default 1200)
//! - `KVSCALE_WL_KEYS` — initial keyspace size (default 256)
//! - `KVSCALE_WL_NODES` — slave servers (default 3)
//! - `KVSCALE_WL_GAP_NS` — open-loop arrival gap (default 250 µs)
//! - `KVSCALE_WL_SEED` — master seed (default 0xD87)
//!
//! Output: per-mix tables, `target/figures/workload_drill.csv` and the
//! schema-versioned `target/figures/BENCH_workloads.json`.

use kvs_bench::json::{self, int, num, obj, s, Value};
use kvs_bench::{banner, fmt_ms, Csv};
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::sim::run_query_paced;
use kvs_cluster::Consistency;
use kvs_cluster::{ClusterConfig, ClusterData};
use kvs_net::{
    spawn_local_cluster, MixedOp, MixedOutcome, MixedPlan, NetConfig, NetMaster, NetServerConfig,
    Route, WriteOptions,
};
use kvs_simcore::SimDuration;
use kvs_stages::{RequestTrace, Stage};
use kvs_store::{Cell, CostModel, PartitionKey, Table, TableOptions};
use kvs_workloads::surrogate::{run_surrogate, SurrogateConfig, SurrogateOutcome};
use kvs_workloads::ycsb::{
    expand_requests, generate_ops, lower_ops, max_keyspace, standard_mixes, Leg, LegKind, Op,
    OpKind,
};
use std::collections::HashMap;
use std::time::Instant;

const CELLS_PER_PARTITION: u64 = 32;
const KINDS: u8 = 4;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Re-aggregates the sim world's per-request latencies into
/// per-operation latencies: max over a fan-out (scan), sum over
/// sequential legs (RMW — the read-path projection prices it as two
/// rounds).
fn op_latencies_ms(ops: &[Op], op_of_request: &[usize], traces: &[RequestTrace]) -> Vec<f64> {
    let mut per_op = vec![0.0f64; ops.len()];
    for trace in traces {
        let req_ix = trace.request_id as usize;
        let op_ix = op_of_request[req_ix];
        let ms = trace.total().as_millis_f64();
        match ops[op_ix].kind {
            OpKind::ReadModifyWrite => per_op[op_ix] += ms,
            _ => per_op[op_ix] = per_op[op_ix].max(ms),
        }
    }
    per_op
}

/// Mean per-stage milliseconds of a run, in `Stage::ALL` order.
fn stage_means(report: &kvs_stages::StageReport) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    for (i, stage) in Stage::ALL.into_iter().enumerate() {
        if let Some(stats) = report.per_stage_ms.get(&stage) {
            out[i] = stats.mean();
        }
    }
    out
}

fn stages_obj(ms: &[f64; 4]) -> Value {
    obj(vec![
        ("master_to_slave", num(ms[0])),
        ("in_queue", num(ms[1])),
        ("in_db", num(ms[2])),
        ("slave_to_master", num(ms[3])),
    ])
}

fn world_obj(latencies: &[f64], stages: &[f64; 4], throughput_ops_s: f64) -> Value {
    obj(vec![
        ("latency", json::latency_summary_ms(latencies)),
        ("stages_ms", stages_obj(stages)),
        ("throughput_ops_s", num(throughput_ops_s)),
    ])
}

/// The measured world's JSON: latency plus the write-path counters that
/// replace the read-only stage breakdown (`run_mixed` coordinates at a
/// consistency level instead of tracing the four stages).
fn socket_world_obj(latencies: &[f64], mixed: &MixedOutcome, throughput_ops_s: f64) -> Value {
    obj(vec![
        ("latency", json::latency_summary_ms(latencies)),
        ("throughput_ops_s", num(throughput_ops_s)),
        ("reads", int(mixed.reads)),
        ("writes_acked", int(mixed.writes_acked)),
        ("stale_reads", int(mixed.stale_reads)),
        ("read_repairs", int(mixed.read_repairs)),
        ("busy_retries", int(mixed.busy_retries)),
    ])
}

/// Turns a typed leg into its mixed-plan operation. Every write carries
/// one fresh 16-byte cell in a clustering range far above the seeded
/// data, so legs never overwrite each other or the pre-loaded cells.
fn leg_op(leg_ix: usize, leg: &Leg) -> MixedOp {
    let cell = || {
        Cell::new(
            1_000_000 + leg_ix as u64,
            (leg_ix % KINDS as usize) as u8,
            vec![0x57; 16],
        )
    };
    match leg.kind {
        LegKind::Read => MixedOp::Read,
        LegKind::Write => MixedOp::Write {
            cells: vec![cell()],
        },
        LegKind::Rmw => MixedOp::Rmw {
            cells: vec![cell()],
        },
    }
}

/// Zips the mixed outcome's completion-ordered latencies back onto the
/// legs (the coordinator is closed-loop, so successful reads complete in
/// plan order and acked writes likewise), then re-aggregates per
/// operation: max over a scan's fan-out, single leg otherwise.
/// Requires a failure-free run — the drill asserts that.
fn op_latencies_from_mixed(ops: &[Op], legs: &[Leg], mixed: &MixedOutcome) -> Vec<f64> {
    let mut per_op = vec![0.0f64; ops.len()];
    let mut reads = mixed.read_latency_ms.iter();
    let mut writes = mixed.write_latency_ms.iter();
    for leg in legs {
        let ms = match leg.kind {
            LegKind::Read => *reads.next().expect("one read latency per read leg"),
            LegKind::Write | LegKind::Rmw => {
                *writes.next().expect("one write latency per write leg")
            }
        };
        per_op[leg.op_ix] = per_op[leg.op_ix].max(ms);
    }
    per_op
}

fn surrogate_obj(out: &SurrogateOutcome, wall_ms: f64) -> Value {
    let service: Vec<f64> = out.steps.iter().map(|s| s.service_ms).collect();
    // Decimate the curve so the JSON stays small at any step count.
    let stride = (out.hit_curve.len() / 32).max(1);
    let curve: Vec<Value> = out
        .hit_curve
        .iter()
        .step_by(stride)
        .map(|&h| num(h))
        .collect();
    obj(vec![
        ("steps", int(out.steps.len() as u64)),
        ("hits", int(out.hits)),
        ("misses", int(out.misses)),
        ("unique_keys", int(out.unique_keys)),
        ("hit_rate", num(out.hit_rate())),
        ("hit_rate_curve", Value::Arr(curve)),
        ("service", json::latency_summary_ms(&service)),
        ("simulated_total_ms", num(out.total_ms)),
        ("wall_ms", num(wall_ms)),
        ("disk_blocks_read", int(out.receipt.disk_blocks_read)),
        (
            "disk_block_cache_hits",
            int(out.receipt.disk_block_cache_hits),
        ),
        ("disk_bytes_read", int(out.receipt.disk_bytes_read)),
    ])
}

fn main() {
    let ops_per_mix = env_u64("KVSCALE_WL_OPS", 1_200).max(10);
    let initial_keys = env_u64("KVSCALE_WL_KEYS", 256).max(16);
    let nodes = env_u64("KVSCALE_WL_NODES", 3).clamp(1, 64) as u32;
    let gap_ns = env_u64("KVSCALE_WL_GAP_NS", 250_000).max(1);
    let seed = env_u64("KVSCALE_WL_SEED", 0xD87);
    banner(
        "workload_drill",
        "YCSB-style mixes on sim + sockets, surrogate-model DHT",
    );
    println!(
        "\n{ops_per_mix} ops/mix over {initial_keys}+ keys, {nodes} nodes, \
         arrivals every {} µs, seed {seed:#x}\n",
        gap_ns / 1_000
    );

    let keyspace = max_keyspace(initial_keys, ops_per_mix);
    let mut csv = Csv::new(
        "workload_drill",
        &[
            "mix",
            "world",
            "ops",
            "requests",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "throughput_ops_s",
        ],
    );
    let mut mix_results: Vec<Value> = Vec::new();

    for spec in standard_mixes() {
        let ops = generate_ops(&spec, initial_keys, ops_per_mix, seed);
        let requests = expand_requests(&ops);
        let op_of_request: Vec<usize> = requests.iter().map(|&(op, _)| op).collect();
        let keys: Vec<PartitionKey> = requests
            .iter()
            .map(|&(_, key)| PartitionKey::from_id(key))
            .collect();

        // --- Simulated world: paper cost model, same schedule. ---
        let mut cfg = ClusterConfig::paper_optimized_master(nodes).deterministic();
        cfg.replication_factor = 1;
        let mut sim_data = ClusterData::load(
            nodes,
            1,
            TableOptions::default(),
            uniform_partitions(keyspace, CELLS_PER_PARTITION, KINDS),
        );
        let arrivals_sim: Vec<SimDuration> = (0..keys.len() as u64)
            .map(|i| SimDuration::from_nanos(i * gap_ns))
            .collect();
        let sim = run_query_paced(&cfg, &mut sim_data, &keys, &arrivals_sim);
        let sim_lat = op_latencies_ms(&ops, &op_of_request, &sim.traces);
        let sim_tput = ops.len() as f64 / sim.makespan.as_secs_f64().max(1e-9);
        let sim_stages = stage_means(&sim.report);

        // --- Measured world: typed legs over loopback sockets through
        // the replicated write path, same arrival schedule. rf = 1, so
        // consistency ONE is also ALL; the point here is the real frame
        // kinds, not replication (consistency_drill sweeps rf and CL).
        let legs = lower_ops(&ops);
        let data = ClusterData::load(
            nodes,
            1,
            TableOptions::default(),
            uniform_partitions(keyspace, CELLS_PER_PARTITION, KINDS),
        );
        let (cluster, all_routes) =
            spawn_local_cluster(data, NetServerConfig::default()).expect("cluster boots");
        let route_of: HashMap<&[u8], &Route> =
            all_routes.iter().map(|r| (r.key.as_bytes(), r)).collect();
        let plans: Vec<MixedPlan> = legs
            .iter()
            .enumerate()
            .map(|(leg_ix, leg)| {
                let pk = PartitionKey::from_id(leg.key);
                let route = (*route_of.get(pk.as_bytes()).expect("key has a route")).clone();
                MixedPlan {
                    route,
                    op: leg_op(leg_ix, leg),
                    consistency: Consistency::One,
                }
            })
            .collect();
        let arrivals_ns: Vec<u64> = (0..plans.len() as u64).map(|i| i * gap_ns).collect();
        let mut master =
            NetMaster::connect(&cluster.addrs(), NetConfig::default()).expect("master connects");
        let mixed = master
            .run_mixed(&plans, Some(&arrivals_ns), &WriteOptions::default())
            .expect("socket run succeeds");
        master.shutdown();
        cluster.shutdown();
        assert_eq!(
            (mixed.reads_failed, mixed.writes_failed),
            (0, 0),
            "healthy loopback run must not fail legs: {mixed:?}"
        );
        let net_lat = op_latencies_from_mixed(&ops, &legs, &mixed);
        let net_tput = ops.len() as f64 / (mixed.makespan_ms / 1e3).max(1e-9);

        let pctl = |lat: &[f64], q: f64| {
            let mut v = lat.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
            kvs_simcore::stats::percentile_sorted(&v, q)
        };
        println!(
            "{:<18} sim     p50 {:>9}  p95 {:>9}  p99 {:>9}  ({:.0} ops/s simulated)",
            spec.name,
            fmt_ms(pctl(&sim_lat, 0.50)),
            fmt_ms(pctl(&sim_lat, 0.95)),
            fmt_ms(pctl(&sim_lat, 0.99)),
            sim_tput,
        );
        println!(
            "{:<18} sockets p50 {:>9}  p95 {:>9}  p99 {:>9}  ({:.0} ops/s measured, \
             {} writes acked)",
            "",
            fmt_ms(pctl(&net_lat, 0.50)),
            fmt_ms(pctl(&net_lat, 0.95)),
            fmt_ms(pctl(&net_lat, 0.99)),
            net_tput,
            mixed.writes_acked,
        );
        for (world, lat, tput, nreq) in [
            ("sim", &sim_lat, sim_tput, requests.len()),
            ("sockets", &net_lat, net_tput, legs.len()),
        ] {
            csv.row(&[
                &spec.name,
                &world,
                &ops.len(),
                &nreq,
                &format!("{:.4}", pctl(lat, 0.50)),
                &format!("{:.4}", pctl(lat, 0.95)),
                &format!("{:.4}", pctl(lat, 0.99)),
                &format!("{tput:.0}"),
            ]);
        }
        mix_results.push(obj(vec![
            ("name", s(spec.name)),
            ("distribution", s(spec.dist.name())),
            ("ops", int(ops.len() as u64)),
            ("requests", int(requests.len() as u64)),
            ("legs", int(legs.len() as u64)),
            ("sim", world_obj(&sim_lat, &sim_stages, sim_tput)),
            ("sockets", socket_world_obj(&net_lat, &mixed, net_tput)),
        ]));
    }

    // --- Surrogate-model DHT: RAM table, then the durable tier. ---
    let scfg = SurrogateConfig::smoke();
    let cost = CostModel::paper_cassandra().deterministic();
    println!(
        "\nsurrogate DHT: {} steps over a {}^{} grid, kernel {} on a miss",
        scfg.steps,
        scfg.grid.cells_per_dim,
        scfg.grid.dims,
        fmt_ms(scfg.compute_ms)
    );

    let mut ram_table = Table::with_defaults();
    let ram_start = Instant::now();
    let ram = run_surrogate(&scfg, &mut ram_table, &cost, seed);
    let ram_wall_ms = ram_start.elapsed().as_secs_f64() * 1_000.0;

    let dir = kvs_store::TempDir::new("workload-surrogate");
    let (mut durable_table, _) = kvs_store::DurableTable::open(
        dir.path(),
        kvs_store::DurableOptions {
            fsync: kvs_store::FsyncPolicy::Never,
            ..kvs_store::DurableOptions::default()
        },
    )
    .expect("open durable surrogate store");
    let durable_start = Instant::now();
    let durable = run_surrogate(&scfg, &mut durable_table, &cost, seed);
    let durable_wall_ms = durable_start.elapsed().as_secs_f64() * 1_000.0;
    drop(durable_table);

    assert_eq!(
        ram.hits, durable.hits,
        "the two backends disagree on the hit sequence"
    );
    for (label, out, wall) in [
        ("ram", &ram, ram_wall_ms),
        ("durable", &durable, durable_wall_ms),
    ] {
        println!(
            "  {label:<8} hit-rate {:.1}% ({} hits / {} misses, {} unique keys), \
             first window {:.2} → last {:.2}, wall {}",
            out.hit_rate() * 100.0,
            out.hits,
            out.misses,
            out.unique_keys,
            out.hit_curve.first().copied().unwrap_or(0.0),
            out.hit_curve.last().copied().unwrap_or(0.0),
            fmt_ms(wall),
        );
    }

    json::write_report(&json::report(
        "workloads",
        obj(vec![
            ("ops_per_mix", int(ops_per_mix)),
            ("initial_keys", int(initial_keys)),
            ("provisioned_keys", int(keyspace)),
            ("cells_per_partition", int(CELLS_PER_PARTITION)),
            ("nodes", int(nodes as u64)),
            ("arrival_gap_ns", int(gap_ns)),
            ("seed", int(seed)),
            (
                "surrogate",
                obj(vec![
                    ("dims", int(scfg.grid.dims as u64)),
                    ("cells_per_dim", int(scfg.grid.cells_per_dim)),
                    ("steps", int(scfg.steps)),
                    ("walk_step", num(scfg.walk_step)),
                    ("jump_probability", num(scfg.jump_probability)),
                    ("compute_ms", num(scfg.compute_ms)),
                ]),
            ),
        ]),
        obj(vec![
            ("mixes", Value::Arr(mix_results)),
            (
                "surrogate",
                obj(vec![
                    ("ram", surrogate_obj(&ram, ram_wall_ms)),
                    ("durable", surrogate_obj(&durable, durable_wall_ms)),
                ]),
            ),
        ]),
    ))
    .expect("write BENCH_workloads.json");
    csv.finish();
}
