//! Figure 5 — performance after reducing the master bottleneck (Kryo-like
//! codec: 150 → 19 µs per message).
//!
//! Paper reading: fine-grained becomes almost linear and is the fastest
//! workload from 4 nodes up; with 8 nodes medium-grained carries ≈16 %
//! imbalance vs ≈4 % for fine-grained, which cancels fine's single-node
//! handicap — "even in this simple case, a one-size-fit-all solution does
//! not exist".

use kvs_bench::{banner, elements_from_env, fmt_ms, fmt_pct, Csv, PAPER_NODE_COUNTS};
use kvscale::workloads::DataModel;
use kvscale::Study;

fn main() {
    let elements = elements_from_env();
    banner(
        "Figure 5",
        "performance with the optimized master (19 µs/msg)",
    );
    let study = Study::new(elements);
    let table = study.scalability(&DataModel::ALL, &PAPER_NODE_COUNTS);

    let mut csv = Csv::new(
        "fig05",
        &[
            "model",
            "nodes",
            "observed_ms",
            "ideal_ms",
            "balanced_ms",
            "overhead_vs_ideal",
            "load_excess",
            "bottleneck",
        ],
    );
    println!(
        "{:<16} {:>5} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "model", "nodes", "observed", "ideal", "balanced", "vs ideal", "excess"
    );
    for cell in &table.cells {
        println!(
            "{:<16} {:>5} {:>10} {:>10} {:>10} {:>9} {:>9}",
            cell.model.label(),
            cell.nodes,
            fmt_ms(cell.observed_ms),
            fmt_ms(cell.ideal_ms),
            fmt_ms(cell.balanced_ms),
            fmt_pct(cell.overhead_vs_ideal()),
            fmt_pct(cell.load_excess),
        );
        csv.row(&[
            &cell.model.label(),
            &cell.nodes,
            &format!("{:.2}", cell.observed_ms),
            &format!("{:.2}", cell.ideal_ms),
            &format!("{:.2}", cell.balanced_ms),
            &format!("{:.4}", cell.overhead_vs_ideal()),
            &format!("{:.4}", cell.load_excess),
            &format!("{:?}", cell.bottleneck),
        ]);
    }

    // The crossover the paper highlights: who is fastest at each size?
    println!("\nfastest model per cluster size:");
    for &nodes in &PAPER_NODE_COUNTS {
        let winner = DataModel::ALL
            .iter()
            .filter_map(|&m| table.get(m, nodes).map(|c| (m, c.observed_ms)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("cells present");
        println!(
            "  {:>2} nodes: {} ({})",
            nodes,
            winner.0.label(),
            fmt_ms(winner.1)
        );
    }
    println!("\nReading: with the master fixed, fine-grained scales nearly linearly and");
    println!("overtakes the coarser models as the cluster grows — granularity wins");
    println!("shift with cluster size, so no one-size-fits-all exists.");
    csv.finish();
}
