//! Extension — master/slave vs sharded masters vs peer-to-peer, by the
//! numbers (the §I design question, quantified with the §VII machinery).

use kvs_bench::{banner, elements_from_env, fmt_ms, Csv};
use kvs_model::architecture::{architecture_sweep, evaluate, shards_to_unbind, Architecture};
use kvs_model::SystemModel;

fn main() {
    let elements = elements_from_env() as f64;
    banner(
        "Extension §I",
        "architecture comparison: single master / sharded masters / peer-to-peer",
    );
    let model = SystemModel::paper_optimized();
    let nodes: Vec<u64> = vec![16, 32, 64, 128, 256];
    let rows = architecture_sweep(&model, elements, &nodes, 1.5);

    let mut csv = Csv::new(
        "ext_architecture",
        &[
            "nodes",
            "single_ms",
            "sharded4_ms",
            "p2p_ms",
            "single_dispatch_bound",
        ],
    );
    println!(
        "\n{:>6} {:>13} {:>15} {:>13}  single dispatch-bound?",
        "nodes", "single master", "4 sharded masters", "peer-to-peer"
    );
    for (n, single, sharded, p2p) in &rows {
        println!(
            "{:>6} {:>13} {:>15} {:>13}  {}",
            n,
            fmt_ms(single.total_ms()),
            fmt_ms(sharded.total_ms()),
            fmt_ms(p2p.total_ms()),
            if single.dispatch_bound() { "YES" } else { "no" }
        );
        csv.row(&[
            n,
            &format!("{:.2}", single.total_ms()),
            &format!("{:.2}", sharded.total_ms()),
            &format!("{:.2}", p2p.total_ms()),
            &single.dispatch_bound(),
        ]);
    }

    // The §V-B story retold through the model: the slow master needs
    // sharding even at 16 nodes; the optimized one doesn't.
    println!("\nhow many dispatchers does the fine-grained query need?");
    for (label, m) in [
        ("slow master (150 µs/msg)", SystemModel::paper_slow()),
        (
            "optimized master (19 µs/msg)",
            SystemModel::paper_optimized(),
        ),
    ] {
        match shards_to_unbind(&m, 10_000.0, 100.0, 16) {
            Some(s) => println!("  {label:<30} → {s} shards to stop binding"),
            None => println!("  {label:<30} → a single master suffices"),
        }
    }

    // P2P sensitivity: at what per-message overhead does p2p stop paying?
    println!("\npeer-to-peer overhead sensitivity (64 nodes, optimal partitioning):");
    for overhead in [1.0f64, 1.5, 2.0, 4.0, 8.0] {
        let opt = kvs_model::optimize_partitions(&model, elements, 64);
        let p = evaluate(
            &model,
            Architecture::PeerToPeer {
                clients: 64,
                overhead_factor: overhead,
            },
            opt.partitions as f64,
            opt.cells_per_partition,
            64,
        );
        println!(
            "  overhead ×{overhead:<4} → {:>10}  ({}-bound)",
            fmt_ms(p.total_ms()),
            if p.dispatch_bound() {
                "dispatch"
            } else {
                "data"
            }
        );
    }
    // Cross-check in the simulator (not just the model): the sharded
    // master is a first-class `ClusterConfig` capability.
    println!("\nsimulator cross-check (fine-grained 10k keys, slow master, 16 nodes):");
    use kvs_cluster::{run_query, ClusterConfig, ClusterData};
    use kvs_store::TableOptions;
    use kvscale::workloads::DataModel;
    let partitions = DataModel::Fine.build_partitions(elements as u64, 4);
    let keys: Vec<kvs_store::PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    for shards in [1usize, 2, 4, 8] {
        let mut data = ClusterData::load(16, 1, TableOptions::default(), partitions.clone());
        let mut cfg = ClusterConfig::paper_slow_master(16);
        cfg.master_shards = shards;
        let result = run_query(&cfg, &mut data, &keys);
        println!(
            "  {shards} master shard(s): makespan {:>9}  issue span {:>9}  bottleneck {:?}",
            fmt_ms(result.makespan.as_millis_f64()),
            fmt_ms(result.issue_span.as_millis_f64()),
            result.report.bottleneck,
        );
    }

    println!("\nReading: sharding the master buys headroom at the §VIII (GFS-style)");
    println!("complexity cost; p2p removes the dispatch ceiling entirely but only");
    println!("while its per-message overhead stays moderate — the quantified version");
    println!("of the paper's opening trade-off.");
    csv.finish();
}
