//! Figure 7 — speed-up of parallel queries versus row size.
//!
//! Replays the paper's 20-group stratified sweep (500-cell bands, each
//! queried at parallelism 1..64), records the best speed-up per band and
//! the parallelism that achieved it, and fits the logarithmic Formula 7.
//!
//! Paper reference: small rows peak at 32-way, medium at 16, large at 8;
//! the fit is `12.562 − 1.084·ln(s)`.

use kvs_bench::{banner, Csv};
use kvs_cluster::{db_microbench, ClusterConfig, ClusterData};
use kvs_model::regression::fit_loglinear;
use kvs_simcore::RngHub;
use kvs_store::{PartitionKey, TableOptions};
use kvs_workloads::sampling::{figure7_groups, partitions_with_sizes};

const PARALLELISMS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn main() {
    banner("Figure 7", "speed-up of parallel queries vs row size");
    let hub = RngHub::new(0xF167);
    let mut rng = hub.stream("fig7");
    let groups = figure7_groups(20, 500, 8, &mut rng);
    let cfg = ClusterConfig::paper_optimized_master(1).calibration();

    let mut csv = Csv::new(
        "fig07",
        &["group", "mean_cells", "best_speedup", "best_parallelism"],
    );
    let mut sizes_for_fit = Vec::new();
    let mut speedups_for_fit = Vec::new();
    println!(
        "\n{:>6} {:>12} {:>13} {:>17}",
        "group", "mean cells", "best speedup", "best parallelism"
    );
    for (g, sizes) in groups.iter().enumerate() {
        let parts = partitions_with_sizes(sizes, 4);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        let jobs: Vec<PartitionKey> = keys.iter().cycle().take(256).cloned().collect();
        let mut data = ClusterData::load(1, 1, TableOptions::default(), parts);
        let baseline = db_microbench(&cfg, &mut data, &jobs, 1, &format!("fig7-{g}")).total_ms;
        let mut best = (1.0f64, 1usize);
        for &k in &PARALLELISMS[1..] {
            let t = db_microbench(&cfg, &mut data, &jobs, k, &format!("fig7-{g}")).total_ms;
            if t > 0.0 && baseline / t > best.0 {
                best = (baseline / t, k);
            }
        }
        let mean_cells = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        println!(
            "{:>6} {:>12.0} {:>13.2} {:>17}",
            g, mean_cells, best.0, best.1
        );
        csv.row(&[
            &g,
            &format!("{mean_cells:.0}"),
            &format!("{:.3}", best.0),
            &best.1,
        ]);
        sizes_for_fit.push(mean_cells);
        speedups_for_fit.push(best.0);
    }

    let fit = fit_loglinear(&sizes_for_fit, &speedups_for_fit).expect("fit");
    println!(
        "\nlog fit (this run): speedup ≈ {:.3} {:+.3}·ln(s)   (R² = {:.3})",
        fit.a, fit.b, fit.r2
    );
    println!("paper's Formula 7 : speedup ≈ 12.562 −1.084·ln(s)");
    println!("\nReading: larger rows extract less parallel speed-up, and their optimal");
    println!("concurrency shifts down (≈32 → 16 → 8), matching the paper's two trends.");
    csv.finish();
}
