//! Figure 9 — the optimal number of rows per cluster size and the
//! predicted time at that optimum.
//!
//! Paper reading: "the optimizer increases the number of rows when there
//! are more nodes … willing to sacrifice some of the database efficiency
//! in exchange for a better work distribution". (The paper quotes ≈3 300
//! rows at one node; solving its published Formulas 6+7 exactly puts the
//! single-node optimum near 6 000 rows with a very flat objective — both
//! are reported here.)

use kvs_bench::{banner, elements_from_env, fmt_ms, Csv};
use kvs_model::{optimize_partitions, SystemModel};

fn main() {
    let elements = elements_from_env() as f64;
    banner(
        "Figure 9",
        "optimal number of rows and predicted time per cluster size",
    );
    let model = SystemModel::paper_optimized();

    let mut csv = Csv::new(
        "fig09",
        &[
            "nodes",
            "optimal_rows",
            "cells_per_row",
            "predicted_ms",
            "master_ms",
            "slave_ms",
        ],
    );
    println!(
        "\n{:>6} {:>13} {:>14} {:>12} {:>10} {:>10}",
        "nodes", "optimal rows", "cells per row", "predicted", "master", "slaves"
    );
    for nodes in 1..=16u64 {
        let opt = optimize_partitions(&model, elements, nodes);
        println!(
            "{:>6} {:>13} {:>14.0} {:>12} {:>10} {:>10}",
            nodes,
            opt.partitions,
            opt.cells_per_partition,
            fmt_ms(opt.total_ms()),
            fmt_ms(opt.prediction.master_ms),
            fmt_ms(opt.prediction.slave_ms),
        );
        csv.row(&[
            &nodes,
            &opt.partitions,
            &format!("{:.1}", opt.cells_per_partition),
            &format!("{:.2}", opt.total_ms()),
            &format!("{:.2}", opt.prediction.master_ms),
            &format!("{:.2}", opt.prediction.slave_ms),
        ]);
    }

    let at_3300 = model.predict_for_total(elements, 3_300.0, 1).total_ms();
    let opt1 = optimize_partitions(&model, elements, 1);
    println!(
        "\nsingle-node check: paper's 3 300 rows predict {} — within {:.1}% of the formula optimum ({} rows, {})",
        fmt_ms(at_3300),
        (at_3300 / opt1.total_ms() - 1.0) * 100.0,
        opt1.partitions,
        fmt_ms(opt1.total_ms()),
    );
    // Cross-check: run the optimizer's recommendation and the paper's
    // fixed granularities in the *simulator* at 8 nodes.
    let nodes = 8u32;
    let opt8 = optimize_partitions(&model, elements, nodes as u64);
    println!("\nsimulator cross-check at {nodes} nodes (noise + GC on):");
    let study = kvscale::Study::new(elements as u64);
    let mut best: Option<(u64, f64)> = None;
    for parts in [100u64, 1_000, 3_300, opt8.partitions, 10_000] {
        let result = study.run_custom(parts, nodes);
        let ms = result.makespan.as_millis_f64();
        println!(
            "  {parts:>6} rows → {:>9}{}",
            fmt_ms(ms),
            if parts == opt8.partitions {
                "   <- optimizer's choice"
            } else {
                ""
            }
        );
        if best.map(|(_, b)| ms < b).unwrap_or(true) {
            best = Some((parts, ms));
        }
    }
    let (best_parts, _) = best.expect("ran candidates");
    println!(
        "  fastest in the simulator: {best_parts} rows{}",
        if best_parts == opt8.partitions {
            " — the optimizer's pick"
        } else {
            " (within noise of the optimizer's pick — the objective is flat)"
        }
    );

    println!("\nReading: the optimal row count grows with the cluster — the optimizer");
    println!("trades database efficiency for workload balance as nodes are added.");
    csv.finish();
}
