//! Figure 4 — stage profile patterns: medium-grained vs fine-grained on 16
//! nodes with the slow master.
//!
//! The paper reads the two profiles as opposites: medium-grained queues
//! deeply at the database (Cassandra is the weak link, and the imbalanced
//! node F dictates the time), while fine-grained shows an empty queue and
//! idle holes in the database — the master cannot issue fast enough.

use kvs_bench::{banner, elements_from_env, fmt_ms, Csv};
use kvs_stages::Stage;
use kvscale::workloads::DataModel;
use kvscale::Study;

fn main() {
    let elements = elements_from_env();
    banner(
        "Figure 4",
        "profile patterns: medium-grained and fine-grained — slow master, 16 nodes",
    );
    let study = Study::with_slow_master(elements);
    let mut csv = Csv::new(
        "fig04",
        &[
            "model", "stage", "mean_ms", "max_ms", "total_ms", "requests",
        ],
    );
    for model in [DataModel::Fine, DataModel::Medium] {
        let (result, gantt) = study.profile(model, 16);
        println!("\n--- {} ---", model.label());
        println!("{gantt}");
        println!("stage summary:");
        println!(
            "{:>18} {:>10} {:>10} {:>12}",
            "stage", "mean", "max", "total(all rq)"
        );
        for stage in Stage::ALL {
            if let Some(stats) = result.report.per_stage_ms.get(&stage) {
                println!(
                    "{:>18} {:>10} {:>10} {:>12}",
                    stage.name(),
                    fmt_ms(stats.mean()),
                    fmt_ms(stats.max()),
                    fmt_ms(stats.sum()),
                );
                csv.row(&[
                    &model.label(),
                    &stage.name(),
                    &format!("{:.3}", stats.mean()),
                    &format!("{:.3}", stats.max()),
                    &format!("{:.3}", stats.sum()),
                    &stats.count(),
                ]);
            }
        }
        println!(
            "makespan {}   master issue span {}   db idle gap {}",
            fmt_ms(result.makespan.as_millis_f64()),
            fmt_ms(result.issue_span.as_millis_f64()),
            fmt_ms(result.report.db_idle_gap_ms),
        );
        println!("classified bottleneck: {:?}", result.report.bottleneck);
    }
    println!("\nReading: fine-grained's in-queue stage is nearly empty and its DB shows");
    println!("idle gaps while the master issues for the whole run (master-bound);");
    println!("medium-grained piles time into in-queue (database-bound + imbalance).");
    csv.finish();
}
