//! consistency_drill — the consistency–latency–staleness grid of the
//! replicated write path, measured and mirrored.
//!
//! For every cell of rf ∈ {2, 3} × consistency ∈ {ONE, QUORUM, ALL} the
//! drill replays the *same* seeded 50/50 read/write schedule twice:
//!
//! * **sockets** — a 3-node loopback cluster behind per-node
//!   [`ChaosProxy`]s injecting seeded master→slave delay faults, driven
//!   through the replicated write path (`NetMaster::run_mixed`);
//! * **sim** — `kvs_cluster::replication::run_replicated`, the
//!   deterministic mirror, fed leg-latency samples harvested from a
//!   healthy (passthrough-proxied) calibration run plus the same delay
//!   fault parameters.
//!
//! The PCAP-style story the grid tells: ONE acks fast and serves stale
//! reads while a delayed replica lags; QUORUM's overlapping majorities
//! keep acknowledged writes visible at a latency set by the 2nd-fastest
//! replica; ALL reads are never stale but pay the slowest leg. The drill
//! asserts the structural invariants (ALL staleness = 0 in both worlds,
//! no failed operations, no acknowledged-write loss in the mirror) and
//! the acceptance gate: sim and sockets agree on QUORUM write p99 within
//! 25% relative error at both replication factors.
//!
//! RMWs are exercised by `workload_drill` and the robustness tests, not
//! here: the mirror prices an RMW as two sequential rounds while the
//! wire sends one `Rmw` frame, so mixing them would blur the
//! apples-to-apples latency comparison this drill exists to make.
//!
//! Knobs (environment):
//! - `KVSCALE_CONS_OPS` — operations per cell (default 600)
//! - `KVSCALE_CONS_PARTITIONS` — partitions (default 24)
//! - `KVSCALE_CONS_GAP_NS` — open-loop arrival gap (default 2 ms)
//! - `KVSCALE_CONS_DELAY_MS` — injected delay (default 20 ms)
//! - `KVSCALE_CONS_DELAY_PCT` — per-frame delay probability (default 12)
//! - `KVSCALE_CONS_SEED` — master seed (default 0xC0515)
//!
//! Output: a per-cell table, `target/figures/consistency_drill.csv` and
//! the schema-versioned `target/figures/BENCH_consistency.json`.

use kvs_bench::json::{self, int, num, obj, s, Value};
use kvs_bench::{banner, fmt_ms, Csv};
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{
    replication, ClusterData, Consistency, DelayFault, ReplicationOutcome, ReplicationSimConfig,
    SimOp, SimOpKind,
};
use kvs_net::{
    spawn_local_cluster, wrap_cluster, ChaosDirection, ChaosRule, ChaosSchedule, FaultAction,
    MixedOp, MixedOutcome, MixedPlan, NetConfig, NetMaster, NetServerConfig, Route, WriteOptions,
};
use kvs_store::{Cell, TableOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const NODES: u32 = 3;
const CELLS_PER_PARTITION: u64 = 8;
const KINDS: u8 = 4;
const CALIBRATION_OPS: usize = 200;
const QUORUM_P99_REL_ERR: f64 = 0.25;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One op of the seeded schedule, world-agnostic.
#[derive(Debug, Clone, Copy)]
struct DrillOp {
    partition: u64,
    write: bool,
}

/// The seeded 50/50 read/write schedule every cell replays.
fn schedule(ops: usize, partitions: u64, seed: u64) -> Vec<DrillOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_5C11D);
    (0..ops)
        .map(|_| DrillOp {
            partition: rng.gen_range(0..partitions),
            write: rng.gen_bool(0.5),
        })
        .collect()
}

fn net_cfg() -> NetConfig {
    NetConfig {
        timeout: Duration::from_millis(250),
        ..NetConfig::default()
    }
}

/// Lowers the schedule to mixed plans against a spawned cluster's routes.
fn plans_for(sched: &[DrillOp], routes: &[Route], cl: Consistency) -> Vec<MixedPlan> {
    sched
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let route = routes[op.partition as usize].clone();
            let op = if op.write {
                MixedOp::Write {
                    // Fresh clustering keys far above the seed data, so
                    // writes accumulate instead of overwriting.
                    cells: vec![Cell::new(
                        2_000_000 + i as u64,
                        (i % KINDS as usize) as u8,
                        vec![0xC5; 16],
                    )],
                }
            } else {
                MixedOp::Read
            };
            MixedPlan {
                route,
                op,
                consistency: cl,
            }
        })
        .collect()
}

/// Runs one socket-world cell: spawn, wrap in chaos proxies, drive the
/// schedule, tear down.
fn socket_cell(
    sched: &[DrillOp],
    partitions: u64,
    rf: usize,
    cl: Consistency,
    gap_ns: u64,
    schedules: Vec<ChaosSchedule>,
) -> MixedOutcome {
    let data = ClusterData::load(
        NODES,
        rf,
        TableOptions::default(),
        uniform_partitions(partitions, CELLS_PER_PARTITION, KINDS),
    );
    let (cluster, routes) =
        spawn_local_cluster(data, NetServerConfig::default()).expect("cluster boots");
    let (proxies, proxied) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies spawn");
    let mut master = NetMaster::connect(&proxied, net_cfg()).expect("master connects");
    let plans = plans_for(sched, &routes, cl);
    let arrivals: Vec<u64> = (0..plans.len() as u64).map(|i| i * gap_ns).collect();
    let out = master
        .run_mixed(&plans, Some(&arrivals), &WriteOptions::default())
        .expect("mixed run succeeds");
    master.shutdown();
    for proxy in proxies {
        proxy.shutdown();
    }
    cluster.shutdown();
    out
}

/// Runs the deterministic mirror on the same schedule.
fn sim_cell(
    sched: &[DrillOp],
    rf: usize,
    cl: Consistency,
    gap_ns: u64,
    seed: u64,
    legs: &[f64],
    delay: DelayFault,
) -> ReplicationOutcome {
    let cfg = ReplicationSimConfig {
        nodes: NODES as usize,
        rf,
        seed,
        leg_latency_ms: legs.to_vec(),
        delay: Some(delay),
        down: Vec::new(),
        hint_queue_cap: 1024,
    };
    let gap_ms = gap_ns as f64 / 1e6;
    let ops: Vec<SimOp> = sched
        .iter()
        .enumerate()
        .map(|(i, op)| SimOp {
            at_ms: i as f64 * gap_ms,
            partition: op.partition,
            kind: if op.write {
                SimOpKind::Write
            } else {
                SimOpKind::Read
            },
            consistency: cl,
        })
        .collect();
    replication::run_replicated(&cfg, &ops)
}

fn p99(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    kvs_simcore::stats::percentile_sorted(&v, 0.99)
}

fn stale_fraction(stale: u64, reads: u64) -> f64 {
    if reads == 0 {
        0.0
    } else {
        stale as f64 / reads as f64
    }
}

fn world_obj(
    writes: &[f64],
    reads: &[f64],
    stale: f64,
    counters: Vec<(&'static str, Value)>,
) -> Value {
    let mut fields = vec![
        ("writes", json::latency_summary_ms(writes)),
        ("reads", json::latency_summary_ms(reads)),
        ("stale_read_fraction", num(stale)),
    ];
    fields.extend(counters);
    obj(fields)
}

fn main() {
    let ops = env_u64("KVSCALE_CONS_OPS", 600).max(50) as usize;
    let partitions = env_u64("KVSCALE_CONS_PARTITIONS", 24).clamp(4, 4096);
    let gap_ns = env_u64("KVSCALE_CONS_GAP_NS", 2_000_000).max(1);
    let delay_ms = env_u64("KVSCALE_CONS_DELAY_MS", 20).max(1);
    let delay_pct = env_u64("KVSCALE_CONS_DELAY_PCT", 12).clamp(1, 90);
    let seed = env_u64("KVSCALE_CONS_SEED", 0xC0515);
    let delay_p = delay_pct as f64 / 100.0;
    banner(
        "consistency_drill",
        "ONE/QUORUM/ALL under seeded delay faults, sim vs sockets",
    );
    println!(
        "\n{ops} ops/cell over {partitions} partitions, {NODES} nodes, arrivals every \
         {} µs, delay {delay_ms} ms at {delay_pct}% (master→slave), seed {seed:#x}\n",
        gap_ns / 1_000
    );

    let sched = schedule(ops, partitions, seed);
    let writes_in_sched = sched.iter().filter(|o| o.write).count();

    // --- Calibration: a healthy rf = 1 run through passthrough proxies
    // harvests the leg-latency pool the mirror samples from. Proxies stay
    // in the loop so the calibrated legs include the extra hop the faulty
    // cells also pay.
    let passthrough: Vec<ChaosSchedule> = (0..NODES as u64)
        .map(|n| ChaosSchedule::passthrough(seed ^ n))
        .collect();
    let cal_sched = schedule(CALIBRATION_OPS, partitions, seed ^ 0xCA11B);
    let cal = socket_cell(
        &cal_sched,
        partitions,
        1,
        Consistency::One,
        200_000,
        passthrough,
    );
    assert_eq!(
        (cal.reads_failed, cal.writes_failed),
        (0, 0),
        "calibration must be failure-free: {cal:?}"
    );
    let mut legs: Vec<f64> = Vec::new();
    legs.extend_from_slice(&cal.read_latency_ms);
    legs.extend_from_slice(&cal.write_latency_ms);
    println!(
        "calibration: {} legs harvested, p99 {}\n",
        legs.len(),
        fmt_ms(p99(&legs))
    );

    let delay = DelayFault {
        probability: delay_p,
        extra_ms: delay_ms as f64,
    };
    let mut csv = Csv::new(
        "consistency_drill",
        &[
            "rf",
            "consistency",
            "world",
            "write_p99_ms",
            "read_p99_ms",
            "stale_fraction",
            "writes_acked",
            "read_repairs",
        ],
    );
    let mut cells: Vec<Value> = Vec::new();
    let mut quorum_errs: Vec<(usize, f64)> = Vec::new();

    for rf in [2usize, 3] {
        for cl in [Consistency::One, Consistency::Quorum, Consistency::All] {
            let schedules: Vec<ChaosSchedule> = (0..NODES as u64)
                .map(|n| ChaosSchedule {
                    seed: seed ^ (rf as u64) << 8 ^ n,
                    rules: vec![ChaosRule {
                        direction: ChaosDirection::ToSlave,
                        action: FaultAction::Delay(Duration::from_millis(delay_ms)),
                        probability: delay_p,
                        after_frame: 0,
                        until_frame: None,
                    }],
                    blackhole_from: None,
                })
                .collect();
            let sock = socket_cell(&sched, partitions, rf, cl, gap_ns, schedules);
            assert_eq!(
                (sock.reads_failed, sock.writes_failed),
                (0, 0),
                "rf {rf} {} must be failure-free under delay-only faults: {sock:?}",
                cl.name()
            );
            assert_eq!(sock.writes_acked as usize, writes_in_sched);
            let sim = sim_cell(&sched, rf, cl, gap_ns, seed, &legs, delay);
            assert_eq!(sim.lost_acked_writes, 0, "the mirror never loses acks");
            assert_eq!(sim.writes_acked as usize, writes_in_sched);

            let sock_stale = stale_fraction(sock.stale_reads, sock.reads);
            let sim_stale = stale_fraction(sim.stale_reads, sim.reads);
            if cl == Consistency::All {
                assert_eq!(
                    (sock.stale_reads, sim.stale_reads),
                    (0, 0),
                    "ALL reads cover every replica and can never be stale"
                );
            }
            let (sock_wp99, sock_rp99) = (p99(&sock.write_latency_ms), p99(&sock.read_latency_ms));
            let (sim_wp99, sim_rp99) = (p99(&sim.write_latency_ms), p99(&sim.read_latency_ms));
            if cl == Consistency::Quorum {
                let rel = (sim_wp99 - sock_wp99).abs() / sock_wp99.max(1e-9);
                quorum_errs.push((rf, rel));
            }
            println!(
                "rf {rf} {:<6} sockets  write p99 {:>9}  read p99 {:>9}  stale {:>5.1}%  \
                 repairs {}",
                cl.name(),
                fmt_ms(sock_wp99),
                fmt_ms(sock_rp99),
                sock_stale * 100.0,
                sock.read_repairs,
            );
            println!(
                "     {:<6} sim      write p99 {:>9}  read p99 {:>9}  stale {:>5.1}%  \
                 repairs {}",
                "",
                fmt_ms(sim_wp99),
                fmt_ms(sim_rp99),
                sim_stale * 100.0,
                sim.read_repairs,
            );
            for (world, wp99, rp99, stale, acked, repairs) in [
                (
                    "sockets",
                    sock_wp99,
                    sock_rp99,
                    sock_stale,
                    sock.writes_acked,
                    sock.read_repairs,
                ),
                (
                    "sim",
                    sim_wp99,
                    sim_rp99,
                    sim_stale,
                    sim.writes_acked,
                    sim.read_repairs,
                ),
            ] {
                csv.row(&[
                    &rf,
                    &cl.name(),
                    &world,
                    &format!("{wp99:.4}"),
                    &format!("{rp99:.4}"),
                    &format!("{stale:.4}"),
                    &acked,
                    &repairs,
                ]);
            }
            cells.push(obj(vec![
                ("rf", int(rf as u64)),
                ("consistency", s(cl.name())),
                (
                    "sockets",
                    world_obj(
                        &sock.write_latency_ms,
                        &sock.read_latency_ms,
                        sock_stale,
                        vec![
                            ("writes_acked", int(sock.writes_acked)),
                            ("stale_reads", int(sock.stale_reads)),
                            ("divergent_reads", int(sock.divergent_reads)),
                            ("read_repairs", int(sock.read_repairs)),
                            ("hints_queued", int(sock.hints_queued)),
                            ("busy_retries", int(sock.busy_retries)),
                        ],
                    ),
                ),
                (
                    "sim",
                    world_obj(
                        &sim.write_latency_ms,
                        &sim.read_latency_ms,
                        sim_stale,
                        vec![
                            ("writes_acked", int(sim.writes_acked)),
                            ("stale_reads", int(sim.stale_reads)),
                            ("divergent_reads", int(sim.divergent_reads)),
                            ("read_repairs", int(sim.read_repairs)),
                            ("hints_queued", int(sim.hints_queued)),
                            ("lost_acked_writes", int(sim.lost_acked_writes)),
                        ],
                    ),
                ),
            ]));
        }
    }

    // --- Acceptance gate: the mirror and the sockets agree on QUORUM
    // write p99 at both replication factors.
    println!();
    let mut agreement: Vec<Value> = Vec::new();
    for (rf, rel) in &quorum_errs {
        println!("QUORUM write-p99 sim-vs-sockets relative error at rf {rf}: {rel:.3}");
        agreement.push(obj(vec![
            ("rf", int(*rf as u64)),
            ("write_p99_rel_err", num(*rel)),
            ("bound", num(QUORUM_P99_REL_ERR)),
        ]));
        assert!(
            *rel <= QUORUM_P99_REL_ERR,
            "QUORUM p99 disagreement at rf {rf}: {rel:.3} > {QUORUM_P99_REL_ERR}"
        );
    }

    json::write_report(&json::report(
        "consistency",
        obj(vec![
            ("ops_per_cell", int(ops as u64)),
            ("partitions", int(partitions)),
            ("nodes", int(NODES as u64)),
            ("replication_factors", Value::Arr(vec![int(2), int(3)])),
            ("arrival_gap_ns", int(gap_ns)),
            ("delay_ms", int(delay_ms)),
            ("delay_probability", num(delay_p)),
            ("seed", int(seed)),
            ("calibration_ops", int(CALIBRATION_OPS as u64)),
        ]),
        obj(vec![
            (
                "calibration",
                obj(vec![
                    ("legs", int(legs.len() as u64)),
                    ("leg_latency", json::latency_summary_ms(&legs)),
                ]),
            ),
            ("cells", Value::Arr(cells)),
            ("quorum_agreement", Value::Arr(agreement)),
        ]),
    ))
    .expect("write BENCH_consistency.json");
    csv.finish();
}
