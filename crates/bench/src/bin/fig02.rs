//! Figure 2 — operations per node vs. sub-query time (coarse-grained on
//! 16 nodes).
//!
//! Top: number of requests each node served; bottom: the duration of each
//! request on each node. The paper's observations: the two are strongly
//! correlated; the node with the most requests finishes last and dictates
//! the query time; the most loaded node served 10 of 100 keys (43 % above
//! the perfect ⌈100/16⌉ = 7).

use kvs_bench::{banner, elements_from_env, fmt_ms, Csv};
use kvs_stages::Stage;
use kvscale::workloads::DataModel;
use kvscale::Study;

fn main() {
    let elements = elements_from_env();
    banner(
        "Figure 2",
        "operations per node vs sub-query time — coarse, 16 nodes",
    );
    let study = Study::with_slow_master(elements);
    let result = study.run(DataModel::Coarse, 16);

    let mut csv = Csv::new(
        "fig02",
        &["node", "request_id", "cells", "subquery_ms", "finish_ms"],
    );
    println!("\nper-node requests (top chart):");
    let per_node = result.requests_per_node();
    let max_node = per_node
        .iter()
        .max_by_key(|(_, &c)| c)
        .map(|(&n, _)| n)
        .expect("non-empty");
    for (&node, &count) in per_node {
        let bar: String = "#".repeat(count as usize);
        let mark = if node == max_node {
            "  <- most loaded"
        } else {
            ""
        };
        println!(
            "  node {:>2} | {:<12} {}{}",
            node_name(node),
            bar,
            count,
            mark
        );
    }
    let mean = per_node.values().sum::<u64>() as f64 / per_node.len() as f64;
    let max = *per_node.values().max().expect("non-empty");
    println!(
        "\nmost loaded node: {max} requests vs mean {mean:.2} → {:.0}% excess",
        (max as f64 / mean - 1.0) * 100.0
    );

    println!("\nsub-query durations (bottom chart):");
    println!(
        "{:>6} {:>9} {:>11} {:>11}",
        "node", "requests", "mean", "max"
    );
    let mut per_node_durations: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
    for t in &result.traces {
        // Sub-query time at the slave: queue + database.
        let ms = (t.stage_duration(Stage::InQueue) + t.stage_duration(Stage::InDb)).as_millis_f64();
        per_node_durations.entry(t.node).or_default().push(ms);
        let finish = t
            .completed_at()
            .map(|c| c.as_millis_f64())
            .unwrap_or(f64::NAN);
        csv.row(&[
            &t.node,
            &t.request_id,
            &t.cells,
            &format!("{ms:.2}"),
            &format!("{finish:.2}"),
        ]);
    }
    for (node, durations) in &per_node_durations {
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        let max = durations.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:>6} {:>9} {:>11} {:>11}",
            node_name(*node),
            durations.len(),
            fmt_ms(mean),
            fmt_ms(max)
        );
    }

    // The paper's headline: the slowest node is the most loaded one.
    let last_node = result
        .report
        .node_finish_ms
        .iter()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(&n, _)| n)
        .expect("non-empty");
    println!(
        "\nquery completes when node {} finishes; most loaded node is {} — {}",
        node_name(last_node),
        node_name(max_node),
        if last_node == max_node {
            "they coincide, as the paper observes"
        } else {
            "they differ in this draw (variance; the paper notes the correlation is strong, not exact)"
        }
    );
    println!(
        "total query time: {}",
        fmt_ms(result.makespan.as_millis_f64())
    );
    csv.finish();
}

fn node_name(node: u32) -> String {
    kvscale::balance::NodeId(node).to_string()
}
