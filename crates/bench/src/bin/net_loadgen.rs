//! net_loadgen — open-loop Poisson load over the TCP master/slave engine.
//!
//! Boots a loopback cluster (`kvs-net`), releases requests at exponential
//! inter-arrival times (an open-loop generator: arrivals don't wait for
//! completions), and reports per-request latency percentiles plus the
//! paper's four-stage breakdown for both codecs. Afterwards it calibrates
//! `t_msg` on this machine and re-runs the Figure 11 master-saturation
//! sweep with the *measured* constants instead of the paper's.
//!
//! Knobs (environment):
//! - `KVSCALE_NET_REQUESTS` — requests per codec run (default 4000)
//! - `KVSCALE_NET_RATE` — offered load, requests/second (default 4000)
//! - `KVSCALE_NET_NODES` — slave servers (default 4)
//!
//! Flags:
//! - `--chaos <schedule.toml>` — route every connection through a
//!   [`kvs_net::ChaosProxy`] running the given fault schedule (format in
//!   `docs/NET.md`), so the percentiles in `target/figures/` describe the
//!   degraded mode. Replication is raised to 2 so injected faults are
//!   survivable.
//!
//! Output: a table per codec and `target/figures/net_loadgen.csv`.

use kvs_bench::json::{self, int, num, obj, s, Value};
use kvs_bench::{banner, elements_from_env, fmt_ms, Csv};
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{ClusterData, Codec};
use kvs_model::limits::{master_crossover, master_limit_sweep};
use kvs_model::{DbModel, SystemModel};
use kvs_net::{
    calibrate_t_msg, spawn_local_cluster, wrap_cluster, ChaosSchedule, NetConfig, NetMaster,
    NetServerConfig,
};
use kvs_simcore::stats::percentile_sorted;
use kvs_stages::Stage;
use kvs_store::TableOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses `--chaos <schedule.toml>` from argv; exits on a bad file.
fn chaos_from_args() -> Option<ChaosSchedule> {
    let args: Vec<String> = std::env::args().collect();
    let ix = args.iter().position(|a| a == "--chaos")?;
    let path = args.get(ix + 1).unwrap_or_else(|| {
        eprintln!("--chaos needs a schedule file argument");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read chaos schedule {path}: {e}");
        std::process::exit(2);
    });
    match ChaosSchedule::parse(&text) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("bad chaos schedule {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let requests = env_u64("KVSCALE_NET_REQUESTS", 4_000).max(1) as usize;
    let rate_rps = env_f64("KVSCALE_NET_RATE", 4_000.0).max(1.0);
    let nodes = env_u64("KVSCALE_NET_NODES", 4).clamp(1, 64) as u32;
    let chaos = chaos_from_args();
    banner(
        "net_loadgen",
        "open-loop Poisson load on the TCP master/slave engine",
    );
    println!(
        "\n{requests} requests/codec at {rate_rps:.0} req/s over {nodes} loopback slave servers\n"
    );
    if let Some(s) = &chaos {
        println!(
            "chaos mode: seed {}, {} rule(s), blackhole {:?} — rf=2, degraded percentiles\n",
            s.seed,
            s.rules.len(),
            s.blackhole_from
        );
    }

    // One Poisson arrival process, shared by both codec runs so they see
    // identical offered load.
    let mut rng = StdRng::seed_from_u64(0xD8);
    let exp = Exp::new(rate_rps / 1e9).expect("positive rate"); // per-ns rate
    let mut arrivals_ns = Vec::with_capacity(requests);
    let mut t = 0.0f64;
    for _ in 0..requests {
        t += exp.sample(&mut rng);
        arrivals_ns.push(t as u64);
    }

    let mut csv = Csv::new(
        "net_loadgen",
        &[
            "codec",
            "requests",
            "offered_rps",
            "achieved_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "master_to_slave_ms",
            "in_queue_ms",
            "in_db_ms",
            "slave_to_master_ms",
            "busy_retries",
            "timeout_retries",
            "chaos",
            "faults_injected",
            "failovers",
        ],
    );

    let mut codec_results: Vec<Value> = Vec::new();
    for codec in [Codec::verbose(), Codec::compact()] {
        // Under chaos, replicate so injected faults are survivable and
        // shorten the failure-detection timeout so the run stays brisk.
        let rf = if chaos.is_some() {
            2.min(nodes as usize)
        } else {
            1
        };
        let data = ClusterData::load(
            nodes,
            rf,
            TableOptions::default(),
            uniform_partitions(1_024, 32, 4),
        );
        let (cluster, routes) =
            spawn_local_cluster(data, NetServerConfig::default()).expect("cluster boots");
        let mut proxies = Vec::new();
        let addrs = match &chaos {
            Some(schedule) => {
                let schedules = vec![schedule.clone(); cluster.len()];
                let (p, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
                proxies = p;
                addrs
            }
            None => cluster.addrs(),
        };
        let net_cfg = NetConfig {
            codec,
            timeout: if chaos.is_some() {
                std::time::Duration::from_millis(250)
            } else {
                NetConfig::default().timeout
            },
            max_retries: if chaos.is_some() {
                3
            } else {
                NetConfig::default().max_retries
            },
            ..NetConfig::default()
        };
        let mut master = NetMaster::connect(&addrs, net_cfg).expect("master connects");

        let keys: Vec<_> = routes.iter().cycle().take(requests).cloned().collect();
        let report = master
            .run_with_arrivals(&keys, Some(&arrivals_ns))
            .expect("load run succeeds");
        master.shutdown();
        let mut faults_injected = 0u64;
        for p in proxies {
            let s = p.shutdown();
            faults_injected += s.delayed
                + s.dropped
                + s.duplicated
                + s.truncated
                + s.corrupted
                + s.disconnects
                + s.blackholed;
            assert_eq!(s.seq_regressions, 0, "master send sequence regressed");
        }
        let queue = cluster.shutdown();

        let mut latencies: Vec<f64> = report
            .result
            .traces
            .iter()
            .filter(|t| t.is_complete())
            .map(|t| t.total().as_millis_f64())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let (p50, p95, p99) = (
            percentile_sorted(&latencies, 0.50),
            percentile_sorted(&latencies, 0.95),
            percentile_sorted(&latencies, 0.99),
        );
        let achieved_rps = requests as f64 / report.result.makespan.as_secs_f64().max(1e-9);

        println!(
            "{:?} codec: makespan {}  achieved {:.0} req/s  queue max depth {}  \
             retries {} busy / {} timeout",
            codec.kind,
            report.result.makespan,
            achieved_rps,
            queue.max_depth,
            report.busy_retries,
            report.timeout_retries,
        );
        if chaos.is_some() {
            println!(
                "    chaos: {} fault(s) injected, {} failover(s), retry wait {:.1} ms, \
                 suspected dead {:?}",
                faults_injected, report.failovers, report.retry_wait_ms, report.suspected_dead
            );
        }
        println!(
            "    latency p50 {}  p95 {}  p99 {}",
            fmt_ms(p50),
            fmt_ms(p95),
            fmt_ms(p99)
        );
        let mut stage_ms = [0.0f64; 4];
        for (i, stage) in Stage::ALL.into_iter().enumerate() {
            if let Some(stats) = report.result.report.per_stage_ms.get(&stage) {
                stage_ms[i] = stats.mean();
                println!(
                    "    {:>18}: mean {:>9.3} ms   max {:>9.3} ms",
                    stage.name(),
                    stats.mean(),
                    stats.max()
                );
            }
        }
        println!();
        csv.row(&[
            &format!("{:?}", codec.kind),
            &requests,
            &format!("{rate_rps:.0}"),
            &format!("{achieved_rps:.0}"),
            &format!("{p50:.4}"),
            &format!("{p95:.4}"),
            &format!("{p99:.4}"),
            &format!("{:.4}", stage_ms[0]),
            &format!("{:.4}", stage_ms[1]),
            &format!("{:.4}", stage_ms[2]),
            &format!("{:.4}", stage_ms[3]),
            &report.busy_retries,
            &report.timeout_retries,
            &(if chaos.is_some() { "on" } else { "off" }),
            &faults_injected,
            &report.failovers,
        ]);
        codec_results.push(obj(vec![
            ("codec", s(&format!("{:?}", codec.kind))),
            ("achieved_rps", num(achieved_rps)),
            ("latency", json::latency_summary_ms(&latencies)),
            (
                "stages_ms",
                obj(vec![
                    ("master_to_slave", num(stage_ms[0])),
                    ("in_queue", num(stage_ms[1])),
                    ("in_db", num(stage_ms[2])),
                    ("slave_to_master", num(stage_ms[3])),
                ]),
            ),
            ("busy_retries", int(report.busy_retries)),
            ("timeout_retries", int(report.timeout_retries)),
            ("faults_injected", int(faults_injected)),
            ("failovers", int(report.failovers)),
        ]));
    }

    json::write_report(&json::report(
        "net",
        obj(vec![
            ("requests", int(requests as u64)),
            ("offered_rps", num(rate_rps)),
            ("nodes", int(nodes as u64)),
            ("chaos", Value::Bool(chaos.is_some())),
        ]),
        obj(vec![("codecs", Value::Arr(codec_results))]),
    ))
    .expect("write BENCH_net.json");

    // §V-B on this machine, then Figure 11 with the measured constants.
    println!("t_msg calibration (1 slave, 2000 messages):");
    let mut measured = None;
    for codec in [Codec::verbose(), Codec::compact()] {
        let cal = calibrate_t_msg(codec, 2_000).expect("calibration runs");
        println!(
            "    {:?}: t_msg {:>7.2} µs  (tx {:.2} + rx {:.2})",
            cal.codec,
            cal.t_msg_us(),
            cal.tx_us_per_msg,
            cal.rx_us_per_msg
        );
        measured = Some(cal);
    }
    let compact = measured.expect("compact calibration ran last");
    let model = SystemModel {
        master: compact.master_model(),
        db: DbModel::paper(),
        gc: None,
    };
    let node_counts: Vec<u64> = vec![1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256];
    let points = master_limit_sweep(&model, elements_from_env() as f64, &node_counts);
    println!("\nFigure 11 with the measured compact master:");
    println!(
        "{:>6} {:>13} {:>10} {:>10}  binding",
        "nodes", "optimal rows", "master", "total"
    );
    for p in &points {
        println!(
            "{:>6} {:>13} {:>10} {:>10}  {}",
            p.nodes,
            p.partitions,
            fmt_ms(p.master_ms),
            fmt_ms(p.total_ms),
            if p.master_bound() { "MASTER" } else { "db" }
        );
    }
    match master_crossover(&points) {
        Some(n) => println!("\nmeasured master overtakes the database at ≈{n} nodes"),
        None => println!("\nmeasured master never saturated in this sweep"),
    }
    csv.finish();
}
