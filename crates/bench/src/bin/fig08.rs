//! Figure 8 — observed versus predicted times (model validation).
//!
//! Bars: measured query times for the three data models across cluster
//! sizes; lines: the model's estimate and the GC-corrected estimate
//! (`dbModel+GC`). The paper: "The precision of the estimation is high …
//! The only correction we had to carry out was for policy coarse-grain".

use kvs_bench::{banner, elements_from_env, fmt_ms, fmt_pct, Csv, PAPER_NODE_COUNTS};
use kvs_model::validation::{mean_abs_error, validate, Observation};
use kvs_model::SystemModel;
use kvscale::workloads::DataModel;
use kvscale::Study;

fn main() {
    let elements = elements_from_env();
    banner(
        "Figure 8",
        "observed vs predicted time (dbModel and dbModel+GC)",
    );
    // Observations come from the simulator *with* its GC model enabled —
    // the analogue of the paper's JVM runs.
    let study = Study::new(elements);
    let mut observations = Vec::new();
    for model in DataModel::ALL {
        for &nodes in &PAPER_NODE_COUNTS {
            let result = study.run(model, nodes);
            observations.push(Observation {
                label: format!("{}/{}", model.label(), nodes),
                keys: model.partitions_for(elements) as f64,
                cells_per_key: model.cells_per_partition() as f64,
                nodes: nodes as u64,
                observed_ms: result.makespan.as_millis_f64(),
            });
        }
    }
    let model = SystemModel::paper_optimized();
    let rows = validate(&model, &observations);

    let mut csv = Csv::new(
        "fig08",
        &[
            "case",
            "observed_ms",
            "predicted_ms",
            "predicted_gc_ms",
            "error",
            "error_gc",
        ],
    );
    println!(
        "\n{:<24} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "case", "observed", "dbModel", "dbModel+GC", "err", "err+GC"
    );
    for r in &rows {
        println!(
            "{:<24} {:>10} {:>10} {:>12} {:>8} {:>8}",
            r.label,
            fmt_ms(r.observed_ms),
            fmt_ms(r.predicted_ms),
            fmt_ms(r.predicted_gc_ms),
            fmt_pct(r.error),
            fmt_pct(r.error_gc),
        );
        csv.row(&[
            &r.label,
            &format!("{:.2}", r.observed_ms),
            &format!("{:.2}", r.predicted_ms),
            &format!("{:.2}", r.predicted_gc_ms),
            &format!("{:.4}", r.error),
            &format!("{:.4}", r.error_gc),
        ]);
    }
    println!(
        "\nmean |error|: dbModel {:.1}%   dbModel+GC {:.1}%",
        mean_abs_error(&rows, false) * 100.0,
        mean_abs_error(&rows, true) * 100.0
    );
    let coarse_rows: Vec<_> = rows
        .iter()
        .filter(|r| r.label.starts_with("coarse"))
        .collect();
    let coarse_err: f64 =
        coarse_rows.iter().map(|r| r.error.abs()).sum::<f64>() / coarse_rows.len() as f64;
    let coarse_err_gc: f64 =
        coarse_rows.iter().map(|r| r.error_gc.abs()).sum::<f64>() / coarse_rows.len() as f64;
    println!(
        "coarse-grained only: dbModel {:.1}% → dbModel+GC {:.1}% (the paper's GC correction)",
        coarse_err * 100.0,
        coarse_err_gc * 100.0
    );
    csv.finish();
}
