//! Ablation — the garbage collector's share of each data model's time.
//!
//! Figure 8 needed a GC correction only for coarse-grained; this sweep
//! shows why, by running each data model with the GC model on and off.

use kvs_bench::{banner, elements_from_env, fmt_ms, Csv};
use kvscale::workloads::DataModel;
use kvscale::Study;

fn main() {
    let elements = elements_from_env().min(200_000); // enough to see the effect
    banner("Ablation", "JVM GC on/off per data model (8 nodes)");
    println!("dataset: {elements} elements\n");
    let mut with_gc = Study::new(elements);
    with_gc.config.db.cost = with_gc.config.db.cost.deterministic(); // isolate GC
    let mut without_gc = with_gc.clone();
    without_gc.config.gc.enabled = false;

    let mut csv = Csv::new(
        "ablation_gc",
        &["model", "gc_on_ms", "gc_off_ms", "gc_share"],
    );
    println!(
        "{:<16} {:>10} {:>10} {:>9}",
        "model", "GC on", "GC off", "GC share"
    );
    for model in DataModel::ALL {
        let on = with_gc.run(model, 8).makespan.as_millis_f64();
        let off = without_gc.run(model, 8).makespan.as_millis_f64();
        let share = (on - off) / on;
        println!(
            "{:<16} {:>10} {:>10} {:>8.1}%",
            model.label(),
            fmt_ms(on),
            fmt_ms(off),
            share * 100.0
        );
        csv.row(&[
            &model.label(),
            &format!("{on:.2}"),
            &format!("{off:.2}"),
            &format!("{share:.4}"),
        ]);
    }
    println!("\nReading: the collector taxes requests that materialize many cells —");
    println!("quadratic in row size — so coarse-grained pays an order of magnitude");
    println!("more than fine-grained, which doesn't notice it at all. That asymmetry");
    println!("is why the paper's model only needed its GC term for coarse (Figure 8).");
    csv.finish();
}
