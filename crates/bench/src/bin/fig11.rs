//! Figure 11 — load-distribution limits of a single master.
//!
//! Sweeps cluster sizes with the optimizer choosing the partition count at
//! each size and reports where the master's issue time crosses the
//! database's serving time ("with more than 70 servers, the master
//! requires more time to send the requests than the time the database
//! would need to serve them"), plus §VII's replica-selection arithmetic
//! (master saturating past ≈32 nodes).

use kvs_bench::{banner, elements_from_env, fmt_ms, Csv};
use kvs_model::limits::{master_crossover, master_limit_sweep, replica_selection_node_limit};
use kvs_model::SystemModel;

fn main() {
    let elements = elements_from_env() as f64;
    banner(
        "Figure 11",
        "single-master limits under random distribution",
    );
    let model = SystemModel::paper_optimized();
    let nodes: Vec<u64> = vec![1, 2, 4, 8, 16, 24, 32, 48, 64, 70, 96, 128, 192, 256];
    let points = master_limit_sweep(&model, elements, &nodes);

    let mut csv = Csv::new(
        "fig11",
        &[
            "nodes",
            "optimal_rows",
            "master_ms",
            "slave_ms",
            "total_ms",
            "master_bound",
        ],
    );
    println!(
        "\n{:>6} {:>13} {:>10} {:>10} {:>10}  binding",
        "nodes", "optimal rows", "master", "slaves", "total"
    );
    for p in &points {
        println!(
            "{:>6} {:>13} {:>10} {:>10} {:>10}  {}",
            p.nodes,
            p.partitions,
            fmt_ms(p.master_ms),
            fmt_ms(p.slave_ms),
            fmt_ms(p.total_ms),
            if p.master_bound() { "MASTER" } else { "db" }
        );
        csv.row(&[
            &p.nodes,
            &p.partitions,
            &format!("{:.2}", p.master_ms),
            &format!("{:.2}", p.slave_ms),
            &format!("{:.2}", p.total_ms),
            &p.master_bound(),
        ]);
    }
    match master_crossover(&points) {
        Some(n) => println!(
            "\nmaster overtakes the database at ≈{n} nodes (paper: ≈70 with its constants)"
        ),
        None => println!("\nmaster never saturated in this sweep"),
    }

    println!("\n§VII replica-selection arithmetic:");
    println!("  request duration 11 ms, 16-way per node, 19 µs/msg:");
    let limit = replica_selection_node_limit(11.0, 16, 19.0);
    println!(
        "  the master can feed at most ≈{limit} nodes (paper: \"with more than 32 nodes\n  the master will start to be the major performance bottleneck\")"
    );
    let slow_limit = replica_selection_node_limit(11.0, 16, 150.0);
    println!("  with the slow 150 µs master that limit is just {slow_limit} nodes.");
    csv.finish();
}
