//! chaos_drill — the PR's acceptance scenario as a runnable figure.
//!
//! Boots a 3-node, rf = 3 loopback cluster behind [`kvs_net::ChaosProxy`]
//! interposers, blackholes node 0 from the first byte (fixed seed), and
//! runs the aggregation query twice: once healthy (passthrough proxies)
//! and once degraded. It then replays the same failure in `cluster::sim`
//! with `NodeFailure` and reports how close the measured degradation
//! lands to the simulator's prediction — the cross-validation that ties
//! the TCP engine's failover behaviour back to the paper's model.
//!
//! Knobs (environment):
//! - `KVSCALE_DRILL_PARTITIONS` — partitions / requests (default 48)
//! - `KVSCALE_DRILL_CELLS` — values per partition (default 8)
//!
//! Output: a per-stage table for both runs and
//! `target/figures/chaos_drill.csv`.

use kvs_bench::{banner, fmt_ms, Csv};
use kvs_cluster::config::NodeFailure;
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::sim::run_query;
use kvs_cluster::{ClusterConfig, ClusterData, ReplicaPolicy};
use kvs_net::{
    spawn_local_cluster, wrap_cluster, ChaosSchedule, NetConfig, NetMaster, NetRunReport,
    NetServerConfig,
};
use kvs_simcore::SimDuration;
use kvs_stages::Stage;
use kvs_store::TableOptions;
use std::time::Duration;

const NODES: u32 = 3;
const RF: usize = 3;
const VICTIM: u32 = 0;
const SEED: u64 = 0xD211;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn data(partitions: u64, cells: u64) -> ClusterData {
    ClusterData::load(
        NODES,
        RF,
        TableOptions::default(),
        uniform_partitions(partitions, cells, 4),
    )
}

/// One measured run behind proxies carrying the given schedules.
fn measured_run(
    partitions: u64,
    cells: u64,
    net_cfg: NetConfig,
    schedules: Vec<ChaosSchedule>,
) -> (NetRunReport, u64) {
    let (cluster, routes) =
        spawn_local_cluster(data(partitions, cells), NetServerConfig::default())
            .expect("cluster boots");
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, net_cfg).expect("master connects");
    let report = master.run_query(&routes).expect("query succeeds");
    master.shutdown();
    let mut blackholed = 0;
    for p in proxies {
        let s = p.shutdown();
        blackholed += s.blackholed;
        assert_eq!(s.seq_regressions, 0, "master send sequence regressed");
    }
    cluster.shutdown();
    (report, blackholed)
}

fn print_stages(label: &str, report: &NetRunReport, stage_ms: &mut [f64; 4]) {
    println!(
        "{label}: makespan {}  failovers {}  suspected dead {:?}  retry wait {:.1} ms",
        report.result.makespan, report.failovers, report.suspected_dead, report.retry_wait_ms
    );
    for (i, stage) in Stage::ALL.into_iter().enumerate() {
        if let Some(stats) = report.result.report.per_stage_ms.get(&stage) {
            stage_ms[i] = stats.mean();
            println!(
                "    {:>18}: mean {:>9.3} ms   max {:>9.3} ms",
                stage.name(),
                stats.mean(),
                stats.max()
            );
        }
    }
    println!();
}

fn main() {
    let partitions = env_u64("KVSCALE_DRILL_PARTITIONS", 48).max(1);
    let cells = env_u64("KVSCALE_DRILL_CELLS", 8).max(1);
    banner(
        "chaos_drill",
        "blackholed replica: measured failover vs simulated NodeFailure",
    );
    let net_cfg = NetConfig {
        timeout: Duration::from_millis(100),
        max_retries: 1,
        replica_policy: ReplicaPolicy::Primary,
        ..NetConfig::default()
    };
    let detection = net_cfg.timeout * (net_cfg.max_retries + 1);
    println!(
        "\n{NODES} nodes, rf = {RF}, {partitions} partitions × {cells} cells; \
         node {VICTIM} blackholed from t = 0 (seed {SEED:#x}); \
         detection window {detection:?}\n"
    );

    // Healthy baseline through passthrough proxies (identical path).
    let passthrough = (0..NODES as u64).map(ChaosSchedule::passthrough).collect();
    let (healthy, _) = measured_run(partitions, cells, net_cfg, passthrough);

    // Degraded run: the victim's proxy swallows every byte.
    let mut schedules = vec![ChaosSchedule::blackhole_at(SEED, Duration::ZERO)];
    schedules.extend((1..NODES as u64).map(ChaosSchedule::passthrough));
    let (degraded, blackholed) = measured_run(partitions, cells, net_cfg, schedules);

    assert_eq!(
        degraded.result.counts_by_kind, healthy.result.counts_by_kind,
        "degraded run returned wrong values"
    );
    assert_eq!(degraded.result.total_cells, partitions * cells);
    assert!(degraded.failovers > 0, "dead replica caused no failover");
    assert!(blackholed > 0, "the blackhole swallowed nothing");

    let mut healthy_ms = [0.0f64; 4];
    let mut degraded_ms = [0.0f64; 4];
    print_stages("healthy ", &healthy, &mut healthy_ms);
    print_stages("degraded", &degraded, &mut degraded_ms);

    // Simulator replay of the same scenario.
    let mut cfg = ClusterConfig::paper_optimized_master(NODES).deterministic();
    cfg.replication_factor = RF;
    cfg.replica_policy = ReplicaPolicy::Primary;
    cfg.failure_timeout = SimDuration::from_nanos(detection.as_nanos() as u64);
    let mut sim_data = data(partitions, cells);
    let keys: Vec<_> = (0..partitions)
        .map(kvs_store::PartitionKey::from_id)
        .collect();
    let sim_healthy = run_query(&cfg, &mut sim_data, &keys);
    let mut failing_cfg = cfg.clone();
    failing_cfg.failures = vec![NodeFailure {
        node: VICTIM,
        at: SimDuration::ZERO,
    }];
    let mut sim_data = data(partitions, cells);
    let sim_failed = run_query(&failing_cfg, &mut sim_data, &keys);

    let measured_delta =
        degraded.result.makespan.as_millis_f64() - healthy.result.makespan.as_millis_f64();
    let predicted_delta =
        sim_failed.makespan.as_millis_f64() - sim_healthy.makespan.as_millis_f64();
    let relative_error = (measured_delta - predicted_delta).abs() / predicted_delta.max(1e-9);
    println!(
        "degradation: measured {} vs simulated {}  ({} relative error)",
        fmt_ms(measured_delta),
        fmt_ms(predicted_delta),
        format_args!("{:.0}%", relative_error * 100.0)
    );
    println!(
        "sim failovers {}  measured failovers {}",
        sim_failed.failovers, degraded.failovers
    );

    let mut csv = Csv::new(
        "chaos_drill",
        &[
            "run",
            "makespan_ms",
            "master_to_slave_ms",
            "in_queue_ms",
            "in_db_ms",
            "slave_to_master_ms",
            "failovers",
            "suspected_dead",
            "retry_wait_ms",
            "blackholed_frames",
            "degradation_ms",
            "sim_degradation_ms",
            "relative_error",
        ],
    );
    for (run, report, stage_ms, holes) in [
        ("healthy", &healthy, &healthy_ms, 0u64),
        ("degraded", &degraded, &degraded_ms, blackholed),
    ] {
        csv.row(&[
            &run,
            &format!("{:.4}", report.result.makespan.as_millis_f64()),
            &format!("{:.4}", stage_ms[0]),
            &format!("{:.4}", stage_ms[1]),
            &format!("{:.4}", stage_ms[2]),
            &format!("{:.4}", stage_ms[3]),
            &report.failovers,
            // "+"-joined so a multi-node list stays one CSV cell.
            &report
                .suspected_dead
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            &format!("{:.4}", report.retry_wait_ms),
            &holes,
            &format!("{measured_delta:.4}"),
            &format!("{predicted_delta:.4}"),
            &format!("{relative_error:.4}"),
        ]);
    }
    csv.finish();
}
