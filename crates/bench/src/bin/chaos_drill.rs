//! chaos_drill — the PR's acceptance scenario as a runnable figure.
//!
//! Boots a 3-node, rf = 3 loopback cluster behind [`kvs_net::ChaosProxy`]
//! interposers, blackholes node 0 from the first byte (fixed seed), and
//! runs the aggregation query twice: once healthy (passthrough proxies)
//! and once degraded. It then replays the same failure in `cluster::sim`
//! with `NodeFailure` and reports how close the measured degradation
//! lands to the simulator's prediction — the cross-validation that ties
//! the TCP engine's failover behaviour back to the paper's model.
//!
//! A second scenario exercises the tail instead of the blackhole: node 0's
//! responses are randomly held 40 ms (a straggling replica), the query is
//! run open-loop with and without hedged reads, and the measured p99
//! improvement is cross-validated against `cluster::sim`'s `Straggler` +
//! `hedge` replay of the same arrival schedule.
//!
//! Knobs (environment):
//! - `KVSCALE_DRILL_PARTITIONS` — partitions / requests (default 48)
//! - `KVSCALE_DRILL_CELLS` — values per partition (default 8)
//! - `KVSCALE_DRILL_STRAGGLER_PARTITIONS` — requests in the straggler
//!   scenario (default 240)
//!
//! Output: per-stage tables, `target/figures/chaos_drill.csv` and
//! `target/figures/chaos_drill_straggler.csv`.

use kvs_bench::json::{self, int, num, obj};
use kvs_bench::{banner, fmt_ms, Csv};
use kvs_cluster::config::{NodeFailure, Straggler};
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::sim::{run_query, run_query_paced};
use kvs_cluster::{ClusterConfig, ClusterData, ReplicaPolicy, RunResult};
use kvs_net::{
    spawn_local_cluster, wrap_cluster, ChaosDirection, ChaosRule, ChaosSchedule, FaultAction,
    HedgeConfig, NetConfig, NetMaster, NetRunReport, NetServerConfig,
};
use kvs_simcore::SimDuration;
use kvs_stages::{RequestTrace, Stage};
use kvs_store::TableOptions;
use std::time::Duration;

const NODES: u32 = 3;
const RF: usize = 3;
const VICTIM: u32 = 0;
const SEED: u64 = 0xD211;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn data(partitions: u64, cells: u64) -> ClusterData {
    ClusterData::load(
        NODES,
        RF,
        TableOptions::default(),
        uniform_partitions(partitions, cells, 4),
    )
}

/// One measured run behind proxies carrying the given schedules.
fn measured_run(
    partitions: u64,
    cells: u64,
    net_cfg: NetConfig,
    schedules: Vec<ChaosSchedule>,
) -> (NetRunReport, u64) {
    let (cluster, routes) =
        spawn_local_cluster(data(partitions, cells), NetServerConfig::default())
            .expect("cluster boots");
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let mut master = NetMaster::connect(&addrs, net_cfg).expect("master connects");
    let report = master.run_query(&routes).expect("query succeeds");
    master.shutdown();
    let mut blackholed = 0;
    for p in proxies {
        let s = p.shutdown();
        blackholed += s.blackholed;
        assert_eq!(s.seq_regressions, 0, "master send sequence regressed");
    }
    cluster.shutdown();
    (report, blackholed)
}

fn print_stages(label: &str, report: &NetRunReport, stage_ms: &mut [f64; 4]) {
    println!(
        "{label}: makespan {}  failovers {}  suspected dead {:?}  retry wait {:.1} ms",
        report.result.makespan, report.failovers, report.suspected_dead, report.retry_wait_ms
    );
    for (i, stage) in Stage::ALL.into_iter().enumerate() {
        if let Some(stats) = report.result.report.per_stage_ms.get(&stage) {
            stage_ms[i] = stats.mean();
            println!(
                "    {:>18}: mean {:>9.3} ms   max {:>9.3} ms",
                stage.name(),
                stats.mean(),
                stats.max()
            );
        }
    }
    println!();
}

/// p99 of the per-request end-to-end latencies, milliseconds.
fn p99_ms(traces: &[RequestTrace]) -> f64 {
    let mut totals: Vec<f64> = traces.iter().map(|t| t.total().as_millis_f64()).collect();
    assert!(!totals.is_empty(), "no traces recorded");
    totals.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((totals.len() as f64 * 0.99).ceil() as usize).clamp(1, totals.len());
    totals[rank - 1]
}

/// Straggler-scenario constants, mirrored between the measured run and
/// the simulator replay.
const STRAGGLE_MS: u64 = 40;
const STRAGGLE_P: f64 = 0.15;
const HEDGE_AFTER_MS: u64 = 8;
const ARRIVAL_GAP_NS: u64 = 3_000_000;
const STRAGGLER_RF: usize = 2;

/// One measured open-loop run with node 0's responses randomly held
/// [`STRAGGLE_MS`]; `hedge` toggles hedged reads.
fn straggler_measured(partitions: u64, cells: u64, hedge: Option<HedgeConfig>) -> NetRunReport {
    let data = ClusterData::load(
        NODES,
        STRAGGLER_RF,
        TableOptions::default(),
        uniform_partitions(partitions, cells, 4),
    );
    let (cluster, routes) =
        spawn_local_cluster(data, NetServerConfig::default()).expect("cluster boots");
    let mut schedules = vec![ChaosSchedule {
        seed: SEED,
        rules: vec![ChaosRule {
            direction: ChaosDirection::ToMaster,
            action: FaultAction::Delay(Duration::from_millis(STRAGGLE_MS)),
            probability: STRAGGLE_P,
            after_frame: 0,
            until_frame: Some(partitions),
        }],
        blackhole_from: None,
    }];
    schedules.extend((1..NODES as u64).map(ChaosSchedule::passthrough));
    let (proxies, addrs) = wrap_cluster(&cluster.addrs(), schedules).expect("proxies boot");
    let cfg = NetConfig {
        hedge,
        replica_policy: ReplicaPolicy::Primary,
        ..NetConfig::default()
    };
    let mut master = NetMaster::connect(&addrs, cfg).expect("master connects");
    let arrivals: Vec<u64> = (0..partitions).map(|i| i * ARRIVAL_GAP_NS).collect();
    let report = master
        .run_with_arrivals(&routes, Some(&arrivals))
        .expect("query succeeds");
    master.shutdown();
    for p in proxies {
        p.shutdown();
    }
    cluster.shutdown();
    report
}

/// The simulator's replay of the same scenario: identical arrival
/// schedule, a [`Straggler`] on the same node, and (optionally) the same
/// fixed hedge delay.
fn straggler_simulated(partitions: u64, cells: u64, hedged: bool) -> RunResult {
    let mut cfg = ClusterConfig::paper_optimized_master(NODES).deterministic();
    cfg.replication_factor = STRAGGLER_RF;
    cfg.replica_policy = ReplicaPolicy::Primary;
    cfg.stragglers = vec![Straggler {
        node: VICTIM,
        extra: SimDuration::from_millis(STRAGGLE_MS),
        probability: STRAGGLE_P,
    }];
    if hedged {
        cfg.hedge = Some(SimDuration::from_millis(HEDGE_AFTER_MS));
    }
    let mut sim_data = ClusterData::load(
        NODES,
        STRAGGLER_RF,
        TableOptions::default(),
        uniform_partitions(partitions, cells, 4),
    );
    let keys: Vec<_> = (0..partitions)
        .map(kvs_store::PartitionKey::from_id)
        .collect();
    let arrivals: Vec<SimDuration> = (0..partitions)
        .map(|i| SimDuration::from_nanos(i * ARRIVAL_GAP_NS))
        .collect();
    run_query_paced(&cfg, &mut sim_data, &keys, &arrivals)
}

fn main() {
    let partitions = env_u64("KVSCALE_DRILL_PARTITIONS", 48).max(1);
    let cells = env_u64("KVSCALE_DRILL_CELLS", 8).max(1);
    banner(
        "chaos_drill",
        "blackholed replica: measured failover vs simulated NodeFailure",
    );
    let net_cfg = NetConfig {
        timeout: Duration::from_millis(100),
        max_retries: 1,
        replica_policy: ReplicaPolicy::Primary,
        ..NetConfig::default()
    };
    let detection = net_cfg.timeout * (net_cfg.max_retries + 1);
    println!(
        "\n{NODES} nodes, rf = {RF}, {partitions} partitions × {cells} cells; \
         node {VICTIM} blackholed from t = 0 (seed {SEED:#x}); \
         detection window {detection:?}\n"
    );

    // Healthy baseline through passthrough proxies (identical path).
    let passthrough = (0..NODES as u64).map(ChaosSchedule::passthrough).collect();
    let (healthy, _) = measured_run(partitions, cells, net_cfg, passthrough);

    // Degraded run: the victim's proxy swallows every byte.
    let mut schedules = vec![ChaosSchedule::blackhole_at(SEED, Duration::ZERO)];
    schedules.extend((1..NODES as u64).map(ChaosSchedule::passthrough));
    let (degraded, blackholed) = measured_run(partitions, cells, net_cfg, schedules);

    assert_eq!(
        degraded.result.counts_by_kind, healthy.result.counts_by_kind,
        "degraded run returned wrong values"
    );
    assert_eq!(degraded.result.total_cells, partitions * cells);
    assert!(degraded.failovers > 0, "dead replica caused no failover");
    assert!(blackholed > 0, "the blackhole swallowed nothing");

    let mut healthy_ms = [0.0f64; 4];
    let mut degraded_ms = [0.0f64; 4];
    print_stages("healthy ", &healthy, &mut healthy_ms);
    print_stages("degraded", &degraded, &mut degraded_ms);

    // Simulator replay of the same scenario.
    let mut cfg = ClusterConfig::paper_optimized_master(NODES).deterministic();
    cfg.replication_factor = RF;
    cfg.replica_policy = ReplicaPolicy::Primary;
    cfg.failure_timeout = SimDuration::from_nanos(detection.as_nanos() as u64);
    let mut sim_data = data(partitions, cells);
    let keys: Vec<_> = (0..partitions)
        .map(kvs_store::PartitionKey::from_id)
        .collect();
    let sim_healthy = run_query(&cfg, &mut sim_data, &keys);
    let mut failing_cfg = cfg.clone();
    failing_cfg.failures = vec![NodeFailure {
        node: VICTIM,
        at: SimDuration::ZERO,
    }];
    let mut sim_data = data(partitions, cells);
    let sim_failed = run_query(&failing_cfg, &mut sim_data, &keys);

    let measured_delta =
        degraded.result.makespan.as_millis_f64() - healthy.result.makespan.as_millis_f64();
    let predicted_delta =
        sim_failed.makespan.as_millis_f64() - sim_healthy.makespan.as_millis_f64();
    let relative_error = (measured_delta - predicted_delta).abs() / predicted_delta.max(1e-9);
    println!(
        "degradation: measured {} vs simulated {}  ({} relative error)",
        fmt_ms(measured_delta),
        fmt_ms(predicted_delta),
        format_args!("{:.0}%", relative_error * 100.0)
    );
    println!(
        "sim failovers {}  measured failovers {}",
        sim_failed.failovers, degraded.failovers
    );

    let mut csv = Csv::new(
        "chaos_drill",
        &[
            "run",
            "makespan_ms",
            "master_to_slave_ms",
            "in_queue_ms",
            "in_db_ms",
            "slave_to_master_ms",
            "failovers",
            "suspected_dead",
            "retry_wait_ms",
            "blackholed_frames",
            "degradation_ms",
            "sim_degradation_ms",
            "relative_error",
        ],
    );
    for (run, report, stage_ms, holes) in [
        ("healthy", &healthy, &healthy_ms, 0u64),
        ("degraded", &degraded, &degraded_ms, blackholed),
    ] {
        csv.row(&[
            &run,
            &format!("{:.4}", report.result.makespan.as_millis_f64()),
            &format!("{:.4}", stage_ms[0]),
            &format!("{:.4}", stage_ms[1]),
            &format!("{:.4}", stage_ms[2]),
            &format!("{:.4}", stage_ms[3]),
            &report.failovers,
            // "+"-joined so a multi-node list stays one CSV cell.
            &report
                .suspected_dead
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join("+"),
            &format!("{:.4}", report.retry_wait_ms),
            &holes,
            &format!("{measured_delta:.4}"),
            &format!("{predicted_delta:.4}"),
            &format!("{relative_error:.4}"),
        ]);
    }
    csv.finish();

    // ---- Scenario 2: straggling replica, hedged reads. ----
    let straggler_partitions = env_u64("KVSCALE_DRILL_STRAGGLER_PARTITIONS", 240).max(100);
    println!(
        "\nstraggler: node {VICTIM} responses held {STRAGGLE_MS} ms with p = {STRAGGLE_P}, \
         rf = {STRAGGLER_RF}, {straggler_partitions} requests arriving every \
         {} ms; hedge after {HEDGE_AFTER_MS} ms\n",
        ARRIVAL_GAP_NS / 1_000_000
    );
    let plain = straggler_measured(straggler_partitions, cells, None);
    let hedged = straggler_measured(
        straggler_partitions,
        cells,
        Some(HedgeConfig {
            quantile: 0.95,
            min_delay: Duration::from_millis(HEDGE_AFTER_MS),
        }),
    );
    assert!(plain.result.coverage.is_complete(), "plain run lost data");
    assert!(hedged.result.coverage.is_complete(), "hedged run lost data");
    assert_eq!(
        plain.result.counts_by_kind, hedged.result.counts_by_kind,
        "hedged run returned different values"
    );
    let sim_plain = straggler_simulated(straggler_partitions, cells, false);
    let sim_hedged = straggler_simulated(straggler_partitions, cells, true);

    let p99 = [
        p99_ms(&plain.result.traces),
        p99_ms(&hedged.result.traces),
        p99_ms(&sim_plain.traces),
        p99_ms(&sim_hedged.traces),
    ];
    let measured_improvement = 1.0 - p99[1] / p99[0];
    let sim_improvement = 1.0 - p99[3] / p99[2];
    let improvement_error =
        (measured_improvement - sim_improvement).abs() / sim_improvement.max(1e-9);
    println!(
        "measured p99: {} → {}  ({:.0}% cut, {} hedges, {} won, {:.1}% extra load)",
        fmt_ms(p99[0]),
        fmt_ms(p99[1]),
        measured_improvement * 100.0,
        hedged.hedges_sent,
        hedged.hedges_won,
        hedged.hedge_extra_load() * 100.0
    );
    println!(
        "simulated p99: {} → {}  ({:.0}% cut, {} hedges, {} won)",
        fmt_ms(p99[2]),
        fmt_ms(p99[3]),
        sim_improvement * 100.0,
        sim_hedged.hedges_sent,
        sim_hedged.hedges_won
    );
    println!(
        "p99 improvement: measured {:.0}% vs simulated {:.0}%  ({:.0}% relative error)",
        measured_improvement * 100.0,
        sim_improvement * 100.0,
        improvement_error * 100.0
    );
    assert!(
        measured_improvement >= 0.30,
        "hedging failed the acceptance bar: {:.0}% p99 cut",
        measured_improvement * 100.0
    );
    assert!(
        improvement_error <= 0.25,
        "measured hedging benefit diverges from the simulator's: \
         {measured_improvement:.2} vs {sim_improvement:.2}"
    );

    let mut csv = Csv::new(
        "chaos_drill_straggler",
        &[
            "run",
            "p99_ms",
            "hedges_sent",
            "hedges_won",
            "improvement",
            "improvement_error",
        ],
    );
    for (run, p99_ms, sent, won, improvement) in [
        ("measured_plain", p99[0], 0, 0, 0.0),
        (
            "measured_hedged",
            p99[1],
            hedged.hedges_sent,
            hedged.hedges_won,
            measured_improvement,
        ),
        ("sim_plain", p99[2], 0, 0, 0.0),
        (
            "sim_hedged",
            p99[3],
            sim_hedged.hedges_sent,
            sim_hedged.hedges_won,
            sim_improvement,
        ),
    ] {
        csv.row(&[
            &run,
            &format!("{p99_ms:.4}"),
            &sent,
            &won,
            &format!("{improvement:.4}"),
            &format!("{improvement_error:.4}"),
        ]);
    }
    csv.finish();

    json::write_report(&json::report(
        "chaos",
        obj(vec![
            ("nodes", int(NODES as u64)),
            ("rf", int(RF as u64)),
            ("partitions", int(partitions)),
            ("cells", int(cells)),
            ("straggler_partitions", int(straggler_partitions)),
            ("straggle_ms", int(STRAGGLE_MS)),
            ("straggle_p", num(STRAGGLE_P)),
            ("hedge_after_ms", int(HEDGE_AFTER_MS)),
            ("seed", int(SEED)),
        ]),
        obj(vec![
            (
                "blackhole",
                obj(vec![
                    (
                        "measured_healthy_ms",
                        num(healthy.result.makespan.as_millis_f64()),
                    ),
                    (
                        "measured_degraded_ms",
                        num(degraded.result.makespan.as_millis_f64()),
                    ),
                    ("measured_degradation_ms", num(measured_delta)),
                    ("sim_degradation_ms", num(predicted_delta)),
                    ("relative_error", num(relative_error)),
                    ("failovers", int(degraded.failovers)),
                    ("blackholed_frames", int(blackholed)),
                ]),
            ),
            (
                "straggler",
                obj(vec![
                    ("measured_plain_p99_ms", num(p99[0])),
                    ("measured_hedged_p99_ms", num(p99[1])),
                    ("sim_plain_p99_ms", num(p99[2])),
                    ("sim_hedged_p99_ms", num(p99[3])),
                    ("measured_improvement", num(measured_improvement)),
                    ("sim_improvement", num(sim_improvement)),
                    ("improvement_error", num(improvement_error)),
                    ("hedges_sent", int(hedged.hedges_sent)),
                    ("hedges_won", int(hedged.hedges_won)),
                ]),
            ),
        ]),
    ))
    .expect("write BENCH_chaos.json");
}
