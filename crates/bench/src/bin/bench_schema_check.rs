//! bench_schema_check — validates emitted `BENCH_*.json` files.
//!
//! CI's bench lane runs the drills and then this checker, so a drill
//! whose emitter regresses (wrong envelope, missing field, NaN quantile,
//! unparseable output) fails the build instead of silently poisoning the
//! perf trajectory.
//!
//! Usage: `bench_schema_check [file ...]` — with no arguments it
//! validates every `BENCH_*.json` under `target/figures/` and fails if
//! there are none (a bench lane that produced no reports is itself a
//! regression).

use kvs_bench::figures_dir;
use kvs_bench::json::{parse, validate, Value};
use std::fs;
use std::path::PathBuf;

fn discovered() -> Vec<PathBuf> {
    let dir = figures_dir();
    let mut found: Vec<PathBuf> = fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect()
        })
        .unwrap_or_default();
    found.sort();
    found
}

fn check(path: &PathBuf) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("parse error: {e}"))?;
    validate(&doc)?;
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .expect("validated doc has a bench name")
        .to_string();
    let expected = format!("BENCH_{bench}.json");
    let actual = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if actual != expected {
        return Err(format!(
            "file name {actual} does not match bench field (want {expected})"
        ));
    }
    Ok(bench)
}

fn main() {
    let args: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    let files = if args.is_empty() { discovered() } else { args };
    if files.is_empty() {
        eprintln!(
            "bench_schema_check: no BENCH_*.json found under {}",
            figures_dir().display()
        );
        std::process::exit(1);
    }
    let mut failures = 0;
    for path in &files {
        match check(path) {
            Ok(bench) => println!("ok   {} (bench {bench:?})", path.display()),
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("bench_schema_check: {failures} invalid report(s)");
        std::process::exit(1);
    }
    println!("bench_schema_check: {} report(s) valid", files.len());
}
