//! bench_schema_check — validates emitted `BENCH_*.json` files.
//!
//! CI's bench lane runs the drills and then this checker, so a drill
//! whose emitter regresses (wrong envelope, missing field, NaN quantile,
//! unparseable output) fails the build instead of silently poisoning the
//! perf trajectory.
//!
//! Usage: `bench_schema_check [--compare <prev_dir>] [file ...]` — with
//! no file arguments it validates every `BENCH_*.json` under
//! `target/figures/` and fails if there are none (a bench lane that
//! produced no reports is itself a regression).
//!
//! `--compare <prev_dir>` adds a trend gate: `prev_dir` is walked
//! recursively for `BENCH_*.json` files (the shape a CI
//! artifact-download restores), each current report is matched to its
//! predecessor by file name, and every `p99_ms` series present in both
//! — matched by its full JSON path — must not have grown by more than
//! 25%. A report or series with no predecessor is reported as new, not
//! failed, so the first run of a new drill passes; a missing `prev_dir`
//! skips the gate entirely (first CI run, no artifact yet).

use kvs_bench::figures_dir;
use kvs_bench::json::{parse, validate, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// A current-over-previous `p99_ms` ratio above this fails the gate.
const P99_REGRESSION_RATIO: f64 = 1.25;

fn discovered() -> Vec<PathBuf> {
    let dir = figures_dir();
    let mut found: Vec<PathBuf> = fs::read_dir(&dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| is_bench_report(p))
                .collect()
        })
        .unwrap_or_default();
    found.sort();
    found
}

fn is_bench_report(path: &Path) -> bool {
    path.file_name()
        .and_then(|n| n.to_str())
        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
}

/// Recursively collects `BENCH_*.json` under `root`, keyed by file name
/// (artifact downloads may nest reports one directory deep per lane).
fn walk_reports(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            walk_reports(&path, out);
        } else if is_bench_report(&path) {
            out.push(path);
        }
    }
}

fn check(path: &PathBuf) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("parse error: {e}"))?;
    validate(&doc)?;
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .expect("validated doc has a bench name")
        .to_string();
    let expected = format!("BENCH_{bench}.json");
    let actual = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if actual != expected {
        return Err(format!(
            "file name {actual} does not match bench field (want {expected})"
        ));
    }
    Ok(bench)
}

/// Collects every `p99_ms` number in the document as
/// (dotted-JSON-path, value), so a series is matched positionally across
/// runs even inside arrays of result cells.
fn p99_series(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Obj(fields) => {
            for (key, child) in fields {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                if key == "p99_ms" {
                    if let Some(n) = child.as_num() {
                        out.push((path, n));
                    }
                } else {
                    p99_series(child, &path, out);
                }
            }
        }
        Value::Arr(items) => {
            for (ix, item) in items.iter().enumerate() {
                p99_series(item, &format!("{prefix}[{ix}]"), out);
            }
        }
        _ => {}
    }
}

fn parsed_series(path: &Path) -> Result<Vec<(String, f64)>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("parse error: {e}"))?;
    let mut series = Vec::new();
    p99_series(&doc, "", &mut series);
    Ok(series)
}

/// Compares current reports against `prev_dir`; returns the number of
/// regressions (a previous report that no longer parses counts as zero —
/// the schema gate above already covers the current files).
fn compare(files: &[PathBuf], prev_dir: &Path) -> usize {
    if !prev_dir.is_dir() {
        println!(
            "compare: no previous artifacts at {} — skipping trend gate",
            prev_dir.display()
        );
        return 0;
    }
    let mut previous = Vec::new();
    walk_reports(prev_dir, &mut previous);
    let mut regressions = 0;
    for path in files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let Some(prev_path) = previous
            .iter()
            .find(|p| p.file_name().and_then(|n| n.to_str()) == Some(name))
        else {
            println!("new  {name}: no previous report — trend gate skipped");
            continue;
        };
        let current = match parsed_series(path) {
            Ok(s) => s,
            Err(_) => continue, // schema pass already reported it
        };
        let prev = match parsed_series(prev_path) {
            Ok(s) => s,
            Err(e) => {
                println!("warn {name}: previous report unusable ({e}) — skipped");
                continue;
            }
        };
        for (series, cur_ms) in &current {
            let Some((_, prev_ms)) = prev.iter().find(|(p, _)| p == series) else {
                println!("new  {name}: series {series} has no predecessor");
                continue;
            };
            if *prev_ms <= 0.0 {
                continue; // a zero baseline has no meaningful ratio
            }
            let ratio = cur_ms / prev_ms;
            if ratio > P99_REGRESSION_RATIO {
                eprintln!(
                    "REGRESSION {name}: {series} {prev_ms:.3} ms -> {cur_ms:.3} ms \
                     ({ratio:.2}x > {P99_REGRESSION_RATIO:.2}x)"
                );
                regressions += 1;
            } else {
                println!("ok   {name}: {series} {prev_ms:.3} ms -> {cur_ms:.3} ms ({ratio:.2}x)");
            }
        }
    }
    regressions
}

fn main() {
    let mut compare_dir: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            match args.next() {
                Some(dir) => compare_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("bench_schema_check: --compare needs a directory");
                    std::process::exit(2);
                }
            }
        } else {
            files.push(PathBuf::from(arg));
        }
    }
    if files.is_empty() {
        files = discovered();
    }
    if files.is_empty() {
        eprintln!(
            "bench_schema_check: no BENCH_*.json found under {}",
            figures_dir().display()
        );
        std::process::exit(1);
    }
    let mut failures = 0;
    for path in &files {
        match check(path) {
            Ok(bench) => println!("ok   {} (bench {bench:?})", path.display()),
            Err(e) => {
                eprintln!("FAIL {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("bench_schema_check: {failures} invalid report(s)");
        std::process::exit(1);
    }
    if let Some(prev) = compare_dir {
        let regressions = compare(&files, &prev);
        if regressions > 0 {
            eprintln!("bench_schema_check: {regressions} p99 regression(s) beyond 25%");
            std::process::exit(1);
        }
    }
    println!("bench_schema_check: {} report(s) valid", files.len());
}
