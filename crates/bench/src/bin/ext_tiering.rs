//! Extension (§IX future work) — hierarchical storage tiers.
//!
//! "We aim to extend the model to predict the time of serving requests out
//! of each of these devices" — done: a KNL-style MCDRAM/DDR4/NVM/SSD/HDD
//! stack with waterfall residency feeds the database model, and the
//! predicted query time vs working-set size shows the capacity cliffs a
//! designer needs to see before buying hardware.

use kvs_bench::{banner, fmt_ms, Csv};
use kvs_model::SystemModel;
use kvs_store::StorageHierarchy;

fn main() {
    banner(
        "Extension §IX",
        "hierarchical storage: query time vs working-set size",
    );
    let hier = StorageHierarchy::knl_like();
    println!("\nstorage stack:");
    for t in hier.tiers() {
        println!(
            "  {:<7} {:>7} GiB  {:>9.2} µs access  {:>7.0} MB/s",
            t.name,
            t.capacity_bytes >> 30,
            t.access_latency_us,
            t.bandwidth_bytes_per_ms / 1_000.0
        );
    }
    println!("\ncapacity cliffs (cumulative):");
    for (name, bytes) in hier.capacity_cliffs() {
        println!(
            "  beyond {:>6} GiB the working set spills past {name}",
            bytes >> 30
        );
    }

    // Query model: 16 nodes, the optimizer's ~133-cell rows (Figure 9), a
    // fixed number of rows read per query; the *device* time replaces the
    // in-memory portion of Formula 6's per-row cost as the dataset grows.
    let model = SystemModel::paper_optimized();
    let rows_per_query = 7_545u64; // Figure 9's 16-node optimum
    let cells_per_row = 133u64;
    let row_bytes = cells_per_row * 46;
    let base = model.predict(rows_per_query as f64, cells_per_row as f64, 16);

    let mut csv = Csv::new(
        "ext_tiering",
        &["working_set_gib", "device_ms_per_row", "query_ms"],
    );
    println!(
        "\n{:>16} {:>18} {:>12}",
        "working set", "device ms/row", "query time"
    );
    let gib = 1u64 << 30;
    for ws_gib in [1u64, 8, 15, 32, 100, 300, 600, 1_024, 2_048, 4_096, 8_192] {
        let ws = ws_gib * gib;
        let device_ms = hier.read_ms(row_bytes, ws);
        // The slave term scales by the device surcharge on every row the
        // most loaded node serves (amortized over the same parallelism).
        let per_row_extra = device_ms / model.db.parallelism.speedup(cells_per_row as f64);
        let query_ms = base.total_ms() + base.keymax * per_row_extra;
        println!(
            "{:>12} GiB {:>15.3} ms {:>12}",
            ws_gib,
            device_ms,
            fmt_ms(query_ms)
        );
        csv.row(&[
            &ws_gib,
            &format!("{device_ms:.4}"),
            &format!("{query_ms:.2}"),
        ]);
    }
    println!("\nReading: query time is flat while the working set fits in RAM, then");
    println!("steps at every capacity cliff — NVM keeps the system interactive where");
    println!("the HDD tier would push the same query into tens of seconds. This is");
    println!("the §IX design tool: size the fast tiers to your hot working set.");
    csv.finish();
}
