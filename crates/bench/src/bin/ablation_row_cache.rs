//! Ablation — row caching vs replica spreading (§VIII).
//!
//! "Spreading calls to different servers results in a higher page fault
//! number and that might nullify the benefits of a more distributed
//! workload. Indeed, the Cassandra driver selects a replica only if the
//! original node is malfunctioning." We measure exactly that on the real
//! store: a Zipf-skewed read stream against (a) a cache-affine primary and
//! (b) the same reads spread round-robin over 3 replicas, each with its own
//! row cache.

use kvs_balance::weighted::zipf_weights;
use kvs_bench::{banner, Csv};
use kvs_simcore::RngHub;
use kvs_store::{Cell, CostModel, PartitionKey, Table, TableOptions};
use rand::Rng;

const PARTITIONS: u64 = 400;
const CELLS: u64 = 200;
const READS: usize = 8_000;
const CACHE_PARTITIONS: usize = 64;

fn loaded_table() -> Table {
    let mut t = Table::new(TableOptions {
        row_cache_partitions: CACHE_PARTITIONS,
        ..Default::default()
    });
    for p in 0..PARTITIONS {
        for c in 0..CELLS {
            t.put(PartitionKey::from_id(p), Cell::synthetic(c, (c % 4) as u8));
        }
    }
    t.flush();
    t
}

fn main() {
    banner(
        "Ablation",
        "row cache vs replica spreading — the §VIII caching trade-off",
    );
    let hub = RngHub::new(0xCACE);
    let mut rng = hub.stream("reads");
    // Zipf popularity over partitions: a hot working set that fits in the
    // cache when reads stay on one replica.
    let weights = zipf_weights(PARTITIONS as usize, 1.1);
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let reads: Vec<u64> = (0..READS)
        .map(|_| {
            let u: f64 = rng.gen();
            cumulative.partition_point(|&c| c < u) as u64
        })
        .collect();

    let cost = CostModel::paper_cassandra();
    let mut csv = Csv::new(
        "ablation_row_cache",
        &[
            "strategy",
            "replicas",
            "hit_rate",
            "mean_service_ms",
            "total_db_ms",
        ],
    );
    println!(
        "\n{:<22} {:>9} {:>10} {:>14} {:>13}",
        "strategy", "replicas", "hit rate", "mean svc (ms)", "total DB (s)"
    );
    // Every replica node also serves *other* tenants' traffic that churns
    // its cache; a key that is touched three times less often (because its
    // reads were spread) is far more likely to be evicted between touches.
    let mut churn_rng = hub.stream("churn");
    for (label, replicas) in [("primary affinity", 1usize), ("spread round-robin", 3)] {
        let mut tables: Vec<Table> = (0..replicas).map(|_| loaded_table()).collect();
        let mut total_ms = 0.0;
        let mut hits = 0u64;
        for (i, &p) in reads.iter().enumerate() {
            let replica = i % replicas;
            let (_, receipt) = tables[replica].get(&PartitionKey::from_id(p));
            if receipt.row_cache_hit {
                hits += 1;
            }
            total_ms += cost.service_ms(&receipt);
            // Background churn hits every replica node on every step,
            // regardless of where the measured read went (other tenants do
            // not pause for us). Its cost is not charged to this workload.
            for table in tables.iter_mut() {
                for _ in 0..2 {
                    let cold: u64 = churn_rng.gen_range(0..PARTITIONS);
                    let _ = table.get(&PartitionKey::from_id(cold));
                }
            }
        }
        let hit_rate = hits as f64 / reads.len() as f64;
        let mean = total_ms / reads.len() as f64;
        println!(
            "{:<22} {:>9} {:>9.1}% {:>14.3} {:>13.2}",
            label,
            replicas,
            hit_rate * 100.0,
            mean,
            total_ms / 1_000.0
        );
        csv.row(&[
            &label,
            &replicas,
            &format!("{hit_rate:.4}"),
            &format!("{mean:.3}"),
            &format!("{total_ms:.1}"),
        ]);
    }
    println!("\nReading: each replica's cache only sees a third of the hot keys'");
    println!("accesses, so spreading divides the hit rate and inflates the database");
    println!("work — load balance bought at the cache's expense, which is why the");
    println!("Cassandra driver defaults to replica affinity.");
    csv.finish();
}
