//! §V-B inline numbers — the serialization optimization.
//!
//! The paper: switching from default-Java to Kryo serialization (plus
//! trimming logging/integrity checks) took 10 000 messages from 1.5 s to
//! 192 ms of master time (150 → 19 µs each) and shrank the master's
//! outbound traffic from 7.5 MB/15 000 packets to ≈900 KB.

use kvs_bench::{banner, Csv};
use kvs_cluster::messages::{QueryRequest, QueryResponse};
use kvs_cluster::{Codec, NetworkConfig};
use kvs_store::PartitionKey;
use std::time::Instant;

const MESSAGES: u64 = 10_000;

fn main() {
    banner(
        "§V-B",
        "serialization: Verbose (Java-like) vs Compact (Kryo-like)",
    );
    let mut csv = Csv::new(
        "serialization",
        &[
            "codec",
            "req_bytes",
            "resp_bytes",
            "total_tx_bytes",
            "modelled_cpu_ms",
            "rust_encode_ms",
            "wire_ms",
        ],
    );
    let net = NetworkConfig::default();
    for codec in [Codec::verbose(), Codec::compact()] {
        let name = format!("{:?}", codec.kind);
        let mut total_bytes = 0u64;
        let mut resp_bytes_total = 0u64;
        let started = Instant::now();
        for i in 0..MESSAGES {
            let req = QueryRequest {
                request_id: i,
                partition: PartitionKey::from_id(i),
            };
            let bytes = codec.encode_request(&req);
            total_bytes += bytes.len() as u64;
            let decoded = codec.decode_request(bytes).expect("roundtrip");
            let resp = QueryResponse::from_kinds(decoded.request_id, [0u8, 1, 2, 3]);
            resp_bytes_total += codec.encode_response(&resp).len() as u64;
        }
        let rust_ms = started.elapsed().as_secs_f64() * 1_000.0;
        let modelled_ms = MESSAGES as f64 * codec.tx_cpu_us / 1_000.0;
        let wire_ms = net.transit(total_bytes as usize).as_millis_f64();
        println!("\n{name} codec:");
        println!("  request size        : {} B", total_bytes / MESSAGES);
        println!("  response size       : {} B", resp_bytes_total / MESSAGES);
        println!(
            "  {MESSAGES} requests on the wire : {:.2} MB",
            total_bytes as f64 / 1e6
        );
        println!(
            "  modelled master CPU : {modelled_ms:.0} ms ({} µs/msg — the paper's measurement)",
            codec.tx_cpu_us
        );
        println!("  this Rust impl      : {rust_ms:.1} ms wall (for flavour only)");
        println!("  network transit     : {wire_ms:.2} ms");
        csv.row(&[
            &name,
            &(total_bytes / MESSAGES),
            &(resp_bytes_total / MESSAGES),
            &total_bytes,
            &format!("{modelled_ms:.1}"),
            &format!("{rust_ms:.2}"),
            &format!("{wire_ms:.3}"),
        ]);
    }
    println!("\nPaper: 10 000 messages 1.5 s → 192 ms of master CPU; traffic 7.5 MB → ~0.9 MB.");
    csv.finish();
}
