//! Ablation — the Figure 6 discontinuity follows `column_index_size_in_kb`.
//!
//! The paper traced the kink to Cassandra's `column_index_size_in_kb`
//! parameter. Because our store implements the mechanism (not a hard-coded
//! constant), sweeping the threshold must move the fitted breakpoint to
//! `threshold_bytes / 46` cells every time.

use kvs_bench::{banner, Csv};
use kvs_cluster::{db_microbench, ClusterConfig, ClusterData};
use kvs_model::regression::fit_piecewise;
use kvs_simcore::RngHub;
use kvs_store::{PartitionKey, TableOptions};
use kvs_workloads::sampling::{partitions_with_sizes, stratified_sizes};

fn main() {
    banner(
        "Ablation",
        "column_index_size sweep: the Figure 6 breakpoint is mechanical",
    );
    let hub = RngHub::new(0xAB1A);
    let mut csv = Csv::new(
        "ablation_column_index",
        &[
            "column_index_kib",
            "expected_breakpoint_cells",
            "fitted_breakpoint_cells",
            "jump_ms",
        ],
    );
    println!(
        "\n{:>18} {:>22} {:>22} {:>10}",
        "column index", "expected breakpoint", "fitted breakpoint", "jump"
    );
    for kib in [16usize, 32, 64, 128] {
        let threshold_bytes = kib * 1024;
        let expected_cells = threshold_bytes / 46;
        let mut rng = hub.stream(&format!("sweep-{kib}"));
        // Sample densely around the expected kink plus broad coverage.
        let mut sizes = stratified_sizes(1, (expected_cells * 4) as u64, 20, 6, &mut rng);
        sizes.extend(stratified_sizes(
            (expected_cells as u64).saturating_sub(300).max(1),
            expected_cells as u64 + 300,
            8,
            4,
            &mut rng,
        ));
        let parts = partitions_with_sizes(&sizes, 4);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        let mut cfg = ClusterConfig::paper_optimized_master(1).calibration();
        cfg.db.cost.service_cv = 0.0; // isolate the mechanism
        let opts = TableOptions {
            column_index_size: threshold_bytes,
            ..Default::default()
        };
        let mut data = ClusterData::load(1, 1, opts, parts);
        let run = db_microbench(&cfg, &mut data, &keys, 1, &format!("ci-{kib}"));
        let xs: Vec<f64> = run.samples.iter().map(|s| s.cells as f64).collect();
        let ys: Vec<f64> = run.samples.iter().map(|s| s.ms).collect();
        let fit = fit_piecewise(&xs, &ys).expect("fit");
        println!(
            "{:>14} KiB {:>16} cells {:>16.0} cells {:>8.2}ms",
            kib,
            expected_cells,
            fit.breakpoint,
            fit.jump()
        );
        csv.row(&[
            &kib,
            &expected_cells,
            &format!("{:.0}", fit.breakpoint),
            &format!("{:.2}", fit.jump()),
        ]);
        let rel_err = (fit.breakpoint - expected_cells as f64).abs() / expected_cells as f64;
        assert!(
            rel_err < 0.25,
            "breakpoint did not follow the threshold: {} vs {}",
            fit.breakpoint,
            expected_cells
        );
    }
    println!("\nReading: the discontinuity is not a magic constant — it moves with the");
    println!("store's column_index_size, exactly as the paper found with Cassandra's");
    println!("column_index_size_in_kb.");
    csv.finish();
}
