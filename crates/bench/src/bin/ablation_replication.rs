//! Ablation — replication factor × replica-selection policy (§VIII).
//!
//! The paper's related-work section weighs the trade-offs: replicas let the
//! master balance reads, but selection costs master CPU and random
//! spreading defeats caches. This sweep measures the load excess and query
//! time of each policy on the simulated cluster.

use kvs_bench::{banner, fmt_ms, fmt_pct, Csv};
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{run_query, ClusterConfig, ClusterData, ReplicaPolicy};
use kvs_store::{PartitionKey, TableOptions};

fn main() {
    banner(
        "Ablation",
        "replication factor × replica policy: balance vs overhead",
    );
    let nodes = 8u32;
    let partitions = uniform_partitions(160, 500, 4);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();

    let mut csv = Csv::new(
        "ablation_replication",
        &["rf", "policy", "makespan_ms", "load_excess", "balanced_ms"],
    );
    println!(
        "\n{:>4} {:>12} {:>11} {:>12} {:>11}",
        "rf", "policy", "makespan", "load excess", "balanced"
    );
    for rf in [1usize, 2, 3] {
        for policy in [
            ReplicaPolicy::Primary,
            ReplicaPolicy::Random,
            ReplicaPolicy::RoundRobin,
            ReplicaPolicy::LeastLoaded,
        ] {
            if rf == 1 && policy != ReplicaPolicy::Primary {
                continue; // one replica: every policy degenerates to primary
            }
            let mut data =
                ClusterData::load(nodes, rf, TableOptions::default(), partitions.clone());
            let mut cfg = ClusterConfig::paper_optimized_master(nodes);
            cfg.replication_factor = rf;
            cfg.replica_policy = policy;
            let result = run_query(&cfg, &mut data, &keys);
            println!(
                "{:>4} {:>12} {:>11} {:>12} {:>11}",
                rf,
                format!("{policy:?}"),
                fmt_ms(result.makespan.as_millis_f64()),
                fmt_pct(result.load_excess()),
                fmt_ms(result.balanced_time().as_millis_f64()),
            );
            csv.row(&[
                &rf,
                &format!("{policy:?}"),
                &format!("{:.2}", result.makespan.as_millis_f64()),
                &format!("{:.4}", result.load_excess()),
                &format!("{:.2}", result.balanced_time().as_millis_f64()),
            ]);
        }
    }
    println!("\nReading: replicas + least-loaded selection flatten the load excess that");
    println!("dominates Figure 1's coarse/medium workloads; random selection helps less");
    println!("and (in a cache-heavy deployment) would also forfeit row-cache hits — the");
    println!("§VIII trade-off. The master pays the selection cost per message, which is");
    println!("what caps it near 32 nodes in §VII's arithmetic.");
    csv.finish();
}
