//! Extension — hardware sensitivity: "which hardware characteristics will
//! influence performance the most" (§IX's closing claim, computed).
//!
//! For each of the paper's three data models, the elasticity of query time
//! with respect to every hardware/software parameter: the number to read
//! before buying faster NICs vs faster disks vs more cores.

use kvs_bench::{banner, Csv};
use kvs_model::sensitivity::{dominant_parameter, sensitivities, Parameter};
use kvs_model::SystemModel;

fn main() {
    banner(
        "Extension §IX",
        "hardware sensitivity: elasticity of query time per parameter",
    );
    let workloads: [(&str, f64, f64); 3] = [
        ("coarse (100×10k)", 100.0, 10_000.0),
        ("medium (1k×1k)", 1_000.0, 1_000.0),
        ("fine (10k×100)", 10_000.0, 100.0),
    ];
    let mut csv = Csv::new(
        "ext_sensitivity",
        &["master", "workload", "parameter", "elasticity"],
    );
    for (master_label, model) in [
        ("slow master", SystemModel::paper_slow()),
        ("optimized master", SystemModel::paper_optimized()),
    ] {
        println!("\n=== {master_label}, 16 nodes ===");
        print!("{:<24}", "parameter \\ workload");
        for (w, _, _) in &workloads {
            print!("{w:>20}");
        }
        println!();
        let all: Vec<Vec<f64>> = workloads
            .iter()
            .map(|&(_, keys, cells)| {
                sensitivities(&model, keys, cells, 16)
                    .into_iter()
                    .map(|s| s.elasticity)
                    .collect()
            })
            .collect();
        for (i, p) in Parameter::ALL.iter().enumerate() {
            print!("{:<24}", p.name());
            for (w, sens) in workloads.iter().zip(&all) {
                print!("{:>20.3}", sens[i]);
                csv.row(&[&master_label, &w.0, &p.name(), &format!("{:.4}", sens[i])]);
            }
            println!();
        }
        for &(w, keys, cells) in &workloads {
            println!(
                "  {w:<18} → upgrade first: {}",
                dominant_parameter(&model, keys, cells, 16).name()
            );
        }
    }
    println!("\nReading: the answer changes with both the data model and the master —");
    println!("a slow master makes the serializer the only knob that matters for fine");
    println!("granularities, while big rows put everything on the database's parallel");
    println!("efficiency. Exactly the §IX design guidance, with numbers attached.");
    csv.finish();
}
