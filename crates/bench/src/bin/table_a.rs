//! Table A — the paper's §II worked example: how many more keys (in
//! proportion) land on the most loaded of 10 servers for the phone-book
//! data models, and what happens to the weighted "cities" layout when the
//! cluster doubles.

use kvs_balance::formula::imbalance_ratio;
use kvs_balance::weighted::{keys_carrying_fraction, weighted_imbalance, zipf_weights};
use kvs_bench::{banner, Csv};
use kvs_simcore::RngHub;

fn main() {
    banner(
        "Table A (§II)",
        "phone-book example: expected imbalance by partition-key choice",
    );
    let mut csv = Csv::new(
        "table_a",
        &["layout", "keys", "nodes", "formula1_pct", "paper_pct"],
    );

    println!("\nFormula 1, ten servers:");
    let rows: [(&str, u64, f64); 3] = [
        ("by country (200 keys)", 200, 34.0),
        ("by city (1M keys)", 1_000_000, 0.5),
        ("by subscriber (1B keys)", 1_000_000_000, 0.015),
    ];
    for (label, keys, paper_pct) in rows {
        let p = imbalance_ratio(keys, 10) * 100.0;
        println!("  {label:<28} p ≈ {p:>7.3}%   (paper: ≈{paper_pct}%)");
        csv.row(&[&label, &keys, &10, &format!("{p:.4}"), &paper_pct]);
    }

    println!("\nWeighted cities (half the population in the 500 biggest):");
    // Build a Zipf city-size distribution and confirm the paper's premise.
    let weights = zipf_weights(1_000_000, 1.0);
    let hot = keys_carrying_fraction(&weights, 0.5);
    println!("  Zipf(1) over 1M cities: {hot} keys carry half the load");
    for nodes in [10u64, 20] {
        let p = imbalance_ratio(500, nodes) * 100.0;
        let paper = if nodes == 10 { 21.0 } else { 35.0 };
        println!("  500 hot keys on {nodes:>2} nodes: Formula 1 → {p:>5.1}%   (paper: ≈{paper}%)");
        csv.row(&[
            &"500 hot cities",
            &500u64,
            &nodes,
            &format!("{p:.2}"),
            &paper,
        ]);
    }

    // Monte-Carlo cross-check of the weighted layout itself.
    let hub = RngHub::new(0xAB1E);
    let mut rng = hub.stream("table-a");
    println!("\nMonte-Carlo (1 000 trials, full Zipf weight vector, 100k cities):");
    let weights_small = zipf_weights(100_000, 1.0);
    for nodes in [10usize, 20] {
        let sim = weighted_imbalance(&weights_small, nodes, 1_000, &mut rng);
        println!(
            "  {nodes:>2} nodes: mean excess of the most loaded node = {:.1}% (worst {:.1}%)",
            sim.mean_relative_excess * 100.0,
            sim.worst_relative_excess * 100.0
        );
    }
    println!("\nReading: imbalance falls with keys (34% → 0.5% → 0.015%) but the");
    println!("weighted layout behaves like its hot-key count, and doubling the");
    println!("cluster makes it worse (21% → 35%), exactly as §II argues.");
    csv.finish();
}
