//! Figure 1 — data-model influence on scalability (original slow master).
//!
//! Bars: observed query time per (data model, cluster size); solid line:
//! ideal linear scaling from the single-node time; dotted line: the
//! balanced-workload estimate. Labels: relative difference real vs ideal.
//! Paper reference points at 16 nodes: coarse ≈ +108 %, medium ≈ +62 %,
//! fine ≈ +180 % (the most master-penalized workload).

use kvs_bench::{banner, elements_from_env, fmt_ms, fmt_pct, Csv, PAPER_NODE_COUNTS};
use kvscale::workloads::DataModel;
use kvscale::Study;

fn main() {
    let elements = elements_from_env();
    banner(
        "Figure 1",
        "data model influence on scalability — slow master (150 µs/msg)",
    );
    println!("dataset: {elements} elements; models: coarse 100×10k / medium 1k×1k / fine 10k×100 (paper ratios)\n");
    let study = Study::with_slow_master(elements);
    let table = study.scalability(&DataModel::ALL, &PAPER_NODE_COUNTS);

    let mut csv = Csv::new(
        "fig01",
        &[
            "model",
            "nodes",
            "observed_ms",
            "ideal_ms",
            "balanced_ms",
            "overhead_vs_ideal",
            "load_excess",
            "bottleneck",
        ],
    );
    println!(
        "{:<16} {:>5} {:>10} {:>10} {:>10} {:>8}  bottleneck",
        "model", "nodes", "observed", "ideal", "balanced", "vs ideal"
    );
    for cell in &table.cells {
        println!(
            "{:<16} {:>5} {:>10} {:>10} {:>10} {:>8}  {:?}",
            cell.model.label(),
            cell.nodes,
            fmt_ms(cell.observed_ms),
            fmt_ms(cell.ideal_ms),
            fmt_ms(cell.balanced_ms),
            fmt_pct(cell.overhead_vs_ideal()),
            cell.bottleneck,
        );
        csv.row(&[
            &cell.model.label(),
            &cell.nodes,
            &format!("{:.2}", cell.observed_ms),
            &format!("{:.2}", cell.ideal_ms),
            &format!("{:.2}", cell.balanced_ms),
            &format!("{:.4}", cell.overhead_vs_ideal()),
            &format!("{:.4}", cell.load_excess),
            &format!("{:?}", cell.bottleneck),
        ]);
    }
    println!("\nReading: none of the models scales perfectly; coarse/medium track their");
    println!("balanced line (imbalance-dominated) while fine's balanced line diverges");
    println!("from ideal — the master, not imbalance, is its problem (see Figure 4).");
    csv.finish();
}
