//! Durable-store drill: the first machine-readable data point for the
//! persistence tier's perf trajectory.
//!
//! Measures, on a scratch directory, the four costs the durable path
//! added: sustained WAL+memtable ingest, memtable flush to an on-disk
//! SSTable, tiered compaction, and point-read latency through the block
//! cache (with the receipt's disk-block charges split out) — then kills
//! the table and times a full crash recovery (manifest load + WAL
//! replay). Results print human-readably and land as
//! `target/figures/BENCH_store.json` so CI runs accumulate a comparable
//! perf series.
//!
//! Scale: `KVSCALE_ELEMENTS` cells (default the paper's one million),
//! `KVSCALE_STORE_READS` read samples (default 10 000). Fsync is `Never`
//! throughout — the drill measures the code path, not the disk's
//! `fdatasync` latency, and the recovery phase only needs the files, not
//! their sync barriers.

use kvs_bench::json::{self, int, num, obj, s};
use kvs_bench::{banner, elements_from_env, fmt_ms};
use kvs_store::{Cell, DurableOptions, DurableTable, FsyncPolicy, PartitionKey, TempDir};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const CELLS_PER_PARTITION: u64 = 64;
const PAYLOAD_BYTES: usize = 48;
const KINDS: u8 = 4;

fn reads_from_env() -> u64 {
    std::env::var("KVSCALE_STORE_READS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000)
}

fn cell(clustering: u64) -> Cell {
    Cell::new(
        clustering,
        (clustering % KINDS as u64) as u8,
        vec![clustering as u8; PAYLOAD_BYTES],
    )
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let ix = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[ix]
}

fn per_sec(count: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

fn main() {
    banner(
        "BENCH_store",
        "durable tier: ingest / flush / compaction / read / recovery",
    );
    let cells = elements_from_env();
    let partitions = (cells / CELLS_PER_PARTITION).max(1);
    let reads = reads_from_env();
    let dir = TempDir::new("bench-store");
    // Pin the flush threshold to ~1/8 of the dataset so flush-on-threshold
    // and compaction both have real work at any KVSCALE_ELEMENTS, not just
    // the paper's million.
    let cell_bytes = cell(0).encoded_len() as u64;
    let opts = DurableOptions {
        fsync: FsyncPolicy::Never,
        memtable_flush_bytes: ((cells * cell_bytes) / 8).clamp(64 * 1024, 16 * 1024 * 1024)
            as usize,
        ..DurableOptions::default()
    };

    // Phase 1 — sustained ingest: every put is a WAL append plus a
    // memtable insert, with flush-on-threshold firing as it would in
    // production.
    let (mut table, _) = DurableTable::open(dir.path(), opts.clone()).expect("open scratch store");
    let ingest_start = Instant::now();
    for p in 0..partitions {
        let pk = PartitionKey::from_id(p);
        for c in 0..CELLS_PER_PARTITION {
            table.put(pk.clone(), cell(c)).expect("put");
        }
    }
    let ingest_secs = ingest_start.elapsed().as_secs_f64();
    let ingested = partitions * CELLS_PER_PARTITION;
    let auto_flushes = table.metrics().flushes;

    // Phase 2 — one explicit flush of whatever the threshold left in the
    // memtable, timed alone: SSTable build + write + WAL rotation +
    // manifest commit.
    let memtable_cells = table.memtable_cells() as u64;
    let bytes_before = table.metrics().sst_bytes_written;
    let flush_start = Instant::now();
    table.flush().expect("flush");
    let flush_secs = flush_start.elapsed().as_secs_f64();
    let flush_bytes = table.metrics().sst_bytes_written - bytes_before;

    // Phase 3 — compact every run into one generation.
    let runs_before = table.sstable_count();
    let bytes_before = table.metrics().sst_bytes_written;
    let compact_start = Instant::now();
    table.compact().expect("compact");
    let compact_secs = compact_start.elapsed().as_secs_f64();
    let compact_bytes = table.metrics().sst_bytes_written - bytes_before;

    // Phase 4 — point reads of random partitions through the block
    // cache; the receipt splits cold block fetches from cache hits.
    let mut rng = StdRng::seed_from_u64(0xB_57);
    let mut lat_us: Vec<u64> = Vec::with_capacity(reads as usize);
    let mut disk_blocks = 0u64;
    let mut cache_hits = 0u64;
    let mut disk_bytes = 0u64;
    for _ in 0..reads {
        let pk = PartitionKey::from_id(rng.gen_range(0..partitions));
        let read_start = Instant::now();
        let (row, receipt) = table.get(&pk).expect("read");
        lat_us.push(read_start.elapsed().as_micros() as u64);
        assert_eq!(row.len() as u64, CELLS_PER_PARTITION, "short read");
        disk_blocks += receipt.disk_blocks_read;
        cache_hits += receipt.disk_block_cache_hits;
        disk_bytes += receipt.disk_bytes_read;
    }
    lat_us.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&lat_us, 0.50),
        percentile(&lat_us, 0.95),
        percentile(&lat_us, 0.99),
    );

    // Phase 5 — leave a WAL tail, drop the table (a crash, minus the
    // fsync question), and time the full recovery.
    let tail_cells = (partitions.min(1_000)) * 2;
    for p in 0..partitions.min(1_000) {
        let pk = PartitionKey::from_id(p);
        table
            .put(pk.clone(), cell(CELLS_PER_PARTITION))
            .expect("tail put");
        table
            .put(pk, cell(CELLS_PER_PARTITION + 1))
            .expect("tail put");
    }
    table.sync_wal().expect("sync tail");
    drop(table);
    let recover_start = Instant::now();
    let (recovered, report) = DurableTable::open(dir.path(), opts).expect("recover");
    let recover_secs = recover_start.elapsed().as_secs_f64();
    assert_eq!(report.wal_records_replayed, tail_cells, "tail lost");
    assert!(report.sstables_loaded >= 1, "no SSTable recovered");
    drop(recovered);

    println!(
        "ingest    {:>10.0} cells/s   ({} cells, {} auto-flushes, {})",
        per_sec(ingested, ingest_secs),
        ingested,
        auto_flushes,
        fmt_ms(ingest_secs * 1_000.0),
    );
    println!(
        "flush     {:>10.0} MiB/s     ({} cells -> {} bytes, {})",
        per_sec(flush_bytes, flush_secs) / (1024.0 * 1024.0),
        memtable_cells,
        flush_bytes,
        fmt_ms(flush_secs * 1_000.0),
    );
    println!(
        "compact   {:>10.0} MiB/s     ({} runs -> 1, {} bytes, {})",
        per_sec(compact_bytes, compact_secs) / (1024.0 * 1024.0),
        runs_before,
        compact_bytes,
        fmt_ms(compact_secs * 1_000.0),
    );
    println!(
        "read      p50 {p50} µs  p95 {p95} µs  p99 {p99} µs   \
         ({reads} reads, {disk_blocks} disk blocks, {cache_hits} cache hits)",
    );
    println!(
        "recovery  {:>10.0} recs/s    ({} WAL records, {} SSTables, {})",
        per_sec(report.wal_records_replayed, recover_secs),
        report.wal_records_replayed,
        report.sstables_loaded,
        fmt_ms(recover_secs * 1_000.0),
    );

    json::write_report(&json::report(
        "store",
        obj(vec![
            ("cells", int(ingested)),
            ("partitions", int(partitions)),
            ("payload_bytes", int(PAYLOAD_BYTES as u64)),
            ("fsync", s("never")),
        ]),
        obj(vec![
            (
                "ingest",
                obj(vec![
                    ("cells_per_sec", num(per_sec(ingested, ingest_secs))),
                    ("wall_ms", num(ingest_secs * 1_000.0)),
                    ("auto_flushes", int(auto_flushes)),
                ]),
            ),
            (
                "flush",
                obj(vec![
                    ("bytes_per_sec", num(per_sec(flush_bytes, flush_secs))),
                    ("wall_ms", num(flush_secs * 1_000.0)),
                    ("sst_bytes", int(flush_bytes)),
                ]),
            ),
            (
                "compaction",
                obj(vec![
                    ("bytes_per_sec", num(per_sec(compact_bytes, compact_secs))),
                    ("wall_ms", num(compact_secs * 1_000.0)),
                    ("input_runs", int(runs_before as u64)),
                ]),
            ),
            (
                "read",
                obj(vec![
                    ("samples", int(reads)),
                    ("p50_us", int(p50)),
                    ("p95_us", int(p95)),
                    ("p99_us", int(p99)),
                    ("disk_blocks_read", int(disk_blocks)),
                    ("disk_block_cache_hits", int(cache_hits)),
                    ("disk_bytes_read", int(disk_bytes)),
                ]),
            ),
            (
                "recovery",
                obj(vec![
                    ("wall_ms", num(recover_secs * 1_000.0)),
                    ("wal_records_replayed", int(report.wal_records_replayed)),
                    (
                        "records_per_sec",
                        num(per_sec(report.wal_records_replayed, recover_secs)),
                    ),
                    ("sstables_loaded", int(report.sstables_loaded as u64)),
                ]),
            ),
        ]),
    ))
    .expect("write BENCH_store.json");
}
