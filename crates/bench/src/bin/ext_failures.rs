//! Extension — failure injection: what a node death costs a distributed
//! query.
//!
//! The paper's §VIII notes that replicas exist for exactly this moment
//! ("the Cassandra driver selects a replica only if the original node is
//! malfunctioning"). This harness kills a node at varying points of a
//! query and measures the failover cost under the master's timeout.

use kvs_bench::{banner, fmt_ms, Csv};
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{run_query, ClusterConfig, ClusterData, NodeFailure};
use kvs_simcore::SimDuration;
use kvs_store::{PartitionKey, TableOptions};

const NODES: u32 = 8;
const PARTITIONS: u64 = 400;
const CELLS: u64 = 500;

fn main() {
    banner(
        "Extension",
        "failure injection: node death, timeout and replica failover",
    );
    let parts = uniform_partitions(PARTITIONS, CELLS, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();

    let mut csv = Csv::new(
        "ext_failures",
        &[
            "scenario",
            "timeout_ms",
            "failovers",
            "makespan_ms",
            "slowdown",
        ],
    );
    let baseline = {
        let mut data = ClusterData::load(NODES, 2, TableOptions::default(), parts.clone());
        let mut cfg = ClusterConfig::paper_optimized_master(NODES);
        cfg.replication_factor = 2;
        run_query(&cfg, &mut data, &keys)
    };
    println!(
        "\nbaseline (healthy, rf=2): {} makespan, {} requests\n",
        fmt_ms(baseline.makespan.as_millis_f64()),
        baseline.messages
    );
    println!(
        "{:<26} {:>10} {:>10} {:>11} {:>9}",
        "scenario", "timeout", "failovers", "makespan", "slowdown"
    );
    csv.row(&[
        &"healthy",
        &0u64,
        &baseline.failovers,
        &format!("{:.1}", baseline.makespan.as_millis_f64()),
        &"1.00",
    ]);

    for (label, fail_at, timeout_ms) in [
        ("node dead at start", 0u64, 100u64),
        ("node dead at start", 0, 500),
        ("node dead at start", 0, 2_000),
        ("node dies mid-dispatch", 3, 500),
    ] {
        let mut data = ClusterData::load(NODES, 2, TableOptions::default(), parts.clone());
        let mut cfg = ClusterConfig::paper_optimized_master(NODES);
        cfg.replication_factor = 2;
        cfg.failures = vec![NodeFailure {
            node: 0,
            at: SimDuration::from_millis(fail_at),
        }];
        // (The 400-message dispatch wave lasts ≈ 7.6 ms; a 3 ms death
        // catches roughly half of node 0's requests in flight.)
        cfg.failure_timeout = SimDuration::from_millis(timeout_ms);
        let result = run_query(&cfg, &mut data, &keys);
        assert_eq!(
            result.counts_by_kind, baseline.counts_by_kind,
            "failover changed the answer"
        );
        let slowdown = result.makespan.as_millis_f64() / baseline.makespan.as_millis_f64();
        println!(
            "{:<26} {:>8}ms {:>10} {:>11} {:>8.2}x",
            label,
            timeout_ms,
            result.failovers,
            fmt_ms(result.makespan.as_millis_f64()),
            slowdown
        );
        csv.row(&[
            &label,
            &timeout_ms,
            &result.failovers,
            &format!("{:.1}", result.makespan.as_millis_f64()),
            &format!("{slowdown:.3}"),
        ]);
    }
    println!("\nReading: every answer is identical — replication absorbs the failure —");
    println!("but the *time* cost scales with the detection timeout and with how many");
    println!("requests were aimed at the dead node. A paper-era 2 s RPC timeout turns");
    println!("one dead node into a multi-second query; fast failure detection is part");
    println!("of meeting the SLA, not an ops nicety.");
    csv.finish();
}
