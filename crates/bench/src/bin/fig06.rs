//! Figure 6 — database response time versus row size, and the discontinuity
//! at ≈1425 elements (Cassandra's 64 KiB `column_index_size_in_kb`).
//!
//! Replays the paper's stratified sampling against the store, fits the
//! two-segment piecewise regression, and compares the recovered
//! coefficients with Formula 6.

use kvs_bench::{banner, Csv};
use kvs_cluster::{db_microbench, ClusterConfig, ClusterData};
use kvs_model::regression::fit_piecewise;
use kvs_simcore::RngHub;
use kvs_store::cost::{
    PAPER_BASE_MS, PAPER_INDEXED_BASE_MS, PAPER_INDEXED_PER_CELL_MS, PAPER_INDEX_THRESHOLD_CELLS,
    PAPER_PER_CELL_MS,
};
use kvs_store::{PartitionKey, TableOptions};
use kvs_workloads::sampling::{partitions_with_sizes, stratified_sizes};

fn main() {
    banner(
        "Figure 6",
        "response time vs row size — stratified sample, serial reads",
    );
    let hub = RngHub::new(0xF166);
    let mut rng = hub.stream("fig6");
    // 25 strata × 8 samples across 1..10 000 cells, plus a dense band
    // around the threshold for the close-up plot.
    let mut sizes = stratified_sizes(1, 10_000, 25, 8, &mut rng);
    sizes.extend(stratified_sizes(1_200, 1_700, 10, 4, &mut rng));
    let parts = partitions_with_sizes(&sizes, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
    // Calibration profile + per-key median over repetitions — the paper's
    // "several repetitions of our test reading in random order".
    let cfg = ClusterConfig::paper_optimized_master(1).calibration();
    let mut data = ClusterData::load(1, 1, TableOptions::default(), parts);
    const REPS: usize = 9;
    let runs: Vec<_> = (0..REPS)
        .map(|r| db_microbench(&cfg, &mut data, &keys, 1, &format!("fig6-rep{r}")))
        .collect();
    let samples: Vec<(u64, f64)> = (0..keys.len())
        .map(|i| {
            let mut times: Vec<f64> = runs.iter().map(|r| r.samples[i].ms).collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (runs[0].samples[i].cells, times[REPS / 2])
        })
        .collect();

    let mut csv = Csv::new("fig06", &["cells", "response_ms"]);
    for (cells, ms) in &samples {
        csv.row(&[cells, &format!("{ms:.3}")]);
    }

    let xs: Vec<f64> = samples.iter().map(|(c, _)| *c as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|(_, ms)| *ms).collect();
    let fit = fit_piecewise(&xs, &ys).expect("enough samples to fit");

    println!(
        "\nsamples: {} rows (median of {REPS} reads each), sizes 1..10000 cells",
        samples.len()
    );
    println!("\npiecewise fit (this run)        vs   paper's Formula 6");
    println!(
        "  breakpoint : {:>8.0} cells          {} cells",
        fit.breakpoint, PAPER_INDEX_THRESHOLD_CELLS
    );
    println!(
        "  below      : {:.3} + {:.4}·s ms     {PAPER_BASE_MS} + {PAPER_PER_CELL_MS}·s ms",
        fit.below.intercept, fit.below.slope
    );
    println!(
        "  above      : {:.3} + {:.4}·s ms     {PAPER_INDEXED_BASE_MS} + {PAPER_INDEXED_PER_CELL_MS}·s ms",
        fit.above.intercept, fit.above.slope
    );
    println!(
        "  jump at breakpoint: {:+.2} ms (paper: ≈ +7 ms)",
        fit.jump()
    );
    println!(
        "  R² below/above: {:.4} / {:.4}",
        fit.below.r2, fit.above.r2
    );

    // Close-up (the paper's right-hand plot): mean latency per 250-cell
    // bucket around the threshold.
    println!("\nclose-up ≤ 2500 cells (bucketed means):");
    for bucket in 0..10u64 {
        let lo = bucket * 250;
        let hi = lo + 250;
        let in_bucket: Vec<f64> = samples
            .iter()
            .filter(|(cells, _)| *cells >= lo && *cells < hi)
            .map(|(_, ms)| *ms)
            .collect();
        if in_bucket.is_empty() {
            continue;
        }
        let mean = in_bucket.iter().sum::<f64>() / in_bucket.len() as f64;
        let bar = "#".repeat((mean / 2.0).round() as usize);
        println!("  {lo:>5}-{hi:<5} | {mean:>7.2} ms {bar}");
    }
    println!("\nReading: latency is linear in row size with a visible jump where the");
    println!("column index kicks in — the store builds that index mechanically at");
    println!("64 KiB, which is {PAPER_INDEX_THRESHOLD_CELLS} of our 46-byte cells.");
    csv.finish();
}
