//! Extension — throughput/latency curve for the serving mode.
//!
//! The paper's introduction motivates DHT stores with "low response time on
//! simple read/write requests" and real-time analytics; its model predicts
//! a per-node throughput ceiling (`DB_model`, Formula 8). This harness
//! drives the simulated cluster *open loop* (Poisson arrivals) across
//! offered loads and shows the classic knee: flat latency until the
//! model-predicted capacity, queueing blow-up past it.

use kvs_bench::{banner, Csv};
use kvs_cluster::data::uniform_partitions;
use kvs_cluster::{run_open_loop, ClusterConfig, ClusterData};
use kvs_model::SystemModel;
use kvs_simcore::SimDuration;
use kvs_store::{PartitionKey, TableOptions};

const NODES: u32 = 8;
const CELLS: u64 = 250;
const PARTITIONS: u64 = 2_000;

fn main() {
    banner(
        "Extension",
        "open-loop throughput vs latency — the serving-mode knee",
    );
    let model = SystemModel::paper_optimized();
    let capacity_rps = NODES as f64 * model.db.node_throughput_rps(CELLS as f64);
    // Formula 8 assumes a perfectly even key spread; the hash placement
    // concentrates keymax/(keys/n) more traffic on the hottest node, which
    // caps the whole cluster first.
    let share = kvs_balance::formula::keymax(PARTITIONS as f64, NODES as u64)
        / (PARTITIONS as f64 / NODES as f64);
    let adjusted_rps = capacity_rps / share;
    println!(
        "\n{NODES} nodes serving {CELLS}-cell rows; Formula 8 capacity ≈ {capacity_rps:.0} rps \
         (≈ {adjusted_rps:.0} rps after the key-placement imbalance of Formula 5)\n"
    );
    let parts = uniform_partitions(PARTITIONS, CELLS, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();

    let mut csv = Csv::new(
        "ext_latency_curve",
        &[
            "offered_rps",
            "utilization",
            "achieved_rps",
            "p50_ms",
            "p90_ms",
            "p99_ms",
        ],
    );
    println!(
        "{:>12} {:>12} {:>13} {:>9} {:>9} {:>9}",
        "offered rps", "utilization", "achieved rps", "p50", "p90", "p99"
    );
    for frac in [0.2f64, 0.4, 0.6, 0.8, 0.9, 1.0, 1.1, 1.3] {
        let offered = capacity_rps * frac;
        let mut data = ClusterData::load(NODES, 1, TableOptions::default(), parts.clone());
        let mut cfg = ClusterConfig::paper_optimized_master(NODES);
        // Serve at the row size's optimal executor width so the cluster can
        // actually reach the Formula 8 (peak-parallelism) regime.
        cfg.db.parallelism = 32;
        let result = run_open_loop(
            &cfg,
            &mut data,
            &keys,
            offered,
            SimDuration::from_secs(3),
            &format!("lat-{frac}"),
        );
        let s = result.latency_ms.as_ref().expect("completions");
        println!(
            "{:>12.0} {:>11.0}% {:>13.0} {:>8.1} {:>8.1} {:>8.1}",
            offered,
            frac * 100.0,
            result.achieved_rps,
            s.p50,
            s.p90,
            s.p99,
        );
        csv.row(&[
            &format!("{offered:.0}"),
            &format!("{frac:.2}"),
            &format!("{:.1}", result.achieved_rps),
            &format!("{:.2}", s.p50),
            &format!("{:.2}", s.p90),
            &format!("{:.2}", s.p99),
        ]);
    }
    println!("\nReading: latency stays near the service floor until the offered load");
    println!("approaches the imbalance-adjusted Formula 8 capacity, then the achieved");
    println!("rate pins while latency grows without bound — the quantitative version");
    println!("of 'size the cluster for the offered load'.");
    csv.finish();
}
