//! Figure 3 — probability density of the most loaded node's key count when
//! 100 keys spread at random over 16 nodes (brute force), with the
//! experiment's observed value and the Formula 1 prediction marked.
//!
//! Paper reading: the observed max load of 10 was not unlucky — "in 60 % of
//! the cases we would have a more unbalanced scenario".

use kvs_balance::formula::keymax;
use kvs_balance::simulation::{max_load_density, Placement};
use kvs_bench::{banner, Csv};
use kvs_simcore::RngHub;

const KEYS: u64 = 100;
const NODES: usize = 16;
const TRIALS: u64 = 100_000;
const OBSERVED: u64 = 10; // what Figure 2's run showed

fn main() {
    banner(
        "Figure 3",
        "fine-grained: probability density of max-loaded node (100 keys, 16 nodes)",
    );
    let hub = RngHub::new(0xF163);
    let mut rng = hub.stream("fig3");
    let density = max_load_density(KEYS, NODES, Placement::SingleChoice, TRIALS, &mut rng);
    let predicted = keymax(KEYS as f64, NODES as u64);

    let mut csv = Csv::new("fig03", &["max_load", "probability"]);
    println!("\n{TRIALS} brute-force trials:\n");
    for (load, p) in density.points() {
        let bar = "#".repeat((p * 250.0).round() as usize);
        let mut marks = String::new();
        if load == OBSERVED {
            marks.push_str("  <- observed in Figure 2");
        }
        if load == predicted.round() as u64 {
            marks.push_str("  <- Formula 1 prediction");
        }
        println!("  {load:>3} | {p:>6.3} {bar}{marks}");
        csv.row(&[&load, &format!("{p:.5}")]);
    }
    println!("\nFormula 1 expected max load : {predicted:.2} keys");
    println!("empirical mean max load     : {:.2} keys", density.mean());
    println!("empirical mode              : {} keys", density.mode());
    println!(
        "P(max load > {OBSERVED})            : {:.1}%  (paper: ≈60% of cases are worse)",
        density.prob_worse_than(OBSERVED) * 100.0
    );
    println!(
        "P(max load ≥ {OBSERVED})            : {:.1}%",
        density.prob_worse_than(OBSERVED - 1) * 100.0
    );

    // Bonus: the related-work comparison (§VIII) — power of two choices.
    let mut rng2 = hub.stream("fig3-two-choice");
    let two = max_load_density(KEYS, NODES, Placement::TWO_CHOICE, TRIALS / 10, &mut rng2);
    println!(
        "\n(power of two choices would give mean max load {:.2} — the O(log log n) regime of §VIII)",
        two.mean()
    );
    csv.finish();
}
