//! Ablation — virtual nodes: how many tokens per node does the ring need?
//!
//! Two distinct imbalances stack in a DHT: the *arc-length* imbalance of
//! the ring itself (fixable with more vnodes) and the *balls-into-bins*
//! imbalance of the keys (fixable only with more keys — Formula 1). This
//! sweep separates them, showing where adding vnodes stops helping.

use kvs_balance::formula::imbalance_ratio;
use kvs_balance::HashRing;
use kvs_bench::{banner, Csv};

fn main() {
    banner(
        "Ablation",
        "virtual nodes: ring ownership spread vs key imbalance",
    );
    let nodes = 16u32;
    let mut csv = Csv::new(
        "ablation_vnodes",
        &[
            "vnodes",
            "ownership_spread",
            "key_excess_1k",
            "key_excess_100k",
        ],
    );
    println!(
        "\n{:>8} {:>18} {:>16} {:>17}",
        "vnodes", "ownership spread", "1k-key excess", "100k-key excess"
    );
    for vnodes in [1usize, 4, 16, 64, 256, 1024] {
        let ring = HashRing::with_nodes(nodes, vnodes);
        let own = ring.ownership();
        let max = own.values().cloned().fold(0.0f64, f64::max);
        let min = own.values().cloned().fold(1.0f64, f64::min);
        let spread = (max - min) * nodes as f64; // relative to the fair share
        let excess = |keys: u64| -> f64 {
            let mut counts = vec![0u64; nodes as usize];
            for k in 0..keys {
                counts[ring.node_for_key(&k.to_le_bytes()).0 as usize] += 1;
            }
            let mean = keys as f64 / nodes as f64;
            *counts.iter().max().expect("non-empty") as f64 / mean - 1.0
        };
        let e1k = excess(1_000);
        let e100k = excess(100_000);
        println!(
            "{vnodes:>8} {:>17.1}% {:>15.1}% {:>16.2}%",
            spread * 100.0,
            e1k * 100.0,
            e100k * 100.0
        );
        csv.row(&[
            &vnodes,
            &format!("{spread:.4}"),
            &format!("{e1k:.4}"),
            &format!("{e100k:.4}"),
        ]);
    }
    println!(
        "\nFormula 1 floors (pure balls-into-bins, perfect ring): {:.1}% at 1k keys, {:.2}% at 100k",
        imbalance_ratio(1_000, nodes as u64) * 100.0,
        imbalance_ratio(100_000, nodes as u64) * 100.0
    );
    println!("\nReading: a handful of vnodes kills the arc-length imbalance, after which");
    println!("the key excess pins at the Formula 1 floor — more tokens cannot beat the");
    println!("balls-into-bins bound; only more keys can (the paper's core message).");
    csv.finish();
}
