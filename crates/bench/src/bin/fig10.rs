//! Figure 10 — optimal settings versus ideal scalability: how much time
//! the optimally configured query loses to ideal linear scaling, split
//! into the imbalance share and the database-efficiency share.
//!
//! Paper reading: "even finding the optimal configuration parameters; we
//! still have a consistent loss. For example, with 16 nodes the query
//! requires 10 % more of what would have been necessary with a distributed
//! workload."

use kvs_bench::{banner, elements_from_env, fmt_pct, Csv};
use kvs_model::optimizer::scalability_losses;
use kvs_model::SystemModel;

fn main() {
    let elements = elements_from_env() as f64;
    banner(
        "Figure 10",
        "loss vs ideal scalability at the optimum, decomposed",
    );
    let model = SystemModel::paper_optimized();
    let nodes: Vec<u64> = vec![2, 4, 8, 16];
    let losses = scalability_losses(&model, elements, &nodes);

    let mut csv = Csv::new(
        "fig10",
        &["nodes", "total_loss", "imbalance_loss", "efficiency_loss"],
    );
    println!(
        "\n{:>6} {:>12} {:>16} {:>18}",
        "nodes", "total loss", "from imbalance", "sacrificed DB eff."
    );
    for l in &losses {
        println!(
            "{:>6} {:>11.1}% {:>15.1}% {:>17.2}%",
            l.nodes,
            l.total_loss * 100.0,
            l.imbalance_loss * 100.0,
            l.efficiency_loss * 100.0,
        );
        csv.row(&[
            &l.nodes,
            &format!("{:.4}", l.total_loss),
            &format!("{:.4}", l.imbalance_loss),
            &format!("{:.4}", l.efficiency_loss),
        ]);
    }
    let at16 = losses.last().expect("16-node row");
    println!(
        "\nat 16 nodes the optimal query runs {} above ideal (paper: ≈+10%);",
        fmt_pct(at16.total_loss)
    );
    println!("the gap between total and imbalance loss is the database efficiency the");
    println!("optimizer deliberately sacrificed for better distribution.");
    csv.finish();
}
