//! The shared `BENCH_*.json` emitter.
//!
//! Every bench binary that produces machine-readable results goes
//! through this module, so the perf trajectory CI persists is uniform:
//! one file per drill, one envelope shape, one schema tag. The value
//! type (order-preserving objects, pretty printer, parser) is borrowed
//! from `kvs_lint::json` — the same dependency-free layer that already
//! round-trips the lint baseline — and this module adds the envelope
//! builder, the latency-summary shape, and the validator the
//! `bench_schema_check` bin (and CI) run against emitted files.
//!
//! ## Envelope (`kvs-bench/v1`)
//!
//! ```json
//! {
//!   "schema": "kvs-bench/v1",
//!   "bench": "workloads",
//!   "config": { ... knobs that shaped the run ... },
//!   "results": { ... or [ ... ] }
//! }
//! ```
//!
//! `schema` pins the envelope version; `bench` names the drill (the file
//! is `BENCH_<bench>.json`); `config` records every knob a re-anchor
//! needs to reproduce the run; `results` is drill-specific. The
//! validator additionally rejects non-finite numbers anywhere in the
//! document — a NaN percentile means a bug, not a result.

use std::fs;
use std::io;
use std::path::PathBuf;

use kvs_simcore::stats::percentile_sorted;

pub use kvs_lint::json::{obj, parse, s, Value};

/// The envelope version this workspace emits and validates.
pub const SCHEMA: &str = "kvs-bench/v1";

/// Shorthand for a number value.
pub fn num(x: f64) -> Value {
    Value::Num(x)
}

/// Shorthand for an integer value.
pub fn int(x: u64) -> Value {
    Value::Num(x as f64)
}

/// Builds the `kvs-bench/v1` envelope around a drill's config and
/// results.
pub fn report(bench: &str, config: Value, results: Value) -> Value {
    obj(vec![
        ("schema", s(SCHEMA)),
        ("bench", s(bench)),
        ("config", config),
        ("results", results),
    ])
}

/// The standard latency-summary object: count, mean and the quantiles
/// the trajectory tracks (p50/p95/p99 per the bench contract, plus p90
/// and the extremes). `samples` need not be sorted.
///
/// # Panics
/// If `samples` is empty.
pub fn latency_summary_ms(samples: &[f64]) -> Value {
    assert!(!samples.is_empty(), "latency summary of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency sample"));
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    obj(vec![
        ("count", int(sorted.len() as u64)),
        ("mean_ms", num(mean)),
        ("min_ms", num(sorted[0])),
        ("p50_ms", num(percentile_sorted(&sorted, 0.50))),
        ("p90_ms", num(percentile_sorted(&sorted, 0.90))),
        ("p95_ms", num(percentile_sorted(&sorted, 0.95))),
        ("p99_ms", num(percentile_sorted(&sorted, 0.99))),
        ("max_ms", num(sorted[sorted.len() - 1])),
    ])
}

/// Checks a document against the `kvs-bench/v1` envelope. Returns the
/// first violation found.
pub fn validate(v: &Value) -> Result<(), String> {
    let Value::Obj(_) = v else {
        return Err("top level must be an object".to_string());
    };
    match v.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        Some(other) => return Err(format!("unknown schema {other:?} (want {SCHEMA:?})")),
        None => return Err("missing string field \"schema\"".to_string()),
    }
    match v.get("bench").and_then(Value::as_str) {
        Some(name) if !name.is_empty() => {}
        _ => return Err("missing non-empty string field \"bench\"".to_string()),
    }
    match v.get("config") {
        Some(Value::Obj(_)) => {}
        _ => return Err("missing object field \"config\"".to_string()),
    }
    match v.get("results") {
        Some(Value::Obj(_)) | Some(Value::Arr(_)) => {}
        _ => return Err("missing object/array field \"results\"".to_string()),
    }
    check_finite(v, "$")
}

fn check_finite(v: &Value, path: &str) -> Result<(), String> {
    match v {
        Value::Num(n) if !n.is_finite() => Err(format!("non-finite number at {path}")),
        Value::Arr(items) => items
            .iter()
            .enumerate()
            .try_for_each(|(i, item)| check_finite(item, &format!("{path}[{i}]"))),
        Value::Obj(fields) => fields
            .iter()
            .try_for_each(|(k, val)| check_finite(val, &format!("{path}.{k}"))),
        _ => Ok(()),
    }
}

/// Validates and writes a report to `target/figures/BENCH_<bench>.json`
/// (the `bench` field names the file), reporting the path on stdout like
/// [`crate::Csv::finish`] does.
///
/// # Panics
/// If the report fails [`validate`] — a malformed emitter is a bug the
/// drill must not paper over.
pub fn write_report(report: &Value) -> io::Result<PathBuf> {
    validate(report).expect("BENCH report failed schema validation");
    let bench = report
        .get("bench")
        .and_then(Value::as_str)
        .expect("validated report has a bench name");
    let path = crate::figures_dir().join(format!("BENCH_{bench}.json"));
    fs::write(&path, report.to_pretty())?;
    println!("[json] {}", path.display());
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Value {
        report(
            "selftest_json",
            obj(vec![("requests", int(100)), ("theta", num(0.99))]),
            obj(vec![
                (
                    "latency",
                    latency_summary_ms(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]),
                ),
                ("curve", Value::Arr(vec![num(0.25), num(0.5), num(0.75)])),
                ("note", s("escaped \"quotes\" and\nnewlines")),
            ]),
        )
    }

    #[test]
    fn report_round_trips_through_text() {
        let r = sample_report();
        validate(&r).unwrap();
        let parsed = parse(&r.to_pretty()).unwrap();
        assert_eq!(parsed, r);
        validate(&parsed).unwrap();
    }

    #[test]
    fn latency_summary_quantiles_are_ordered() {
        let v = latency_summary_ms(&[5.0, 1.0, 9.0, 3.0, 7.0]);
        let get = |k: &str| v.get(k).and_then(Value::as_num).unwrap();
        assert_eq!(get("count"), 5.0);
        assert_eq!(get("min_ms"), 1.0);
        assert_eq!(get("max_ms"), 9.0);
        assert!(get("p50_ms") <= get("p90_ms"));
        assert!(get("p90_ms") <= get("p95_ms"));
        assert!(get("p95_ms") <= get("p99_ms"));
        assert!(get("p99_ms") <= get("max_ms"));
    }

    #[test]
    fn validator_rejects_broken_envelopes() {
        let missing_schema = obj(vec![("bench", s("x"))]);
        assert!(validate(&missing_schema).is_err());

        let wrong_schema = obj(vec![
            ("schema", s("kvs-bench/v0")),
            ("bench", s("x")),
            ("config", obj(vec![])),
            ("results", obj(vec![])),
        ]);
        assert!(validate(&wrong_schema)
            .unwrap_err()
            .contains("kvs-bench/v0"));

        let nan = report("x", obj(vec![]), obj(vec![("bad", num(f64::NAN))]));
        assert!(validate(&nan).unwrap_err().contains("$.results.bad"));

        assert!(validate(&s("not an object")).is_err());
    }

    #[test]
    fn write_report_lands_in_figures_dir() {
        let r = sample_report();
        let path = write_report(&r).unwrap();
        assert!(path.ends_with("BENCH_selftest_json.json"));
        let back = parse(&fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
