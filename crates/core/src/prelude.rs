//! One-stop imports for application code.
//!
//! ```
//! use kvscale::prelude::*;
//!
//! let model = SystemModel::paper_optimized();
//! let p = model.predict(1_000.0, 1_000.0, 8);
//! assert!(p.total_ms() > 0.0);
//! ```

pub use crate::methodology::{CalibratedModel, ScalabilityCell, ScalabilityTable, Study};
pub use kvs_balance::{expected_max_load, imbalance_ratio, keymax, HashRing, NodeId};
pub use kvs_cluster::{
    run_query, ClusterConfig, ClusterData, Codec, CodecKind, ReplicaPolicy, RunResult,
};
pub use kvs_model::{
    optimize_partitions, DbModel, GcModel, MasterModel, OptimalChoice, Prediction, SystemModel,
};
pub use kvs_simcore::{Engine, RngHub, SimDuration, SimTime};
pub use kvs_stages::{analyze, Bottleneck, Stage, StageReport};
pub use kvs_store::{Cell, CostModel, PartitionKey, Table, TableOptions};
pub use kvs_workloads::{D8Tree, DataModel};
