#![warn(missing_docs)]

//! # kvscale
//!
//! Reproduction of **"Exploiting key-value data stores scalability for
//! HPC"** (Cugnasco, Becerra, Torres, Ayguadé — ICPP 2017): a benchmarking
//! methodology and an analytical performance model for distributed
//! applications on DHT key-value stores, together with every substrate the
//! paper's experiments need (a Cassandra-like wide-column store, a
//! discrete-event cluster simulator, balls-into-bins placement theory, a
//! D8tree workload generator and a stage-tracing toolkit).
//!
//! This crate is the facade: it re-exports the workspace crates and adds
//! [`Study`], a single entry point that walks the paper's four-step
//! methodology (§IV):
//!
//! 1. **Scalability analysis** — [`Study::scalability`] runs the data
//!    models over increasing cluster sizes (Figures 1 and 5).
//! 2. **Stage definition** — every run is traced through the
//!    `master-to-slaves → in-queue → in-db → slaves-to-master` stages.
//! 3. **Bottleneck identification** — [`Study::profile`] returns the
//!    stage report and an ASCII Figure 4-style Gantt.
//! 4. **Statistical model** — [`Study::calibrate`] replays the Figure 6/7
//!    calibration experiments, fits the regressions, and hands back a
//!    [`kvs_model::SystemModel`] ready for the optimizer and the what-if
//!    analyses of §VII.
//!
//! ```
//! use kvscale::Study;
//! use kvscale::workloads::DataModel;
//!
//! // A laptop-sized study (the paper uses 1M elements; examples scale up).
//! let study = Study::new(20_000);
//! let table = study.scalability(&[DataModel::Fine], &[1, 2, 4]);
//! assert_eq!(table.cells.len(), 3);
//! let calibrated = study.calibrate();
//! let opt = calibrated.optimize(4);
//! assert!(opt.partitions >= 1);
//! ```

pub mod methodology;
pub mod prelude;

pub use methodology::{CalibratedModel, ScalabilityCell, ScalabilityTable, Study};

/// Re-export: balls-into-bins theory, hash ring, replica placement.
pub use kvs_balance as balance;
/// Re-export: the distributed master/slave prototype (sim + live).
pub use kvs_cluster as cluster;
/// Re-export: the analytical performance model.
pub use kvs_model as model;
/// Re-export: the TCP master/slave engine and `t_msg` calibration.
pub use kvs_net as net;
/// Re-export: the discrete-event simulation substrate.
pub use kvs_simcore as simcore;
/// Re-export: stage tracing and bottleneck classification.
pub use kvs_stages as stages;
/// Re-export: the wide-column store.
pub use kvs_store as store;
/// Re-export: datasets and data models.
pub use kvs_workloads as workloads;
