//! The four-step methodology (§IV) as a single driveable API.

use kvs_cluster::{db_microbench, run_query, ClusterConfig, ClusterData, RunResult};
use kvs_model::dbmodel::{ParallelismModel, QueryTimeModel};
use kvs_model::optimizer::{optimize_partitions, OptimalChoice};
use kvs_model::regression::{fit_loglinear, fit_piecewise, LogLinearFit, PiecewiseFit};
use kvs_model::{DbModel, MasterModel, SystemModel};
use kvs_simcore::RngHub;
use kvs_stages::gantt::{render, GanttOptions};
use kvs_stages::Bottleneck;
use kvs_store::{PartitionKey, TableOptions};
use kvs_workloads::sampling::{figure7_groups, partitions_with_sizes, stratified_sizes};
use kvs_workloads::DataModel;

pub use kvs_cluster::sim::{DbSample, MicrobenchResult};

/// A reproducibility study: the paper's methodology bound to one cluster
/// configuration and dataset size.
#[derive(Debug, Clone)]
pub struct Study {
    /// The cluster template; its `nodes` field is overridden per run.
    pub config: ClusterConfig,
    /// Total dataset size in elements (the paper uses one million).
    pub total_elements: u64,
    /// Number of cell kinds in the synthetic data.
    pub kinds: u8,
    /// Store options for the per-node tables.
    pub table_options: TableOptions,
}

impl Study {
    /// A study with the paper's *optimized* master preset.
    pub fn new(total_elements: u64) -> Self {
        Study {
            config: ClusterConfig::paper_optimized_master(1),
            total_elements,
            kinds: 4,
            table_options: TableOptions::default(),
        }
    }

    /// A study with the paper's original slow master (Figure 1 conditions).
    pub fn with_slow_master(total_elements: u64) -> Self {
        Study {
            config: ClusterConfig::paper_slow_master(1),
            ..Self::new(total_elements)
        }
    }

    fn config_for(&self, nodes: u32) -> ClusterConfig {
        let mut cfg = self.config.clone();
        cfg.nodes = nodes;
        cfg
    }

    /// Loads one data model onto a fresh cluster of `nodes` nodes and runs
    /// the full aggregation query (steps 2–3 happen implicitly: the result
    /// carries traces and the bottleneck classification).
    pub fn run(&self, model: DataModel, nodes: u32) -> RunResult {
        let cfg = self.config_for(nodes);
        let partitions = model.build_partitions(self.total_elements, self.kinds);
        let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
        let mut data = ClusterData::load(
            nodes,
            cfg.replication_factor,
            self.table_options.clone(),
            partitions,
        );
        run_query(&cfg, &mut data, &keys)
    }

    /// Runs an *arbitrary* granularity (e.g. the optimizer's Figure 9
    /// recommendation) instead of one of the paper's three presets.
    pub fn run_custom(&self, partitions: u64, nodes: u32) -> RunResult {
        let cfg = self.config_for(nodes);
        let parts = kvs_workloads::datamodels::custom_partitions(
            self.total_elements,
            partitions,
            self.kinds,
        );
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        let mut data = ClusterData::load(
            nodes,
            cfg.replication_factor,
            self.table_options.clone(),
            parts,
        );
        run_query(&cfg, &mut data, &keys)
    }

    /// Step 1: the scalability analysis of Figures 1 / 5 — every data
    /// model on every cluster size, with ideal and balanced baselines.
    pub fn scalability(&self, models: &[DataModel], node_counts: &[u32]) -> ScalabilityTable {
        let mut cells = Vec::new();
        for &model in models {
            let mut single_node_ms = None;
            for &nodes in node_counts {
                let result = self.run(model, nodes);
                let observed_ms = result.makespan.as_millis_f64();
                if nodes == 1 {
                    single_node_ms = Some(observed_ms);
                }
                let ideal_ms = single_node_ms
                    .map(|t1| t1 / nodes as f64)
                    .unwrap_or(f64::NAN);
                cells.push(ScalabilityCell {
                    model,
                    nodes,
                    observed_ms,
                    ideal_ms,
                    balanced_ms: result.balanced_time().as_millis_f64(),
                    load_excess: result.load_excess(),
                    bottleneck: result.report.bottleneck,
                });
            }
        }
        ScalabilityTable { cells }
    }

    /// Steps 2–3 for one configuration: the run plus a rendered Figure-4
    /// style stage profile.
    pub fn profile(&self, model: DataModel, nodes: u32) -> (RunResult, String) {
        let result = self.run(model, nodes);
        let gantt = render(&result.traces, GanttOptions::default());
        (result, gantt)
    }

    /// Step 4: replay the Figure 6 and Figure 7 calibrations on this
    /// study's (virtual) hardware and fit the model's regressions.
    ///
    /// * Figure 6 — a stratified row-size sample read serially; piecewise
    ///   fit recovers `query_time(s)` including the column-index
    ///   breakpoint.
    /// * Figure 7 — size-banded groups swept over client parallelism; the
    ///   per-band *max* speed-up is fitted log-linearly.
    pub fn calibrate(&self) -> CalibratedModel {
        let hub = RngHub::new(self.config.seed ^ 0xCA11B7A7E);
        let mut rng = hub.stream("calibration");
        // ---- Figure 6 ----
        let max_size = 10_000u64.min(self.total_elements.max(200));
        let sizes = stratified_sizes(1, max_size, 20, 6, &mut rng);
        let parts = partitions_with_sizes(&sizes, self.kinds);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        // Calibration profile (no heavy tails, no GC) + per-key medians over
        // repetitions — the paper's "several repetitions of our test".
        let cfg = self.config_for(1).calibration();
        let mut data = ClusterData::load(1, 1, self.table_options.clone(), parts);
        const REPS: usize = 5;
        let serial: Vec<_> = (0..REPS)
            .map(|r| db_microbench(&cfg, &mut data, &keys, 1, &format!("fig6-rep{r}")))
            .collect();
        let mut xs = Vec::with_capacity(keys.len());
        let mut ys = Vec::with_capacity(keys.len());
        for i in 0..keys.len() {
            let mut times: Vec<f64> = serial.iter().map(|run| run.samples[i].ms).collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            xs.push(serial[0].samples[i].cells as f64);
            ys.push(times[REPS / 2]);
        }
        let piecewise = fit_piecewise(&xs, &ys).expect("figure-6 sample too small to fit");

        // ---- Figure 7 ----
        let bands = 20usize;
        let band_width = (max_size / bands as u64).max(1);
        let groups = figure7_groups(bands, band_width, 6, &mut rng);
        let mut group_sizes = Vec::new();
        let mut group_speedups = Vec::new();
        for (g, sizes) in groups.iter().enumerate() {
            let parts = partitions_with_sizes(sizes, self.kinds);
            let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
            // "we execute several repetitions of our test reading in random
            // order the rows we selected" — cycling the group's keys gives
            // the closed loop enough jobs to actually reach each tested
            // parallelism level.
            let jobs: Vec<PartitionKey> = keys.iter().cycle().take(256).cloned().collect();
            let mut data = ClusterData::load(1, 1, self.table_options.clone(), parts);
            let baseline = db_microbench(&cfg, &mut data, &jobs, 1, &format!("fig7-{g}"));
            let mut best = 1.0f64;
            for parallelism in [2usize, 4, 8, 16, 32, 64] {
                let run = db_microbench(&cfg, &mut data, &jobs, parallelism, &format!("fig7-{g}"));
                if run.total_ms > 0.0 {
                    best = best.max(baseline.total_ms / run.total_ms);
                }
            }
            let mean_size = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
            group_sizes.push(mean_size);
            group_speedups.push(best);
        }
        let loglin = fit_loglinear(&group_sizes, &group_speedups).expect("figure-7 fit failed");

        let db = DbModel {
            query_time: QueryTimeModel::from_fit(&piecewise),
            parallelism: ParallelismModel::from_fit(&loglin),
        };
        let master = MasterModel {
            tx_us_per_msg: self.config.master.codec.tx_cpu_us + self.config.master.extra_tx_us,
            rx_us_per_msg: self.config.master.codec.rx_cpu_us,
        };
        CalibratedModel {
            system: SystemModel {
                master,
                db,
                gc: None,
            },
            piecewise,
            loglin,
            total_elements: self.total_elements,
        }
    }
}

impl Study {
    /// Runs the *whole* methodology — scalability sweep, bottleneck
    /// classification, calibration, optimization — and renders one text
    /// report. The one-call version of the paper.
    pub fn full_report(&self, models: &[DataModel], node_counts: &[u32]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "methodology report — {} elements, {:?} codec, seed {:#x}",
            self.total_elements, self.config.master.codec.kind, self.config.seed
        );

        let _ = writeln!(out, "\n[step 1] scalability analysis");
        let table = self.scalability(models, node_counts);
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>11} {:>11} {:>9}  bottleneck",
            "model", "nodes", "observed", "ideal", "vs ideal"
        );
        for cell in &table.cells {
            let _ = writeln!(
                out,
                "{:<16} {:>5} {:>9.0}ms {:>9.0}ms {:>+8.0}%  {:?}",
                cell.model.label(),
                cell.nodes,
                cell.observed_ms,
                cell.ideal_ms,
                cell.overhead_vs_ideal() * 100.0,
                cell.bottleneck,
            );
        }

        let _ = writeln!(out, "\n[steps 2-3] bottlenecks at the largest cluster");
        if let Some(&max_nodes) = node_counts.iter().max() {
            for &model in models {
                if let Some(cell) = table.get(model, max_nodes) {
                    let _ = writeln!(out, "  {:<16} → {:?}", model.label(), cell.bottleneck);
                }
            }
        }

        let _ = writeln!(out, "\n[step 4] calibrated model");
        let cal = self.calibrate();
        let q = &cal.system.db.query_time;
        let _ = writeln!(
            out,
            "  query_time(s) ≈ {:.2} + {:.4}·s ms (≤{:.0} cells), {:.2} + {:.4}·s above",
            q.base_ms, q.per_cell_ms, q.threshold_cells, q.indexed_base_ms, q.indexed_per_cell_ms
        );
        let _ = writeln!(
            out,
            "  parallelism(s) ≈ {:.2} {:+.2}·ln s",
            cal.system.db.parallelism.a, cal.system.db.parallelism.b
        );
        let _ = writeln!(out, "\n[step 4] optimizer recommendations");
        for &nodes in node_counts {
            let opt = cal.optimize(nodes as u64);
            let _ = writeln!(
                out,
                "  {:>3} nodes → {:>6} partitions (≈{:>4.0} cells), predicted {:>7.0} ms, {}-bound",
                nodes,
                opt.partitions,
                opt.cells_per_partition,
                opt.total_ms(),
                opt.prediction.dominant(),
            );
        }
        out
    }
}

/// One cell of the scalability table (one bar of Figure 1 / 5).
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityCell {
    /// The data model.
    pub model: DataModel,
    /// Cluster size.
    pub nodes: u32,
    /// Measured query time, ms.
    pub observed_ms: f64,
    /// Single-node time divided by nodes (the figures' solid line).
    pub ideal_ms: f64,
    /// Observed time rescaled to a uniform load (the dotted line).
    pub balanced_ms: f64,
    /// (max node load / mean) − 1.
    pub load_excess: f64,
    /// The classified bottleneck for this run.
    pub bottleneck: Bottleneck,
}

impl ScalabilityCell {
    /// The figures' bar label: relative difference between real and ideal.
    pub fn overhead_vs_ideal(&self) -> f64 {
        if self.ideal_ms.is_nan() || self.ideal_ms == 0.0 {
            0.0
        } else {
            self.observed_ms / self.ideal_ms - 1.0
        }
    }
}

/// The full step-1 output.
#[derive(Debug, Clone)]
pub struct ScalabilityTable {
    /// All (model, nodes) cells, in sweep order.
    pub cells: Vec<ScalabilityCell>,
}

impl ScalabilityTable {
    /// Looks up one cell.
    pub fn get(&self, model: DataModel, nodes: u32) -> Option<&ScalabilityCell> {
        self.cells
            .iter()
            .find(|c| c.model == model && c.nodes == nodes)
    }
}

/// The step-4 output: fitted regressions + the composed system model.
#[derive(Debug, Clone)]
pub struct CalibratedModel {
    /// The composed Formula 2 model.
    pub system: SystemModel,
    /// The raw Figure 6 piecewise fit.
    pub piecewise: PiecewiseFit,
    /// The raw Figure 7 log-linear fit.
    pub loglin: LogLinearFit,
    /// Dataset size the optimizer defaults to.
    pub total_elements: u64,
}

impl CalibratedModel {
    /// Figure 9's question: the optimal partition count on `nodes` nodes.
    pub fn optimize(&self, nodes: u64) -> OptimalChoice {
        optimize_partitions(&self.system, self.total_elements as f64, nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_runs_all_models() {
        let study = Study::new(5_000);
        for model in DataModel::ALL {
            let result = study.run(model, 2);
            assert_eq!(result.total_cells, 5_000, "{model:?} lost cells");
        }
    }

    #[test]
    fn scalability_table_has_baselines() {
        let study = Study::new(4_000);
        let table = study.scalability(&[DataModel::Fine], &[1, 2, 4]);
        assert_eq!(table.cells.len(), 3);
        let one = table.get(DataModel::Fine, 1).unwrap();
        assert!((one.ideal_ms - one.observed_ms).abs() < 1e-9);
        let four = table.get(DataModel::Fine, 4).unwrap();
        assert!(four.ideal_ms < one.observed_ms);
        assert!(four.observed_ms >= four.balanced_ms - 1e-9);
        assert!(four.overhead_vs_ideal() >= 0.0);
    }

    #[test]
    fn profile_renders_gantt() {
        let study = Study::new(2_000);
        let (result, gantt) = study.profile(DataModel::Medium, 2);
        assert!(!gantt.is_empty());
        assert!(gantt.contains("in-db"));
        assert_eq!(result.traces.len(), 2); // 2 000 elements / 1 000 per key
    }

    #[test]
    fn calibration_recovers_the_store_constants() {
        // Deterministic study → the fits must recover the cost model the
        // simulator runs on (Formula 6/7 constants).
        let mut study = Study::new(200_000);
        study.config = study.config.deterministic();
        let cal = study.calibrate();
        let q = &cal.system.db.query_time;
        assert!(
            (q.per_cell_ms - 0.0387).abs() < 0.004,
            "below-threshold slope {}",
            q.per_cell_ms
        );
        assert!(
            (q.threshold_cells - 1425.0).abs() < 450.0,
            "breakpoint {}",
            q.threshold_cells
        );
        let p = &cal.system.db.parallelism;
        assert!(p.b < -0.3, "speed-up must fall with row size: b={}", p.b);
        assert!(p.a > 4.0, "intercept {}", p.a);
        // The calibrated optimizer returns something sane.
        let opt = cal.optimize(4);
        assert!(opt.partitions > 1);
        assert!(opt.total_ms() > 0.0);
    }

    #[test]
    fn full_report_covers_all_four_steps() {
        let mut study = Study::new(20_000);
        study.config = study.config.deterministic();
        let report = study.full_report(&[DataModel::Fine], &[1, 2]);
        assert!(report.contains("[step 1]"));
        assert!(report.contains("[steps 2-3]"));
        assert!(report.contains("[step 4]"));
        assert!(report.contains("fine-grained"));
        assert!(report.contains("query_time(s)"));
        assert!(report.contains("partitions"));
    }

    #[test]
    fn slow_and_fast_masters_calibrate_different_master_models() {
        let slow = Study::with_slow_master(10_000);
        let fast = Study::new(10_000);
        assert_eq!(slow.config.master.codec.tx_cpu_us, 150.0);
        assert_eq!(fast.config.master.codec.tx_cpu_us, 19.0);
    }
}
