//! Property suite for the dataflow fixed-point engine.
//!
//! Two families of properties:
//!
//! * on seeded random CFGs (cycles included), the gen/kill worklist
//!   terminates, lands on an actual fixed point of the equations, is
//!   deterministic, and is monotone — growing a node's gen set can only
//!   grow the solution pointwise;
//! * on the real workspace, the serial and parallel scan modes feed the
//!   engine byte-identical inputs, so the interprocedural taint
//!   summaries — and the full check outcome — are identical.
//!
//! No external crates: randomness is a hand-rolled LCG so every failure
//! reproduces from its printed seed.

use std::path::PathBuf;

use kvs_lint::dataflow::{forward_gen_kill, FactSet};

/// Deterministic LCG (Numerical Recipes constants): good enough to
/// sample edges and fact sets, trivially reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform-ish draw in `0..bound` (bound ≥ 1).
    fn below(&mut self, bound: usize) -> usize {
        (self.next() >> 33) as usize % bound
    }
}

/// A random CFG in the engine's shape: nodes `0..exit`, plus the
/// synthetic exit. Mostly forward edges, with a sprinkling of back
/// edges so the worklist actually has cycles to converge over.
fn random_cfg(rng: &mut Lcg, nodes: usize) -> (Vec<Vec<usize>>, usize) {
    let exit = nodes;
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    for (u, out) in succ.iter_mut().enumerate() {
        let fanout = 1 + rng.below(3);
        for _ in 0..fanout {
            // ~1 in 4 edges jumps backwards (a loop), the rest move
            // forward; the last node always reaches the exit.
            let v = if rng.below(4) == 0 && u > 0 {
                rng.below(u + 1)
            } else {
                u + 1 + rng.below(exit - u)
            };
            if !out.contains(&v) {
                out.push(v);
            }
        }
        if u + 1 == nodes && !out.contains(&exit) {
            out.push(exit);
        }
    }
    (succ, exit)
}

const FACTS: u32 = 24;

fn random_sets(rng: &mut Lcg, nodes: usize, density: usize) -> Vec<FactSet> {
    (0..nodes)
        .map(|_| {
            let mut s = FactSet::new();
            for _ in 0..rng.below(density + 1) {
                s.insert(rng.below(FACTS as usize) as u32);
            }
            s
        })
        .collect()
}

/// `a` is pointwise ⊆ `b`.
fn pointwise_subset(a: &[FactSet], b: &[FactSet]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.is_subset(y))
}

#[test]
fn fixpoint_terminates_and_satisfies_the_equations() {
    for seed in 0..64u64 {
        let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1);
        let nodes = 2 + rng.below(40);
        let (succ, exit) = random_cfg(&mut rng, nodes);
        let gen = random_sets(&mut rng, nodes, 4);
        let kill = random_sets(&mut rng, nodes, 4);
        let flow = forward_gen_kill(&succ, exit, &gen, &kill);

        // Predecessor map for the in-equation.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); exit + 1];
        for (u, ss) in succ.iter().enumerate() {
            for &v in ss {
                preds[v].push(u);
            }
        }
        for u in 0..=exit {
            let want_in: FactSet = preds[u]
                .iter()
                .flat_map(|&p| flow.outs[p].iter().copied())
                .collect();
            assert_eq!(
                flow.ins[u], want_in,
                "seed {seed}: node {u} in-state is not the join of its preds"
            );
            let want_out: FactSet = if u == exit {
                want_in
            } else {
                let mut o: FactSet = flow.ins[u].difference(&kill[u]).copied().collect();
                o.extend(gen[u].iter().copied());
                o
            };
            assert_eq!(
                flow.outs[u], want_out,
                "seed {seed}: node {u} out-state violates the gen/kill equation"
            );
        }
    }
}

#[test]
fn fixpoint_is_deterministic_and_monotone_in_gen() {
    for seed in 0..64u64 {
        let mut rng = Lcg(seed.wrapping_mul(0xD1B54A32D192ED03) | 1);
        let nodes = 2 + rng.below(40);
        let (succ, exit) = random_cfg(&mut rng, nodes);
        let gen = random_sets(&mut rng, nodes, 4);
        let kill = random_sets(&mut rng, nodes, 4);

        let a = forward_gen_kill(&succ, exit, &gen, &kill);
        let b = forward_gen_kill(&succ, exit, &gen, &kill);
        assert_eq!(a, b, "seed {seed}: two runs disagreed");

        // Grow one node's gen set by one fresh fact: a may-analysis
        // solution can only grow with it.
        let mut bigger = gen.clone();
        let node = rng.below(nodes);
        bigger[node].insert(rng.below(FACTS as usize) as u32);
        let c = forward_gen_kill(&succ, exit, &bigger, &kill);
        assert!(
            pointwise_subset(&a.ins, &c.ins) && pointwise_subset(&a.outs, &c.outs),
            "seed {seed}: growing gen[{node}] shrank the solution somewhere"
        );
    }
}

#[test]
fn tainted_facts_never_resurrect_after_a_kill_dominator() {
    // A straight line `src → kill → sink` must not carry the fact to the
    // sink, regardless of how many diamond detours the middle has — a
    // targeted guard for the sanitizer semantics the rules rely on.
    for seed in 0..32u64 {
        let mut rng = Lcg(seed | 1);
        let detours = 1 + rng.below(4);
        // Node 0 generates fact 0; node 1 kills it; the diamond nodes
        // are pass-through; the last node is the observation point.
        let nodes = 3 + detours;
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        succ[0] = vec![1];
        for d in 0..detours {
            succ[1].push(2 + d);
            succ[2 + d] = vec![nodes - 1];
        }
        succ[nodes - 1] = vec![nodes];
        let mut gen = vec![FactSet::new(); nodes];
        gen[0].insert(0);
        let mut kill = vec![FactSet::new(); nodes];
        kill[1].insert(0);
        let flow = forward_gen_kill(&succ, nodes, &gen, &kill);
        assert!(
            !flow.ins[nodes - 1].contains(&0) && !flow.ins[nodes].contains(&0),
            "seed {seed}: killed fact leaked past its dominator"
        );
    }
}

#[test]
fn serial_and_parallel_scans_produce_identical_taint_summaries() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let serial = kvs_lint::scan_workspace(&root, kvs_lint::ScanMode::Serial).expect("serial");
    let parallel = kvs_lint::scan_workspace(&root, kvs_lint::ScanMode::Parallel).expect("parallel");

    let spec = kvs_lint::dataflow::TaintSpec {
        sources: &["from_be_bytes(", "from_le_bytes("],
        sink_calls: &[("with_capacity(", "allocation")],
        index_sinks: true,
    };
    let render = |ws: &kvs_lint::rules::Workspace| -> String {
        let cg = kvs_lint::callgraph::build(ws);
        let summaries = kvs_lint::dataflow::TaintSummaries::build(ws, &cg, &spec);
        cg.fns
            .iter()
            .zip(&summaries.by_fn)
            .map(|(f, s)| format!("{}:{} {} {:?}", f.file, f.line, f.name, s))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        render(&serial),
        render(&parallel),
        "scan mode leaked into the interprocedural summaries"
    );

    // And the full outcome (which now includes the dataflow passes) is
    // already pinned byte-identical by the fixtures suite; here we pin
    // the summary layer underneath it as well as the file inventory.
    let files: Vec<&str> = serial.files.iter().map(|f| f.rel.as_str()).collect();
    let pfiles: Vec<&str> = parallel.files.iter().map(|f| f.rel.as_str()).collect();
    assert_eq!(files, pfiles);

    // Sanity: the analysis actually saw the live wire files, so the
    // equality above is not vacuous.
    assert!(
        files.iter().any(|f| *f == "crates/net/src/frame.rs"),
        "live frame.rs missing from the scan"
    );
}
