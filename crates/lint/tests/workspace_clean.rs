//! The self-check the CI job leans on: the live workspace stays clean.
//! Running the lint as a `#[test]` means `cargo test` alone catches an
//! invariant violation even where the dedicated CI job is not wired up.

use std::path::PathBuf;

#[test]
fn live_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("crates/lint has a workspace root two levels up");
    let outcome = kvs_lint::check_workspace(&root).expect("scan workspace");
    let rendered: Vec<String> = outcome.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(
        outcome.is_clean(),
        "workspace lint violations (fix or waive in lint.waivers.toml):\n{}",
        rendered.join("\n")
    );
    // The waiver file is exercised by the live tree; if every waived site
    // gets fixed, the stale-waiver rule (KVS-L000) fails above instead.
    assert!(outcome.files_scanned > 50, "walker found too few files");
}
