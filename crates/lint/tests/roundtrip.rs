//! The tokenizer's foundational invariant, checked against the entire
//! live workspace: concatenating the spans of `tokenize(src)` reproduces
//! `src` byte for byte, tokens are contiguous, non-empty and carry
//! correct line numbers. Every `.rs` file is an input — including the
//! fixtures, which deliberately contain pathological lexing shapes.

use std::fs;
use std::path::{Path, PathBuf};

use kvs_lint::token::tokenize;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .expect("crates/lint has a workspace root two levels up")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if name != "target" && name != ".git" {
                collect_rs(&p, out);
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

#[test]
fn tokenize_round_trips_every_workspace_file() {
    let root = workspace_root();
    let mut paths = Vec::new();
    for top in ["crates", "shims"] {
        collect_rs(&root.join(top), &mut paths);
    }
    assert!(
        paths.len() > 50,
        "expected a real workspace, found {} files under {}",
        paths.len(),
        root.display()
    );
    // Guard against the glob silently dropping analyzer sources: the
    // interprocedural layer's own files must be inputs to this suite.
    for must in ["callgraph.rs", "cfg.rs"] {
        assert!(
            paths
                .iter()
                .any(|p| p.ends_with(Path::new("crates/lint/src").join(must))),
            "glob no longer covers crates/lint/src/{must}"
        );
    }
    for path in paths {
        let src = fs::read_to_string(&path).expect("read source file");
        let toks = tokenize(&src);
        // Spans are contiguous and cover the input exactly.
        let mut pos = 0usize;
        let mut line = 1usize;
        for t in &toks {
            assert_eq!(
                t.start,
                pos,
                "{}: gap or overlap at byte {pos}",
                path.display()
            );
            assert!(t.end > t.start, "{}: empty token at {pos}", path.display());
            assert_eq!(
                t.line,
                line,
                "{}: wrong line for token at byte {pos}",
                path.display()
            );
            line += src[t.start..t.end].matches('\n').count();
            pos = t.end;
        }
        assert_eq!(
            pos,
            src.len(),
            "{}: trailing bytes untokenized",
            path.display()
        );
        // The round-trip itself: concatenated token text == source.
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        assert_eq!(rebuilt, src, "{}: round-trip mismatch", path.display());
    }
}
