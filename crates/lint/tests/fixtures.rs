//! Fixture-tree suite: one passing workspace plus one violating tree per
//! rule. Each fixture is a miniature workspace root under `fixtures/`
//! (excluded from the real scan by the walker's `fixtures` skip).

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn clean_fixture_passes_every_rule() {
    let outcome = kvs_lint::check_workspace(&fixture("clean")).expect("scan clean fixture");
    assert!(
        outcome.is_clean(),
        "clean fixture should pass, got: {:#?}",
        outcome.diagnostics
    );
    // The tree contains one waived violation — proves the waiver matched
    // (a non-matching waiver would surface as a KVS-L000 failure above).
    assert_eq!(outcome.waived.len(), 1);
    assert_eq!(outcome.waived[0].0.rule, "KVS-L004");
}

#[test]
fn each_violating_fixture_fails_with_its_rule() {
    let cases = [
        ("l000_stale", "KVS-L000", "lint.waivers.toml"),
        ("l001_systemtime", "KVS-L001", "crates/cluster/src/sim.rs"),
        ("l002_drift", "KVS-L002", "docs/NET.md"),
        ("l003_drop", "KVS-L003", "crates/net/src/io.rs"),
        ("l004_unwrap", "KVS-L004", "crates/net/src/io.rs"),
        ("l005_unsafe", "KVS-L005", "crates/store/src/raw.rs"),
        ("l006_mutex", "KVS-L006", "crates/net/src/locks.rs"),
        ("l007_lock", "KVS-L007", "crates/net/src/srv.rs"),
        ("l008_reset", "KVS-L008", "crates/net/src/master.rs"),
        ("l009_deadlock", "KVS-L009", "crates/net/src/locks.rs"),
        ("l010_channel", "KVS-L010", "crates/cluster/src/chan.rs"),
        ("l011_stamp", "KVS-L011", "crates/net/src/server.rs"),
        ("l012_kind", "KVS-L012", "crates/net/src/master.rs"),
        ("l013_drift", "KVS-L013", "docs/STORE.md"),
        ("l014_blocking", "KVS-L014", "crates/net/src/pool.rs"),
        ("l015_crash", "KVS-L015", "crates/store/src/durable.rs"),
        ("l016_deadline", "KVS-L016", "crates/net/src/write_path.rs"),
        ("l017_taint", "KVS-L017", "crates/net/src/server.rs"),
        (
            "l018_det_escape",
            "KVS-L018",
            "crates/net/src/clock_bridge.rs",
        ),
        ("l019_receipt", "KVS-L019", "crates/store/src/durable.rs"),
    ];
    for (name, rule, path) in cases {
        let outcome = kvs_lint::check_workspace(&fixture(name))
            .unwrap_or_else(|e| panic!("scan fixture {name}: {e}"));
        assert!(!outcome.is_clean(), "{name}: expected a violation");
        assert!(
            outcome
                .diagnostics
                .iter()
                .any(|d| d.rule == rule && d.path == path),
            "{name}: expected a {rule} diagnostic in {path}, got: {:#?}",
            outcome.diagnostics
        );
        // No collateral noise: a violating fixture trips exactly its rule.
        assert!(
            outcome.diagnostics.iter().all(|d| d.rule == rule),
            "{name}: unexpected extra rules: {:#?}",
            outcome.diagnostics
        );
        // Diagnostics carry real line numbers for `file:line` output.
        assert!(outcome.diagnostics.iter().all(|d| d.line >= 1));
    }
}

#[test]
fn interprocedural_diagnostics_carry_full_witness_chains() {
    // KVS-L014: the zone function, the two call sites and the blocking
    // op, every hop as `file:line`.
    let outcome = kvs_lint::check_workspace(&fixture("l014_blocking")).expect("scan l014");
    let msg = &outcome.diagnostics[0].message;
    assert!(
        msg.contains(
            "non-blocking zone `classify` can reach blocking `sleep`: \
             crates/net/src/pool.rs:7 → crates/net/src/pool.rs:8 → \
             crates/net/src/pool.rs:12 → crates/net/src/pool.rs:17"
        ),
        "unexpected L014 witness: {msg}"
    );

    // KVS-L015: the real flush shape (write → WAL rotate → commit → GC)
    // with the GC step hoisted above the commit; the witness names both
    // ends of the reordered pair.
    let outcome = kvs_lint::check_workspace(&fixture("l015_crash")).expect("scan l015");
    let msg = &outcome.diagnostics[0].message;
    assert!(
        msg.contains("GC (remove_file) can run before the manifest commit"),
        "unexpected L015 message: {msg}"
    );
    assert!(
        msg.contains("crates/store/src/durable.rs:22 → crates/store/src/durable.rs:23"),
        "unexpected L015 witness: {msg}"
    );

    // KVS-L016: one direct fresh literal plus one caught at the call
    // site of a deadline-parameter function.
    let outcome = kvs_lint::check_workspace(&fixture("l016_deadline")).expect("scan l016");
    assert_eq!(outcome.diagnostics.len(), 2);
    assert!(outcome.diagnostics[0]
        .message
        .contains("mints a fresh `u64::MAX` deadline"));
    assert!(outcome.diagnostics[1]
        .message
        .contains("call to `send_frame()` passes a fresh `0` deadline"));
    assert_eq!(
        outcome.diagnostics[1].line, 23,
        "diag sits at the call site"
    );
}

#[test]
fn dataflow_diagnostics_carry_source_to_sink_witness_chains() {
    // KVS-L017: the `read_frame` shape — decode at line 7, allocation at
    // line 8, fill at line 9; each sink's chain starts at the decode.
    let outcome = kvs_lint::check_workspace(&fixture("l017_taint")).expect("scan l017");
    assert_eq!(outcome.diagnostics.len(), 2, "{:#?}", outcome.diagnostics);
    let alloc = &outcome.diagnostics[0];
    assert_eq!(alloc.line, 8);
    assert!(
        alloc.message.contains(
            "reaches allocation `with_capacity(…)` without a validated bound \
             — compare against a MAX_PAYLOAD-style limit first; flow: \
             crates/net/src/server.rs:7 → crates/net/src/server.rs:8"
        ),
        "unexpected L017 witness: {}",
        alloc.message
    );
    assert!(
        outcome.diagnostics[1]
            .message
            .contains("crates/net/src/server.rs:7 →"),
        "the resize sink chains back to the same decode: {}",
        outcome.diagnostics[1].message
    );

    // KVS-L018: the tracked wall-clock value, named, with the
    // source-to-call-site flow.
    let outcome = kvs_lint::check_workspace(&fixture("l018_det_escape")).expect("scan l018");
    assert_eq!(outcome.diagnostics.len(), 1, "{:#?}", outcome.diagnostics);
    let msg = &outcome.diagnostics[0].message;
    assert!(
        msg.contains(
            "`host_now` carries `wall_ns` (line 5) into deterministic-zone call \
             `advance()`"
        ) && msg
            .contains("flow: crates/net/src/clock_bridge.rs:5 → crates/net/src/clock_bridge.rs:6"),
        "unexpected L018 witness: {msg}"
    );

    // KVS-L019: the escaping path threads the read, the checksum branch
    // and the early return — the charge at line 10 is never reached.
    let outcome = kvs_lint::check_workspace(&fixture("l019_receipt")).expect("scan l019");
    assert_eq!(outcome.diagnostics.len(), 1, "{:#?}", outcome.diagnostics);
    let d = &outcome.diagnostics[0];
    assert_eq!(d.line, 6, "anchored at the read");
    assert!(
        d.message.contains(
            "escaping path: crates/store/src/durable.rs:6 → \
             crates/store/src/durable.rs:7 → crates/store/src/durable.rs:8"
        ),
        "unexpected L019 witness: {}",
        d.message
    );
}

#[test]
fn dataflow_witness_chains_render_as_sarif_code_flows() {
    // End-to-end: a fixture L017 finding's witness chain must surface as
    // a SARIF codeFlows thread flow with one step per hop.
    let outcome = kvs_lint::check_workspace(&fixture("l017_taint")).expect("scan l017");
    let doc = kvs_lint::sarif::render(&outcome);
    assert!(
        doc.contains("\"codeFlows\"") && doc.contains("\"threadFlows\""),
        "expected codeFlows in SARIF output"
    );
}

#[test]
fn stale_waivers_are_anchored_at_their_entry_lines() {
    // Each KVS-L000 must carry the `[[waiver]]` header line of the stale
    // entry it reports — `file:line` is the fix-it jump target.
    let outcome = kvs_lint::check_workspace(&fixture("l000_stale")).expect("scan l000_stale");
    let lines: Vec<usize> = outcome
        .diagnostics
        .iter()
        .filter(|d| d.rule == "KVS-L000" && d.path == "lint.waivers.toml")
        .map(|d| d.line)
        .collect();
    assert_eq!(
        lines,
        vec![4, 11],
        "expected one KVS-L000 per [[waiver]] header, got: {:#?}",
        outcome.diagnostics
    );
}

#[test]
fn baseline_entry_covered_by_a_waiver_is_not_stale() {
    // The same finding is both waived and baselined: the waiver wins,
    // nothing is demoted, and the baseline entry must not be reported
    // stale — the site it froze is still in the tree.
    let outcome =
        kvs_lint::check_workspace(&fixture("baseline_waived")).expect("scan baseline_waived");
    assert!(
        outcome.is_clean(),
        "waived+baselined overlap should be clean, got: {:#?}",
        outcome.diagnostics
    );
    assert_eq!(outcome.waived.len(), 1);
    assert_eq!(outcome.waived[0].0.rule, "KVS-L004");
    assert!(
        outcome.baselined.is_empty(),
        "the waiver outranks the ratchet"
    );
}

#[test]
fn parallel_scan_matches_serial_byte_for_byte() {
    // The worker pool must be invisible in the output: same diagnostics,
    // same order, same rendering, on the real workspace.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let serial =
        kvs_lint::check_workspace_with(&root, kvs_lint::ScanMode::Serial).expect("serial scan");
    let parallel =
        kvs_lint::check_workspace_with(&root, kvs_lint::ScanMode::Parallel).expect("parallel scan");
    assert_eq!(serial.files_scanned, parallel.files_scanned);
    let render = |o: &kvs_lint::Outcome| {
        o.diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(&serial), render(&parallel));
    assert_eq!(serial.baselined, parallel.baselined);
    assert_eq!(serial.waived, parallel.waived);
}

#[test]
fn baseline_demotes_frozen_findings_without_failing() {
    let outcome = kvs_lint::check_workspace(&fixture("baseline_ok")).expect("scan baseline_ok");
    assert!(
        outcome.is_clean(),
        "frozen finding should not fail, got: {:#?}",
        outcome.diagnostics
    );
    assert_eq!(outcome.baselined.len(), 1);
    assert_eq!(outcome.baselined[0].rule, "KVS-L004");
    assert_eq!(outcome.baselined[0].path, "crates/net/src/io.rs");
}

#[test]
fn stale_baseline_entries_fail_as_l000() {
    let outcome =
        kvs_lint::check_workspace(&fixture("baseline_stale")).expect("scan baseline_stale");
    assert!(!outcome.is_clean());
    assert!(
        outcome
            .diagnostics
            .iter()
            .any(|d| d.rule == "KVS-L000" && d.path == "lint.baseline.json"),
        "expected a stale-baseline KVS-L000, got: {:#?}",
        outcome.diagnostics
    );
    assert!(outcome.baselined.is_empty());
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let outcome = kvs_lint::check_workspace(&fixture("l004_unwrap")).expect("scan fixture");
    let rendered = outcome.diagnostics[0].to_string();
    assert!(
        rendered.starts_with("crates/net/src/io.rs:4: KVS-L004:"),
        "unexpected rendering: {rendered}"
    );
}
