//! Fixture-tree suite: one passing workspace plus one violating tree per
//! rule. Each fixture is a miniature workspace root under `fixtures/`
//! (excluded from the real scan by the walker's `fixtures` skip).

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

#[test]
fn clean_fixture_passes_every_rule() {
    let outcome = kvs_lint::check_workspace(&fixture("clean")).expect("scan clean fixture");
    assert!(
        outcome.is_clean(),
        "clean fixture should pass, got: {:#?}",
        outcome.diagnostics
    );
    // The tree contains one waived violation — proves the waiver matched
    // (a non-matching waiver would surface as a KVS-L000 failure above).
    assert_eq!(outcome.waived.len(), 1);
    assert_eq!(outcome.waived[0].0.rule, "KVS-L004");
}

#[test]
fn each_violating_fixture_fails_with_its_rule() {
    let cases = [
        ("l000_stale", "KVS-L000", "lint.waivers.toml"),
        ("l001_systemtime", "KVS-L001", "crates/cluster/src/sim.rs"),
        ("l002_drift", "KVS-L002", "docs/NET.md"),
        ("l003_drop", "KVS-L003", "crates/net/src/io.rs"),
        ("l004_unwrap", "KVS-L004", "crates/net/src/io.rs"),
        ("l005_unsafe", "KVS-L005", "crates/store/src/raw.rs"),
        ("l006_mutex", "KVS-L006", "crates/net/src/locks.rs"),
        ("l007_lock", "KVS-L007", "crates/net/src/srv.rs"),
        ("l008_reset", "KVS-L008", "crates/net/src/master.rs"),
        ("l009_deadlock", "KVS-L009", "crates/net/src/locks.rs"),
        ("l010_channel", "KVS-L010", "crates/cluster/src/chan.rs"),
        ("l011_stamp", "KVS-L011", "crates/net/src/server.rs"),
        ("l012_kind", "KVS-L012", "crates/net/src/master.rs"),
        ("l013_drift", "KVS-L013", "docs/STORE.md"),
    ];
    for (name, rule, path) in cases {
        let outcome = kvs_lint::check_workspace(&fixture(name))
            .unwrap_or_else(|e| panic!("scan fixture {name}: {e}"));
        assert!(!outcome.is_clean(), "{name}: expected a violation");
        assert!(
            outcome
                .diagnostics
                .iter()
                .any(|d| d.rule == rule && d.path == path),
            "{name}: expected a {rule} diagnostic in {path}, got: {:#?}",
            outcome.diagnostics
        );
        // No collateral noise: a violating fixture trips exactly its rule.
        assert!(
            outcome.diagnostics.iter().all(|d| d.rule == rule),
            "{name}: unexpected extra rules: {:#?}",
            outcome.diagnostics
        );
        // Diagnostics carry real line numbers for `file:line` output.
        assert!(outcome.diagnostics.iter().all(|d| d.line >= 1));
    }
}

#[test]
fn baseline_demotes_frozen_findings_without_failing() {
    let outcome = kvs_lint::check_workspace(&fixture("baseline_ok")).expect("scan baseline_ok");
    assert!(
        outcome.is_clean(),
        "frozen finding should not fail, got: {:#?}",
        outcome.diagnostics
    );
    assert_eq!(outcome.baselined.len(), 1);
    assert_eq!(outcome.baselined[0].rule, "KVS-L004");
    assert_eq!(outcome.baselined[0].path, "crates/net/src/io.rs");
}

#[test]
fn stale_baseline_entries_fail_as_l000() {
    let outcome =
        kvs_lint::check_workspace(&fixture("baseline_stale")).expect("scan baseline_stale");
    assert!(!outcome.is_clean());
    assert!(
        outcome
            .diagnostics
            .iter()
            .any(|d| d.rule == "KVS-L000" && d.path == "lint.baseline.json"),
        "expected a stale-baseline KVS-L000, got: {:#?}",
        outcome.diagnostics
    );
    assert!(outcome.baselined.is_empty());
}

#[test]
fn diagnostics_render_as_file_line_rule() {
    let outcome = kvs_lint::check_workspace(&fixture("l004_unwrap")).expect("scan fixture");
    let rendered = outcome.diagnostics[0].to_string();
    assert!(
        rendered.starts_with("crates/net/src/io.rs:4: KVS-L004:"),
        "unexpected rendering: {rendered}"
    );
}
