//! The finding baseline: `lint.baseline.json` at the workspace root.
//!
//! The baseline is the *ratchet* half of the lint story. A waiver
//! (`lint.waivers.toml`) is a justified, permanent exception; the
//! baseline is an **unjustified, frozen debt list**: findings that
//! existed when a rule landed and are tolerated until someone pays them
//! down. The contract:
//!
//! * findings matching a baseline entry are demoted to *baselined* —
//!   reported (SARIF level `warning`) but not failing;
//! * any finding **not** in the baseline fails CI — the debt can never
//!   grow;
//! * any baseline entry matching **no** finding is *stale* and fails CI
//!   as `KVS-L000` — the debt can only shrink, and `--update` re-freezes
//!   the file so the ratchet clicks.
//!
//! Matching is a multiset: each entry covers at most one finding (rule +
//! path + optional raw-line substring, like waivers), so two identical
//! debts need two entries and fixing one of them trips the stale check.
//! The file is plain committed JSON so the diff *is* the review.

use crate::json::{self, Value};
use crate::rules::Diagnostic;

/// Name of the baseline file, resolved relative to the workspace root.
pub const BASELINE_FILE: &str = "lint.baseline.json";

/// One frozen finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule ID of the frozen finding.
    pub rule: String,
    /// Workspace-relative path it occurs in.
    pub path: String,
    /// Substring of the diagnosed raw line; empty matches any line.
    pub contains: String,
}

/// Parses `lint.baseline.json`.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let doc = json::parse(text)?;
    let version = doc
        .get("version")
        .and_then(Value::as_num)
        .ok_or("baseline missing numeric `version`")?;
    if version != 1.0 {
        return Err(format!("unsupported baseline version {version}"));
    }
    let findings = doc
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or("baseline missing `findings` array")?;
    let mut out = Vec::with_capacity(findings.len());
    for (i, f) in findings.iter().enumerate() {
        let field = |key: &str| -> Result<String, String> {
            f.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline finding #{i} missing string `{key}`"))
        };
        let rule = field("rule")?;
        if !crate::rules::RULES.iter().any(|(id, _)| *id == rule) {
            return Err(format!("baseline finding #{i}: unknown rule ID `{rule}`"));
        }
        out.push(Entry {
            rule,
            path: field("path")?,
            // `contains` is optional: an entry may pin rule + path only.
            contains: f
                .get("contains")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
        });
    }
    Ok(out)
}

/// Serializes entries back to the committed file format.
pub fn render(entries: &[Entry]) -> String {
    json::obj(vec![
        ("version", Value::Num(1.0)),
        (
            "findings",
            Value::Arr(
                entries
                    .iter()
                    .map(|e| {
                        json::obj(vec![
                            ("rule", json::s(&e.rule)),
                            ("path", json::s(&e.path)),
                            ("contains", json::s(&e.contains)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_pretty()
}

/// Builds the entries that would freeze `failing` as the new baseline.
/// `raw_line` supplies the diagnosed line so the entry stays anchored
/// when surrounding lines move.
pub fn freeze(
    failing: &[Diagnostic],
    raw_line: impl Fn(&str, usize) -> Option<String>,
) -> Vec<Entry> {
    failing
        .iter()
        .map(|d| Entry {
            rule: d.rule.to_string(),
            path: d.path.clone(),
            contains: raw_line(&d.path, d.line)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        })
        .collect()
}

/// Splits post-waiver failing findings into (still-failing, baselined)
/// and appends a `KVS-L000` for every stale entry. Multiset semantics:
/// each entry covers at most one finding.
///
/// `waived` carries the findings the waiver pass already absorbed. An
/// entry that matches no failing finding but *does* match a waived one
/// is counted as used rather than stale: the debt still exists in the
/// tree — a waiver merely outranks the baseline for the same site — so
/// flagging the entry as paid-down would be a lie, and deleting it
/// would let the finding fail the moment the waiver is retired.
pub fn apply(
    failing: Vec<Diagnostic>,
    waived: &[Diagnostic],
    entries: &[Entry],
    baseline_file: &str,
    raw_line: impl Fn(&str, usize) -> Option<String>,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut used = vec![false; entries.len()];
    let mut still = Vec::new();
    let mut baselined = Vec::new();
    let matches = |used: &[bool], d: &Diagnostic| {
        entries.iter().enumerate().position(|(ix, e)| {
            !used[ix]
                && e.rule == d.rule
                && e.path == d.path
                && (e.contains.is_empty()
                    || raw_line(&d.path, d.line).is_some_and(|raw| raw.contains(&e.contains)))
        })
    };
    for d in failing {
        match matches(&used, &d) {
            Some(ix) => {
                used[ix] = true;
                baselined.push(d);
            }
            None => still.push(d),
        }
    }
    // Waived findings consume entries without demoting anything: the
    // waiver already handled the finding, the baseline entry just must
    // not read as stale while the site it froze is still in the tree.
    for d in waived {
        if let Some(ix) = matches(&used, d) {
            used[ix] = true;
        }
    }
    for (ix, e) in entries.iter().enumerate() {
        if !used[ix] {
            still.push(Diagnostic {
                rule: "KVS-L000",
                path: baseline_file.to_string(),
                line: 1,
                message: format!(
                    "stale baseline entry: no {} finding in `{}` matches `{}` — the debt was \
                     paid down, run `kvs-lint baseline --update` to re-freeze",
                    e.rule, e.path, e.contains
                ),
            });
        }
    }
    (still, baselined)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, line: usize) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_and_render_round_trip() {
        let entries = vec![Entry {
            rule: "KVS-L010".to_string(),
            path: "crates/net/src/x.rs".to_string(),
            contains: "let (tx, rx)".to_string(),
        }];
        let text = render(&entries);
        assert_eq!(parse(&text).unwrap(), entries);
        assert!(parse("{\"version\": 2, \"findings\": []}").is_err());
        assert!(parse("{\"version\": 1}").is_err());
        assert!(
            parse("{\"version\": 1, \"findings\": [{\"rule\": \"NOPE\", \"path\": \"x\"}]}")
                .is_err()
        );
    }

    #[test]
    fn matching_entry_demotes_and_multiset_counts() {
        let entries = vec![Entry {
            rule: "KVS-L004".to_string(),
            path: "a.rs".to_string(),
            contains: String::new(),
        }];
        // Two identical findings, one entry: one demoted, one still fails.
        let (still, base) = apply(
            vec![diag("KVS-L004", "a.rs", 3), diag("KVS-L004", "a.rs", 9)],
            &[],
            &entries,
            BASELINE_FILE,
            |_, _| Some("x.unwrap()".to_string()),
        );
        assert_eq!(base.len(), 1);
        assert_eq!(still.len(), 1);
        assert_eq!(still[0].rule, "KVS-L004");
    }

    #[test]
    fn stale_entry_fails_as_l000() {
        let entries = vec![Entry {
            rule: "KVS-L004".to_string(),
            path: "gone.rs".to_string(),
            contains: "x.unwrap()".to_string(),
        }];
        let (still, base) = apply(Vec::new(), &[], &entries, BASELINE_FILE, |_, _| None);
        assert!(base.is_empty());
        assert_eq!(still.len(), 1);
        assert_eq!(still[0].rule, "KVS-L000");
        assert_eq!(still[0].path, BASELINE_FILE);
    }

    #[test]
    fn entry_covered_by_a_waived_finding_is_not_stale() {
        let entries = vec![Entry {
            rule: "KVS-L004".to_string(),
            path: "a.rs".to_string(),
            contains: "x.unwrap()".to_string(),
        }];
        // The finding was absorbed by a waiver, so nothing is failing —
        // but the site is still in the tree, so the entry is not stale.
        let waived = vec![diag("KVS-L004", "a.rs", 3)];
        let (still, base) = apply(Vec::new(), &waived, &entries, BASELINE_FILE, |_, _| {
            Some("x.unwrap()".to_string())
        });
        assert!(base.is_empty());
        assert!(still.is_empty(), "waived coverage must suppress KVS-L000");
        // A waived finding never demotes: failing diagnostics that miss
        // every remaining entry still fail.
        let (still, base) = apply(
            vec![diag("KVS-L004", "b.rs", 1)],
            &waived,
            &entries,
            BASELINE_FILE,
            |_, _| Some("x.unwrap()".to_string()),
        );
        assert!(base.is_empty());
        assert_eq!(still.len(), 1);
        assert_eq!(still[0].path, "b.rs");
    }
}
