//! CLI entry point.
//!
//! ```console
//! $ kvs-lint check [--root <path>] [--format text|json|sarif] [--output <file>]
//! $ kvs-lint rules
//! $ kvs-lint waivers [--root <path>]
//! $ kvs-lint baseline [--root <path>] [--update]
//! $ kvs-lint bench [--root <path>] [--output <file>]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: kvs-lint <check|rules|waivers|baseline|bench> [--root <path>] \
         [--format text|json|sarif] [--output <file>] [--update]"
    );
    eprintln!("  check     lint the workspace; exit 0 when clean, 1 on violations");
    eprintln!("  rules     list rule IDs and what they enforce");
    eprintln!("  waivers   list waivers with how many findings each suppressed this run");
    eprintln!("  baseline  report ratchet status; --update re-freezes lint.baseline.json");
    eprintln!("  bench     time serial vs parallel scans, emit a kvs-bench/v1 report");
    ExitCode::from(2)
}

struct Cli {
    cmd: String,
    root: PathBuf,
    format: String,
    output: Option<PathBuf>,
    update: bool,
}

fn parse_args() -> Result<Cli, ExitCode> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut output: Option<PathBuf> = None;
    let mut update = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "rules" | "waivers" | "baseline" | "bench" if cmd.is_none() => {
                cmd = Some(a.clone());
            }
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return Err(usage()),
            },
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "json" | "sarif")) => format = f.to_string(),
                _ => return Err(usage()),
            },
            "--output" => match it.next() {
                Some(p) => output = Some(PathBuf::from(p)),
                None => return Err(usage()),
            },
            "--update" => update = true,
            _ => return Err(usage()),
        }
    }
    let Some(cmd) = cmd else {
        return Err(usage());
    };
    let root = root.unwrap_or_else(|| {
        // When run via `cargo run -p kvs-lint`, the manifest dir is
        // crates/lint — the workspace root is two levels up.
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    Ok(Cli {
        cmd,
        root,
        format,
        output,
        update,
    })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(code) => return code,
    };
    if cli.cmd == "rules" {
        for (id, summary) in kvs_lint::RULES {
            println!("{id}  {summary}");
        }
        return ExitCode::SUCCESS;
    }
    if cli.cmd == "bench" {
        return bench(&cli);
    }
    let outcome = match kvs_lint::check_workspace(&cli.root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("kvs-lint: cannot scan {}: {e}", cli.root.display());
            return ExitCode::from(2);
        }
    };
    match cli.cmd.as_str() {
        "check" => check(&cli, &outcome),
        "waivers" => waivers(&outcome),
        "baseline" => baseline_cmd(&cli, &outcome),
        _ => usage(),
    }
}

fn emit(cli: &Cli, text: &str) -> Result<(), ExitCode> {
    match &cli.output {
        None => {
            print!("{text}");
            Ok(())
        }
        Some(path) => std::fs::write(path, text).map_err(|e| {
            eprintln!("kvs-lint: cannot write {}: {e}", path.display());
            ExitCode::from(2)
        }),
    }
}

fn check(cli: &Cli, outcome: &kvs_lint::Outcome) -> ExitCode {
    let fail = if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    };
    match cli.format.as_str() {
        "sarif" => match emit(cli, &kvs_lint::sarif::render(outcome)) {
            Ok(()) => fail,
            Err(code) => code,
        },
        "json" => match emit(cli, &render_json(outcome)) {
            Ok(()) => fail,
            Err(code) => code,
        },
        _ => {
            for d in &outcome.diagnostics {
                println!("{d}");
            }
            if outcome.is_clean() {
                println!(
                    "kvs-lint: clean — {} files scanned, {} waived, {} baselined finding(s)",
                    outcome.files_scanned,
                    outcome.waived.len(),
                    outcome.baselined.len()
                );
            } else {
                println!(
                    "kvs-lint: {} violation(s) across {} files ({} waived, {} baselined); \
                     see docs/LINT.md for rule docs, waivers and the baseline ratchet",
                    outcome.diagnostics.len(),
                    outcome.files_scanned,
                    outcome.waived.len(),
                    outcome.baselined.len()
                );
            }
            fail
        }
    }
}

fn render_json(outcome: &kvs_lint::Outcome) -> String {
    use kvs_lint::json::{obj, s, Value};
    let diag = |d: &kvs_lint::Diagnostic| {
        obj(vec![
            ("rule", s(d.rule)),
            ("path", s(&d.path)),
            ("line", Value::Num(d.line as f64)),
            ("message", s(&d.message)),
        ])
    };
    obj(vec![
        ("version", Value::Num(1.0)),
        ("clean", Value::Bool(outcome.is_clean())),
        ("files_scanned", Value::Num(outcome.files_scanned as f64)),
        (
            "diagnostics",
            Value::Arr(outcome.diagnostics.iter().map(diag).collect()),
        ),
        (
            "baselined",
            Value::Arr(outcome.baselined.iter().map(diag).collect()),
        ),
        (
            "waived",
            Value::Arr(
                outcome
                    .waived
                    .iter()
                    .map(|(d, justification)| {
                        obj(vec![
                            ("rule", s(d.rule)),
                            ("path", s(&d.path)),
                            ("line", Value::Num(d.line as f64)),
                            ("justification", s(justification)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_pretty()
}

/// `kvs-lint bench`: runs the full check twice — serial scan, then the
/// worker pool — cross-checks that both modes produced identical
/// diagnostics, and emits a `kvs-bench/v1` report (`bench` is `"lint"`,
/// so the CI artifact is `BENCH_lint.json`). Deliberately no `p99_ms`
/// keys: the trend gate compares latency percentiles only, and a lint
/// wall-clock is a single measurement, not a distribution.
fn bench(cli: &Cli) -> ExitCode {
    use kvs_lint::json::{obj, s, Value};
    use std::time::Instant;
    let timed = |mode: kvs_lint::ScanMode| -> Result<(kvs_lint::Outcome, f64), ExitCode> {
        let t = Instant::now();
        match kvs_lint::check_workspace_with(&cli.root, mode) {
            Ok(o) => Ok((o, t.elapsed().as_secs_f64() * 1e3)),
            Err(e) => {
                eprintln!("kvs-lint: cannot scan {}: {e}", cli.root.display());
                Err(ExitCode::from(2))
            }
        }
    };
    let (serial, serial_ms) = match timed(kvs_lint::ScanMode::Serial) {
        Ok(x) => x,
        Err(code) => return code,
    };
    let (parallel, parallel_ms) = match timed(kvs_lint::ScanMode::Parallel) {
        Ok(x) => x,
        Err(code) => return code,
    };
    if serial.diagnostics != parallel.diagnostics
        || serial.baselined != parallel.baselined
        || serial.waived != parallel.waived
    {
        eprintln!("kvs-lint: serial and parallel scans disagree — scan determinism bug");
        return ExitCode::FAILURE;
    }
    let threads = kvs_lint::scan_workers();
    let report = obj(vec![
        ("schema", s("kvs-bench/v1")),
        ("bench", s("lint")),
        (
            "config",
            obj(vec![
                ("root", s(&cli.root.display().to_string())),
                ("threads", Value::Num(threads as f64)),
            ]),
        ),
        (
            "results",
            obj(vec![
                ("files_scanned", Value::Num(serial.files_scanned as f64)),
                ("findings", Value::Num(serial.diagnostics.len() as f64)),
                ("waived", Value::Num(serial.waived.len() as f64)),
                ("baselined", Value::Num(serial.baselined.len() as f64)),
                ("serial_ms", Value::Num(serial_ms)),
                ("parallel_ms", Value::Num(parallel_ms)),
                ("speedup", Value::Num(serial_ms / parallel_ms.max(1e-9))),
                // Phase timing for the dataflow engine (KVS-L017 …
                // KVS-L019): the rules run identically in both modes —
                // only the file scan is parallel — so the two numbers
                // bracket the engine's per-run jitter.
                ("dataflow_serial_ms", Value::Num(serial.dataflow_ms)),
                ("dataflow_parallel_ms", Value::Num(parallel.dataflow_ms)),
            ]),
        ),
    ]);
    if let Err(code) = emit(cli, &report.to_pretty()) {
        return code;
    }
    if cli.output.is_some() {
        println!(
            "kvs-lint: bench — {} files, serial {serial_ms:.1} ms, parallel {parallel_ms:.1} ms",
            serial.files_scanned
        );
    }
    ExitCode::SUCCESS
}

fn waivers(outcome: &kvs_lint::Outcome) -> ExitCode {
    if outcome.waiver_hits.is_empty() {
        println!("kvs-lint: no waivers on file");
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<9} {:>4}  {:<44} OWNER",
        "RULE", "HITS", "PATH (contains)"
    );
    let mut stale = 0usize;
    for (w, hits) in &outcome.waiver_hits {
        if *hits == 0 {
            stale += 1;
        }
        println!(
            "{:<9} {:>4}  {:<44} {}",
            w.rule,
            hits,
            format!("{} ({})", w.path, truncate(&w.contains, 24)),
            w.owner
        );
    }
    if stale > 0 {
        // Fail pointing at each stale entry's own `file:line` — the
        // `KVS-L000` diagnostics the check pass minted carry the
        // `[[waiver]]` header line, so the fix is one jump away. The
        // old exit only printed the count.
        for d in outcome
            .diagnostics
            .iter()
            .filter(|d| d.rule == "KVS-L000" && d.path == kvs_lint::WAIVER_FILE)
        {
            println!("{d}");
        }
    }
    println!(
        "kvs-lint: {} waiver(s), {} suppressed finding(s), {} stale",
        outcome.waiver_hits.len(),
        outcome.waived.len(),
        stale
    );
    if stale > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let head: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

fn baseline_cmd(cli: &Cli, outcome: &kvs_lint::Outcome) -> ExitCode {
    let path = cli.root.join(kvs_lint::baseline::BASELINE_FILE);
    if cli.update {
        // Freeze the currently failing findings (post-waiver). Config
        // errors (KVS-L000) must be fixed, never frozen.
        let (l000, freezable): (Vec<_>, Vec<_>) = outcome
            .diagnostics
            .iter()
            .cloned()
            .partition(|d| d.rule == "KVS-L000");
        if !l000.is_empty() {
            for d in &l000 {
                eprintln!("{d}");
            }
            eprintln!("kvs-lint: fix waiver/baseline machinery errors before re-freezing");
            return ExitCode::FAILURE;
        }
        // The already-baselined findings stay frozen alongside new ones.
        let mut all = freezable;
        all.extend(outcome.baselined.iter().cloned());
        all.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        let raw_line = |p: &str, line: usize| -> Option<String> {
            let file = cli.root.join(p);
            let text = std::fs::read_to_string(file).ok()?;
            text.lines().nth(line.checked_sub(1)?).map(str::to_string)
        };
        let entries = kvs_lint::baseline::freeze(&all, raw_line);
        let rendered = kvs_lint::baseline::render(&entries);
        match std::fs::write(&path, &rendered) {
            Ok(()) => {
                println!(
                    "kvs-lint: froze {} finding(s) into {}",
                    entries.len(),
                    kvs_lint::baseline::BASELINE_FILE
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("kvs-lint: cannot write {}: {e}", path.display());
                ExitCode::from(2)
            }
        }
    } else {
        let stale = outcome
            .diagnostics
            .iter()
            .filter(|d| d.rule == "KVS-L000" && d.path == kvs_lint::baseline::BASELINE_FILE)
            .count();
        println!(
            "kvs-lint: baseline holds {} frozen finding(s); {} stale entr(y/ies)",
            outcome.baselined.len(),
            stale
        );
        if stale > 0 {
            println!("run `kvs-lint baseline --update` after paying down baselined debt");
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
