//! CLI entry point: `cargo run -p kvs-lint -- check [--root <path>]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: kvs-lint <check|rules> [--root <path>]");
    eprintln!("  check   lint the workspace; exit 0 when clean, 1 on violations");
    eprintln!("  rules   list rule IDs and what they enforce");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(a),
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    match cmd {
        Some("rules") => {
            for (id, summary) in kvs_lint::RULES {
                println!("{id}  {summary}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let root = root.unwrap_or_else(|| {
                // When run via `cargo run -p kvs-lint`, the manifest dir is
                // crates/lint — the workspace root is two levels up.
                let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
                manifest
                    .parent()
                    .and_then(|p| p.parent())
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("."))
            });
            let outcome = match kvs_lint::check_workspace(&root) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("kvs-lint: cannot scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            for d in &outcome.diagnostics {
                println!("{d}");
            }
            if outcome.is_clean() {
                println!(
                    "kvs-lint: clean — {} files scanned, {} waived finding(s)",
                    outcome.files_scanned,
                    outcome.waived.len()
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "kvs-lint: {} violation(s) across {} files ({} waived); see \
                     CONTRIBUTING.md for rule docs and the waiver format",
                    outcome.diagnostics.len(),
                    outcome.files_scanned,
                    outcome.waived.len()
                );
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
