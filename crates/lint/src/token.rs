//! Dependency-free Rust tokenizer.
//!
//! The scanner ([`crate::scan`]) and the semantic passes
//! ([`crate::passes`]) both sit on this lexer, so it carries the one hard
//! invariant everything above relies on: **concatenating the source text
//! of every token, in order, reproduces the input byte for byte**. The
//! round-trip suite (`tests/roundtrip.rs`) enforces that over every `.rs`
//! file in the workspace.
//!
//! It is a lexer, not a parser: tokens know their span and their class
//! (identifier, literal, comment, punctuation), nothing more. Compared to
//! the line state machine it replaced, it gets the hard edges right:
//!
//! * raw strings with any number of `#` hashes (`r####"…"####`), including
//!   embedded quotes — the old scanner capped hashing at 3 and leaked
//!   string contents into the code view beyond that;
//! * lifetimes (`'a`, `'static`) vs char literals (`'a'`, `'\n'`, `'é'`);
//! * nested block comments with correct depth tracking;
//! * raw identifiers (`r#type`), byte strings and byte literals.

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Whitespace run (spaces, tabs, newlines).
    Ws,
    /// `// …` to end of line (the newline is not included).
    LineComment,
    /// `/* … */`, nesting-aware; runs to EOF when unterminated.
    BlockComment,
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`) — the quote plus the identifier.
    Lifetime,
    /// Char literal (`'x'`, `'\n'`).
    CharLit,
    /// Byte literal (`b'x'`).
    ByteLit,
    /// String literal (`"…"`), escape- and multiline-aware.
    Str,
    /// Byte string literal (`b"…"`).
    ByteStr,
    /// Raw string literal (`r"…"`, `r##"…"##`), any hash depth.
    RawStr,
    /// Raw byte string literal (`br"…"`, `br#"…"#`).
    RawByteStr,
    /// Numeric literal (`42`, `0x4B56`, `1_000`, `2.5`).
    Number,
    /// Any other single character (operators, delimiters, `;`, …).
    Punct,
}

impl TokKind {
    /// True for tokens the semantic passes should look at — everything
    /// except whitespace and comments.
    pub fn is_code(self) -> bool {
        !matches!(
            self,
            TokKind::Ws | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

/// One token: class plus byte span plus the 1-based line of its first
/// byte.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line number of the first byte.
    pub line: usize,
}

impl Tok {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Character cursor: chars with byte offsets, plus line tracking.
struct Cursor {
    chars: Vec<(usize, char)>,
    len: usize,
}

impl Cursor {
    fn at(&self, i: usize) -> Option<char> {
        self.chars.get(i).map(|&(_, c)| c)
    }

    fn off(&self, i: usize) -> usize {
        self.chars.get(i).map(|&(o, _)| o).unwrap_or(self.len)
    }
}

/// Tokenizes `src`. Total: every byte of `src` lands in exactly one
/// token, in order.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let cur = Cursor {
        chars: src.char_indices().collect(),
        len: src.len(),
    };
    let n = cur.chars.len();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        let start = i;
        let c = cur.chars[i].1;
        let kind = if c.is_whitespace() {
            i += 1;
            while cur.at(i).is_some_and(char::is_whitespace) {
                i += 1;
            }
            TokKind::Ws
        } else if c == '/' && cur.at(i + 1) == Some('/') {
            i += 2;
            while cur.at(i).is_some_and(|ch| ch != '\n') {
                i += 1;
            }
            TokKind::LineComment
        } else if c == '/' && cur.at(i + 1) == Some('*') {
            i = block_comment_end(&cur, i);
            TokKind::BlockComment
        } else if c == 'r' {
            let (kind, next) = r_prefixed(&cur, i);
            i = next;
            kind
        } else if c == 'b' {
            let (kind, next) = b_prefixed(&cur, i);
            i = next;
            kind
        } else if is_ident_start(c) {
            i = ident_end(&cur, i);
            TokKind::Ident
        } else if c == '"' {
            i = quoted_end(&cur, i + 1, '"');
            TokKind::Str
        } else if c == '\'' {
            let (kind, next) = lifetime_or_char(&cur, i);
            i = next;
            kind
        } else if c.is_ascii_digit() {
            i = number_end(&cur, i);
            TokKind::Number
        } else {
            i += 1;
            TokKind::Punct
        };
        toks.push(Tok {
            kind,
            start: cur.off(start),
            end: cur.off(i),
            line,
        });
        line += cur.chars[start..i]
            .iter()
            .filter(|&&(_, ch)| ch == '\n')
            .count();
    }
    toks
}

fn ident_end(cur: &Cursor, mut i: usize) -> usize {
    i += 1;
    while cur.at(i).is_some_and(is_ident_continue) {
        i += 1;
    }
    i
}

fn number_end(cur: &Cursor, mut i: usize) -> usize {
    i = ident_end(cur, i); // digits, hex, suffixes, `_` separators
    if cur.at(i) == Some('.') && cur.at(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i = ident_end(cur, i + 1); // fractional part (+ exponent chars)
    }
    i
}

/// Past-the-end of a (possibly escaped) quoted literal whose opening
/// delimiter has been consumed. Runs to EOF when unterminated.
fn quoted_end(cur: &Cursor, mut i: usize, close: char) -> usize {
    loop {
        match cur.at(i) {
            None => return i,
            Some('\\') => i += 2,
            Some(c) if c == close => return i + 1,
            Some(_) => i += 1,
        }
    }
}

/// Past-the-end of a nested block comment starting at `i` (at `/*`).
fn block_comment_end(cur: &Cursor, mut i: usize) -> usize {
    let mut depth = 0u32;
    loop {
        match (cur.at(i), cur.at(i + 1)) {
            (None, _) => return i,
            (Some('/'), Some('*')) => {
                depth += 1;
                i += 2;
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                i += 2;
                if depth == 0 {
                    return i;
                }
            }
            _ => i += 1,
        }
    }
}

/// Hash count at `i` (how many consecutive `#`).
fn hashes_at(cur: &Cursor, mut i: usize) -> usize {
    let from = i;
    while cur.at(i) == Some('#') {
        i += 1;
    }
    i - from
}

/// Past-the-end of a raw string body: `i` points just past the opening
/// quote; the literal closes at `"` followed by `hashes` hashes.
fn raw_end(cur: &Cursor, mut i: usize, hashes: usize) -> usize {
    loop {
        match cur.at(i) {
            None => return i,
            Some('"') if (1..=hashes).all(|k| cur.at(i + k) == Some('#')) => {
                return i + 1 + hashes;
            }
            Some(_) => i += 1,
        }
    }
}

/// `r` at `i`: raw string (`r"…"`, `r##"…"##`), raw identifier
/// (`r#type`), or a plain identifier starting with `r`.
fn r_prefixed(cur: &Cursor, i: usize) -> (TokKind, usize) {
    let h = hashes_at(cur, i + 1);
    if cur.at(i + 1 + h) == Some('"') {
        return (TokKind::RawStr, raw_end(cur, i + 2 + h, h));
    }
    if h == 1 && cur.at(i + 2).is_some_and(is_ident_start) {
        return (TokKind::Ident, ident_end(cur, i + 2)); // r#ident
    }
    (TokKind::Ident, ident_end(cur, i))
}

/// `b` at `i`: byte string, byte literal, raw byte string, or identifier.
fn b_prefixed(cur: &Cursor, i: usize) -> (TokKind, usize) {
    match cur.at(i + 1) {
        Some('"') => (TokKind::ByteStr, quoted_end(cur, i + 2, '"')),
        Some('\'') => (TokKind::ByteLit, quoted_end(cur, i + 2, '\'')),
        Some('r') => {
            let h = hashes_at(cur, i + 2);
            if cur.at(i + 2 + h) == Some('"') {
                (TokKind::RawByteStr, raw_end(cur, i + 3 + h, h))
            } else {
                (TokKind::Ident, ident_end(cur, i))
            }
        }
        _ => (TokKind::Ident, ident_end(cur, i)),
    }
}

/// `'` at `i`: lifetime or char literal. A lifetime is `'ident` not
/// followed by a closing quote right after a single ident char; anything
/// else is a char literal.
fn lifetime_or_char(cur: &Cursor, i: usize) -> (TokKind, usize) {
    match cur.at(i + 1) {
        Some('\\') => (TokKind::CharLit, quoted_end(cur, i + 1, '\'')),
        Some(c) if is_ident_start(c) => {
            if cur.at(i + 2) == Some('\'') {
                (TokKind::CharLit, i + 3) // 'x'
            } else {
                (TokKind::Lifetime, ident_end(cur, i + 1))
            }
        }
        Some(_) => (TokKind::CharLit, quoted_end(cur, i + 1, '\'')),
        None => (TokKind::CharLit, i + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Tok> {
        let toks = tokenize(src);
        let glued: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(glued, src, "tokenizer must reproduce the source");
        let mut off = 0;
        for t in &toks {
            assert_eq!(t.start, off, "tokens must be contiguous");
            assert!(t.end > t.start, "tokens must be non-empty");
            off = t.end;
        }
        toks
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        roundtrip(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Ws)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn raw_strings_take_any_hash_depth() {
        let src = r####"let s = r###"say "hi"# unsafe"###;"####;
        let toks = roundtrip(src);
        let raw = toks.iter().find(|t| t.kind == TokKind::RawStr).unwrap();
        assert_eq!(raw.text(src), r####"r###"say "hi"# unsafe"###"####);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        use TokKind::*;
        assert_eq!(
            kinds("fn f<'a>(x: &'a str) -> &'static str"),
            vec![
                Ident, Ident, Punct, Lifetime, Punct, Punct, Ident, Punct, Punct, Lifetime, Ident,
                Punct, Punct, Punct, Punct, Lifetime, Ident
            ]
        );
        assert_eq!(kinds("'x'"), vec![CharLit]);
        assert_eq!(kinds("'_'"), vec![CharLit]);
        assert_eq!(kinds("'\\n'"), vec![CharLit]);
        assert_eq!(kinds("'\\''"), vec![CharLit]);
        assert_eq!(kinds("'é'"), vec![CharLit]);
        assert_eq!(
            kinds("'outer: loop {}"),
            vec![Lifetime, Punct, Ident, Punct, Punct]
        );
    }

    #[test]
    fn nested_block_comments_and_line_numbers() {
        let src = "a /* x /* y */ z */ b\nc // tail\nd";
        let toks = roundtrip(src);
        let block = toks
            .iter()
            .find(|t| t.kind == TokKind::BlockComment)
            .unwrap();
        assert_eq!(block.text(src), "/* x /* y */ z */");
        let d = toks.iter().rfind(|t| t.kind == TokKind::Ident).unwrap();
        assert_eq!(d.text(src), "d");
        assert_eq!(d.line, 3);
    }

    #[test]
    fn byte_and_raw_identifier_forms() {
        use TokKind::*;
        assert_eq!(
            kinds("b\"kv\" b'x' br#\"q\"# r#type break"),
            vec![ByteStr, ByteLit, RawByteStr, Ident, Ident]
        );
    }

    #[test]
    fn numbers_and_unterminated_literals_reach_eof() {
        use TokKind::*;
        assert_eq!(
            kinds("0x4B56 1_000 2.5 1..4"),
            vec![Number, Number, Number, Number, Punct, Punct, Number]
        );
        roundtrip("let s = \"open");
        roundtrip("let s = r##\"open\"#");
        roundtrip("/* open");
        roundtrip("'");
    }
}
