//! SARIF 2.1.0 output, for CI code-scanning upload and editor ingestion.
//!
//! One run, one tool (`kvs-lint`), the full rule catalogue under
//! `tool.driver.rules`, and one result per finding: still-failing
//! findings at level `error`, baselined findings at level `warning`
//! (visible debt, not a gate). Paths are emitted as workspace-relative
//! `artifactLocation.uri`s, which is what the GitHub SARIF ingester
//! expects when the checkout is the workspace root.

use crate::json::{self, Value};
use crate::rules::{Diagnostic, RULES};
use crate::Outcome;

/// The schema URI embedded in the report.
pub const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders the outcome as a SARIF 2.1.0 document.
pub fn render(outcome: &Outcome) -> String {
    let rules: Vec<Value> = RULES
        .iter()
        .map(|(id, summary)| {
            json::obj(vec![
                ("id", json::s(id)),
                (
                    "shortDescription",
                    json::obj(vec![("text", json::s(summary))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Value> = outcome
        .diagnostics
        .iter()
        .map(|d| result(d, "error"))
        .chain(outcome.baselined.iter().map(|d| result(d, "warning")))
        .collect();
    json::obj(vec![
        ("$schema", json::s(SCHEMA)),
        ("version", json::s("2.1.0")),
        (
            "runs",
            Value::Arr(vec![json::obj(vec![
                (
                    "tool",
                    json::obj(vec![(
                        "driver",
                        json::obj(vec![
                            ("name", json::s("kvs-lint")),
                            ("informationUri", json::s("docs/LINT.md")),
                            ("rules", Value::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Arr(results)),
            ])]),
        ),
    ])
    .to_pretty()
}

fn result(d: &Diagnostic, level: &str) -> Value {
    json::obj(vec![
        ("ruleId", json::s(d.rule)),
        ("level", json::s(level)),
        ("message", json::obj(vec![("text", json::s(&d.message))])),
        (
            "locations",
            Value::Arr(vec![json::obj(vec![(
                "physicalLocation",
                json::obj(vec![
                    (
                        "artifactLocation",
                        json::obj(vec![("uri", json::s(&d.path))]),
                    ),
                    (
                        "region",
                        json::obj(vec![("startLine", Value::Num(d.line.max(1) as f64))]),
                    ),
                ]),
            )])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn outcome() -> Outcome {
        Outcome {
            diagnostics: vec![Diagnostic {
                rule: "KVS-L010",
                path: "crates/net/src/x.rs".to_string(),
                line: 12,
                message: "unbounded channel".to_string(),
            }],
            baselined: vec![Diagnostic {
                rule: "KVS-L004",
                path: "crates/net/src/y.rs".to_string(),
                line: 3,
                message: "frozen unwrap".to_string(),
            }],
            waived: Vec::new(),
            waiver_hits: Vec::new(),
            files_scanned: 2,
        }
    }

    #[test]
    fn report_has_the_sarif_2_1_0_shape() {
        let doc = parse(&render(&outcome())).expect("SARIF output must be valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert!(doc
            .get("$schema")
            .and_then(Value::as_str)
            .is_some_and(|s| s.contains("sarif-2.1.0")));
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs array");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("kvs-lint"));
        let rules = driver.get("rules").and_then(Value::as_arr).expect("rules");
        assert_eq!(rules.len(), RULES.len());
        for r in rules {
            assert!(r.get("id").and_then(Value::as_str).is_some());
            assert!(r
                .get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Value::as_str)
                .is_some());
        }
        let results = runs[0]
            .get("results")
            .and_then(Value::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("level").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            results[1].get("level").and_then(Value::as_str),
            Some("warning")
        );
        let loc = results[0]
            .get("locations")
            .and_then(Value::as_arr)
            .expect("locations");
        let phys = loc[0].get("physicalLocation").expect("physicalLocation");
        assert_eq!(
            phys.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str),
            Some("crates/net/src/x.rs")
        );
        assert_eq!(
            phys.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_num),
            Some(12.0)
        );
    }

    #[test]
    fn every_result_rule_id_is_declared() {
        let doc = parse(&render(&outcome())).unwrap();
        let runs = doc.get("runs").and_then(Value::as_arr).unwrap();
        let declared: Vec<&str> = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter_map(|r| r.get("id").and_then(Value::as_str))
            .collect();
        for res in runs[0].get("results").and_then(Value::as_arr).unwrap() {
            let id = res.get("ruleId").and_then(Value::as_str).unwrap();
            assert!(declared.contains(&id), "undeclared ruleId {id}");
        }
    }
}
