//! SARIF 2.1.0 output, for CI code-scanning upload and editor ingestion.
//!
//! One run, one tool (`kvs-lint`), the full rule catalogue under
//! `tool.driver.rules`, and one result per finding: still-failing
//! findings at level `error`, baselined findings at level `warning`
//! (visible debt, not a gate). Paths are emitted as workspace-relative
//! `artifactLocation.uri`s, which is what the GitHub SARIF ingester
//! expects when the checkout is the workspace root.
//!
//! Findings whose message carries a `file:line → file:line` witness
//! chain (the interprocedural rules and the dataflow engine's taint
//! flows) additionally emit the chain as a SARIF `codeFlows` thread
//! flow, so code-scanning UIs can step through the propagation
//! source-to-sink.

use crate::json::{self, Value};
use crate::rules::{Diagnostic, RULES};
use crate::Outcome;

/// The schema URI embedded in the report.
pub const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders the outcome as a SARIF 2.1.0 document.
pub fn render(outcome: &Outcome) -> String {
    let rules: Vec<Value> = RULES
        .iter()
        .map(|(id, summary)| {
            json::obj(vec![
                ("id", json::s(id)),
                (
                    "shortDescription",
                    json::obj(vec![("text", json::s(summary))]),
                ),
            ])
        })
        .collect();
    let results: Vec<Value> = outcome
        .diagnostics
        .iter()
        .map(|d| result(d, "error"))
        .chain(outcome.baselined.iter().map(|d| result(d, "warning")))
        .collect();
    json::obj(vec![
        ("$schema", json::s(SCHEMA)),
        ("version", json::s("2.1.0")),
        (
            "runs",
            Value::Arr(vec![json::obj(vec![
                (
                    "tool",
                    json::obj(vec![(
                        "driver",
                        json::obj(vec![
                            ("name", json::s("kvs-lint")),
                            ("informationUri", json::s("docs/LINT.md")),
                            ("rules", Value::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Arr(results)),
            ])]),
        ),
    ])
    .to_pretty()
}

fn location(path: &str, line: usize) -> Value {
    json::obj(vec![(
        "physicalLocation",
        json::obj(vec![
            ("artifactLocation", json::obj(vec![("uri", json::s(path))])),
            (
                "region",
                json::obj(vec![("startLine", Value::Num(line.max(1) as f64))]),
            ),
        ]),
    )])
}

/// Extracts the `file:line → file:line → …` witness chain embedded in a
/// diagnostic message, if any. Chains are rendered by the CFG witness
/// helper and the dataflow engine; every step must parse as
/// `path:line` for the chain to count (a lone `→` in prose does not).
fn witness_chain(message: &str) -> Option<Vec<(String, usize)>> {
    let candidate = message.rsplit(": ").next().unwrap_or(message);
    let steps: Vec<&str> = candidate.split(" → ").map(str::trim).collect();
    if steps.len() < 2 {
        return None;
    }
    let mut out = Vec::with_capacity(steps.len());
    for step in steps {
        let (path, line) = step.rsplit_once(':')?;
        let line: usize = line.parse().ok()?;
        if path.is_empty() || path.contains(' ') {
            return None;
        }
        out.push((path.to_string(), line));
    }
    Some(out)
}

fn result(d: &Diagnostic, level: &str) -> Value {
    let mut fields = vec![
        ("ruleId", json::s(d.rule)),
        ("level", json::s(level)),
        ("message", json::obj(vec![("text", json::s(&d.message))])),
        ("locations", Value::Arr(vec![location(&d.path, d.line)])),
    ];
    if let Some(chain) = witness_chain(&d.message) {
        let steps: Vec<Value> = chain
            .iter()
            .map(|(path, line)| json::obj(vec![("location", location(path, *line))]))
            .collect();
        fields.push((
            "codeFlows",
            Value::Arr(vec![json::obj(vec![(
                "threadFlows",
                Value::Arr(vec![json::obj(vec![("locations", Value::Arr(steps))])]),
            )])]),
        ));
    }
    json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn outcome() -> Outcome {
        Outcome {
            diagnostics: vec![Diagnostic {
                rule: "KVS-L010",
                path: "crates/net/src/x.rs".to_string(),
                line: 12,
                message: "unbounded channel".to_string(),
            }],
            baselined: vec![Diagnostic {
                rule: "KVS-L004",
                path: "crates/net/src/y.rs".to_string(),
                line: 3,
                message: "frozen unwrap".to_string(),
            }],
            waived: Vec::new(),
            waiver_hits: Vec::new(),
            files_scanned: 2,
            dataflow_ms: 0.0,
        }
    }

    #[test]
    fn report_has_the_sarif_2_1_0_shape() {
        let doc = parse(&render(&outcome())).expect("SARIF output must be valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        assert!(doc
            .get("$schema")
            .and_then(Value::as_str)
            .is_some_and(|s| s.contains("sarif-2.1.0")));
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs array");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("kvs-lint"));
        let rules = driver.get("rules").and_then(Value::as_arr).expect("rules");
        assert_eq!(rules.len(), RULES.len());
        for r in rules {
            assert!(r.get("id").and_then(Value::as_str).is_some());
            assert!(r
                .get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Value::as_str)
                .is_some());
        }
        let results = runs[0]
            .get("results")
            .and_then(Value::as_arr)
            .expect("results");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("level").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            results[1].get("level").and_then(Value::as_str),
            Some("warning")
        );
        let loc = results[0]
            .get("locations")
            .and_then(Value::as_arr)
            .expect("locations");
        let phys = loc[0].get("physicalLocation").expect("physicalLocation");
        assert_eq!(
            phys.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Value::as_str),
            Some("crates/net/src/x.rs")
        );
        assert_eq!(
            phys.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Value::as_num),
            Some(12.0)
        );
    }

    #[test]
    fn witness_chain_becomes_a_code_flow() {
        let mut oc = outcome();
        oc.diagnostics.push(Diagnostic {
            rule: "KVS-L017",
            path: "crates/net/src/frame.rs".to_string(),
            line: 296,
            message: "untrusted wire length: u32::from_be_bytes (line 295) reaches \
                      allocation `with_capacity(…)` without a validated bound — compare \
                      against a MAX_PAYLOAD-style limit first; flow: \
                      crates/net/src/frame.rs:295 → crates/net/src/frame.rs:296"
                .to_string(),
        });
        let doc = parse(&render(&oc)).unwrap();
        let results = doc.get("runs").and_then(Value::as_arr).unwrap()[0]
            .get("results")
            .and_then(Value::as_arr)
            .unwrap();
        let flowed = results
            .iter()
            .find(|r| r.get("ruleId").and_then(Value::as_str) == Some("KVS-L017"))
            .expect("L017 result present");
        let steps = flowed
            .get("codeFlows")
            .and_then(Value::as_arr)
            .expect("codeFlows")[0]
            .get("threadFlows")
            .and_then(Value::as_arr)
            .expect("threadFlows")[0]
            .get("locations")
            .and_then(Value::as_arr)
            .expect("thread flow locations");
        assert_eq!(steps.len(), 2);
        let lines: Vec<f64> = steps
            .iter()
            .map(|s| {
                s.get("location")
                    .and_then(|l| l.get("physicalLocation"))
                    .and_then(|p| p.get("region"))
                    .and_then(|r| r.get("startLine"))
                    .and_then(Value::as_num)
                    .expect("startLine")
            })
            .collect();
        assert_eq!(lines, vec![295.0, 296.0]);
        // Plain-prose findings must not grow a codeFlows section.
        let plain = results
            .iter()
            .find(|r| r.get("ruleId").and_then(Value::as_str) == Some("KVS-L010"))
            .unwrap();
        assert!(plain.get("codeFlows").is_none());
    }

    #[test]
    fn every_result_rule_id_is_declared() {
        let doc = parse(&render(&outcome())).unwrap();
        let runs = doc.get("runs").and_then(Value::as_arr).unwrap();
        let declared: Vec<&str> = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .filter_map(|r| r.get("id").and_then(Value::as_str))
            .collect();
        for res in runs[0].get("results").and_then(Value::as_arr).unwrap() {
            let id = res.get("ruleId").and_then(Value::as_str).unwrap();
            assert!(declared.contains(&id), "undeclared ruleId {id}");
        }
    }
}
