//! Line-oriented Rust source scanner.
//!
//! Not a real parser: a small state machine that is just smart enough to
//! tell *code* apart from *comments* and *string/char literal contents*,
//! and to mark the lines living inside a `#[cfg(test)]` module. Every rule
//! in [`crate::rules`] works on this view, so a forbidden token inside a
//! doc comment or a string literal never fires, and test-only code can be
//! scoped out where a rule allows it.
//!
//! Known, accepted approximations (documented here so nobody re-discovers
//! them the hard way):
//!
//! * `#[cfg(test)]` detection assumes the attribute directly precedes a
//!   `mod` item whose body is brace-delimited — the workspace convention.
//!   `#[cfg(test)]` on individual functions outside such a module is
//!   treated as regular code.
//! * Raw strings are recognized up to `r###"`-level hashing; deeper
//!   nesting (which the workspace does not use) would confuse the
//!   scanner.
//! * Statement boundaries are approximated by lines; `rustfmt --check`
//!   (gated by the same CI job) keeps the layouts the heuristics expect.

/// One scanned source line, in three views.
#[derive(Debug)]
pub struct LineInfo {
    /// The original line, verbatim.
    pub raw: String,
    /// The line with comments removed and string/char literal *contents*
    /// blanked out (delimiters kept), so token searches cannot match
    /// inside prose.
    pub code: String,
    /// The comment text of the line (contents of `//…` and the in-line
    /// parts of `/* … */`), for comment-contract rules.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)] mod … { … }` block.
    pub in_test: bool,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<LineInfo>,
}

impl SourceFile {
    /// Scans `text` as the contents of `rel`.
    pub fn scan(rel: &str, text: &str) -> SourceFile {
        let (code_lines, comment_lines) = split_code_and_comments(text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let test_flags = mark_test_regions(&code_lines);
        let lines = raw_lines
            .iter()
            .enumerate()
            .map(|(i, raw)| LineInfo {
                raw: (*raw).to_string(),
                code: code_lines.get(i).cloned().unwrap_or_default(),
                comment: comment_lines.get(i).cloned().unwrap_or_default(),
                in_test: test_flags.get(i).copied().unwrap_or(false),
            })
            .collect();
        SourceFile {
            rel: rel.to_string(),
            lines,
        }
    }

    /// 1-based enumeration over the lines.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &LineInfo)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

/// Splits source text into per-line code and comment views.
fn split_code_and_comments(text: &str) -> (Vec<String>, Vec<String>) {
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut state = State::Code;
    for line in text.lines() {
        let mut code = String::with_capacity(line.len());
        let mut comment = String::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.extend(&chars[i + 2..]);
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                    }
                    'r' if is_raw_string_start(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        code.push('r');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        code.push('"');
                        i += 1 + hashes as usize + 1;
                        state = State::RawStr(hashes);
                        continue;
                    }
                    '\'' if is_char_literal_start(&chars, i) => {
                        state = State::Char;
                        code.push('\'');
                    }
                    _ => code.push(c),
                },
                State::LineComment => unreachable!("line comments consume the rest of the line"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                }
                State::Str => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                    }
                    '"' => {
                        state = State::Code;
                        code.push('"');
                    }
                    _ => code.push(' '),
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                    code.push(' ');
                }
                State::Char => match c {
                    '\\' => {
                        code.push(' ');
                        if next.is_some() {
                            code.push(' ');
                            i += 2;
                            continue;
                        }
                    }
                    '\'' => {
                        state = State::Code;
                        code.push('\'');
                    }
                    _ => code.push(' '),
                },
            }
            i += 1;
        }
        // Line comments and strings end with the line; block comments and
        // raw strings persist.
        match state {
            State::LineComment | State::Str | State::Char => state = State::Code,
            _ => {}
        }
        code_lines.push(code);
        comment_lines.push(comment);
    }
    (code_lines, comment_lines)
}

/// `r"`, `r#"`, `br"` … — is position `i` (pointing at `r`) the start of a
/// raw string literal? Requires the previous character to be a
/// non-identifier character (so `for` or `var` never match) or `b`.
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if (prev.is_alphanumeric() || prev == '_') && prev != 'b' {
            return false;
        }
    }
    let hashes = count_hashes(chars, i + 1);
    chars.get(i + 1 + hashes as usize) == Some(&'"')
}

fn count_hashes(chars: &[char], from: usize) -> u8 {
    let mut n = 0u8;
    while chars.get(from + n as usize) == Some(&'#') && n < 3 {
        n += 1;
    }
    n
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u8) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Is the `'` at `i` a char literal (as opposed to a lifetime)? A char
/// literal is `'x'` or `'\…'`; a lifetime is `'ident` with no closing
/// quote nearby.
fn is_char_literal_start(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)] mod … { … }` regions.
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth *at entry* of the active test module, if any.
    let mut test_depth: Option<i64> = None;
    let mut pending_attr = false;
    for (ix, code) in code_lines.iter().enumerate() {
        let trimmed = code.trim();
        if test_depth.is_none() && trimmed.starts_with("#[cfg(test)]") {
            pending_attr = true;
        } else if pending_attr
            && test_depth.is_none()
            && (trimmed.starts_with("mod ") || trimmed.starts_with("pub mod "))
        {
            test_depth = Some(depth);
            pending_attr = false;
        } else if pending_attr && !trimmed.is_empty() && !trimmed.starts_with("#[") {
            // The attribute guarded something other than a module.
            pending_attr = false;
        }
        if test_depth.is_some() {
            flags[ix] = true;
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(td) = test_depth {
                        if depth <= td {
                            test_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"SystemTime::now()\"; // SystemTime::now()\nlet b = 1;\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(f.lines[0].comment.contains("SystemTime::now()"));
        assert!(f.lines[1].code.contains("let b = 1;"));
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/* one\n   SystemTime::now()\n*/ let x = 2;\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[1].code.contains("SystemTime"));
        assert!(f.lines[1].comment.contains("SystemTime::now()"));
        assert!(f.lines[2].code.contains("let x = 2;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"unsafe { }\"#;\nunsafe {}\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // 'q\nlet c = 'x';\nlet n = '\\n';\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[1].code.contains('x'));
        assert!(f.lines[2].code.contains("let n ="));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::scan("x.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_a_function_does_not_open_a_region() {
        let src = "#[cfg(test)]\nfn helper() {}\nfn live() {}\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(f.lines.iter().all(|l| !l.in_test));
    }
}
