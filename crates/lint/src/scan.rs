//! Per-line source views, built on the real tokenizer.
//!
//! The line rules in [`crate::rules`] work on three views of every line:
//! *raw* (verbatim), *code* (comments removed, string/char literal
//! contents blanked to spaces with delimiters kept) and *comment* (the
//! text of `//…` and the interiors of `/* … */`). Since PR 5 these views
//! are projected from [`crate::token`]'s token stream instead of a
//! hand-rolled line state machine, which fixes the old lexer's edge
//! cases: raw strings with more than three `#` hashes no longer leak
//! their contents into the code view, and lifetimes are never mistaken
//! for char-literal openers.
//!
//! Remaining, accepted approximation: `#[cfg(test)]` detection assumes
//! the attribute directly precedes a `mod` item whose body is
//! brace-delimited — the workspace convention. `#[cfg(test)]` on
//! individual functions outside such a module is treated as regular code.

use crate::token::{self, Tok, TokKind};

/// One scanned source line, in three views.
#[derive(Debug)]
pub struct LineInfo {
    /// The original line, verbatim.
    pub raw: String,
    /// The line with comments removed and string/char literal *contents*
    /// blanked out (delimiters kept), so token searches cannot match
    /// inside prose.
    pub code: String,
    /// The comment text of the line (contents of `//…` and the in-line
    /// parts of `/* … */`), for comment-contract rules.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)] mod … { … }` block.
    pub in_test: bool,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Scanned lines, index 0 = line 1.
    pub lines: Vec<LineInfo>,
    /// The full source text, verbatim.
    pub text: String,
    /// The token stream for `text` (round-trip exact).
    pub toks: Vec<Tok>,
}

impl SourceFile {
    /// Scans `text` as the contents of `rel`.
    pub fn scan(rel: &str, text: &str) -> SourceFile {
        let toks = token::tokenize(text);
        let n_lines = text.lines().count();
        let mut code_lines = vec![String::new(); n_lines];
        let mut comment_lines = vec![String::new(); n_lines];
        for t in &toks {
            project(text, t, &mut code_lines, &mut comment_lines);
        }
        let test_flags = mark_test_regions(&code_lines);
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, raw)| LineInfo {
                raw: raw.to_string(),
                code: std::mem::take(&mut code_lines[i]),
                comment: std::mem::take(&mut comment_lines[i]),
                in_test: test_flags.get(i).copied().unwrap_or(false),
            })
            .collect();
        SourceFile {
            rel: rel.to_string(),
            lines,
            text: text.to_string(),
            toks,
        }
    }

    /// 1-based enumeration over the lines.
    pub fn numbered(&self) -> impl Iterator<Item = (usize, &LineInfo)> {
        self.lines.iter().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// True when 1-based `line` is inside a `#[cfg(test)]` module.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.lines
            .get(line.wrapping_sub(1))
            .is_some_and(|l| l.in_test)
    }
}

/// Appends `s` (which may span lines) to the per-line buffers starting at
/// 1-based `line`.
fn push_lines(buf: &mut [String], line: usize, s: &str) {
    for (k, part) in s.split('\n').enumerate() {
        if let Some(slot) = buf.get_mut(line - 1 + k) {
            slot.push_str(part);
        }
    }
}

/// Projects one token into the code/comment line views, reproducing the
/// shapes the line rules were written against.
fn project(src: &str, t: &Tok, code: &mut [String], comment: &mut [String]) {
    let text = t.text(src);
    match t.kind {
        TokKind::Ws | TokKind::Ident | TokKind::Lifetime | TokKind::Number | TokKind::Punct => {
            push_lines(code, t.line, text)
        }
        TokKind::LineComment => {
            // `//xyz` → comment view gets `xyz` (so `/// doc` yields
            // `/ doc` and `//! doc` yields `! doc`, as the doc-table
            // rule expects); the code view gets nothing.
            push_lines(comment, t.line, &text[2..]);
        }
        TokKind::BlockComment => {
            // Interior chars go to the comment view; `/*` and `*/`
            // delimiter pairs (at any nesting depth) go nowhere.
            let chars: Vec<char> = text.chars().collect();
            let mut line = t.line;
            let mut buf = String::new();
            let mut i = 0;
            while i < chars.len() {
                match (chars[i], chars.get(i + 1)) {
                    ('/', Some('*')) | ('*', Some('/')) => i += 2,
                    ('\n', _) => {
                        push_lines(comment, line, &buf);
                        buf.clear();
                        line += 1;
                        i += 1;
                    }
                    (c, _) => {
                        buf.push(c);
                        i += 1;
                    }
                }
            }
            push_lines(comment, line, &buf);
        }
        TokKind::Str | TokKind::ByteStr | TokKind::CharLit | TokKind::ByteLit => {
            let quote = match t.kind {
                TokKind::CharLit | TokKind::ByteLit => '\'',
                _ => '"',
            };
            let prefix = if matches!(t.kind, TokKind::ByteStr | TokKind::ByteLit) {
                2 // `b"` / `b'`
            } else {
                1
            };
            blank_literal(code, t.line, text, prefix, quote, 0);
        }
        TokKind::RawStr | TokKind::RawByteStr => {
            // `r##"` … `"##`: keep the full opener and closer, blank the
            // interior.
            let quote_at = text.find('"').unwrap_or(text.len() - 1);
            let hashes = quote_at.saturating_sub(if text.starts_with('b') { 2 } else { 1 });
            blank_literal(code, t.line, text, quote_at + 1, '"', hashes);
        }
    }
}

/// Emits a literal into the code view: the first `prefix` chars verbatim,
/// interior chars as spaces (newlines preserved), and — when the token is
/// terminated — the closing `quote` plus `closer_hashes` hashes verbatim.
fn blank_literal(
    code: &mut [String],
    start_line: usize,
    text: &str,
    prefix: usize,
    quote: char,
    closer_hashes: usize,
) {
    let chars: Vec<char> = text.chars().collect();
    let closer_len = 1 + closer_hashes;
    let terminated = chars.len() >= prefix + closer_len
        && chars[chars.len() - closer_len] == quote
        && chars[chars.len() - closer_hashes..]
            .iter()
            .all(|&c| c == '#');
    let interior_end = if terminated {
        chars.len() - closer_len
    } else {
        chars.len()
    };
    let mut out = String::with_capacity(text.len());
    for (i, &c) in chars.iter().enumerate() {
        if i < prefix || i >= interior_end {
            out.push(c);
        } else if c == '\n' {
            out.push('\n');
        } else {
            out.push(' ');
        }
    }
    push_lines(code, start_line, &out);
}

/// Marks lines inside `#[cfg(test)] mod … { … }` regions.
fn mark_test_regions(code_lines: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    // Depth *at entry* of the active test module, if any.
    let mut test_depth: Option<i64> = None;
    let mut pending_attr = false;
    for (ix, code) in code_lines.iter().enumerate() {
        let trimmed = code.trim();
        if test_depth.is_none() && trimmed.starts_with("#[cfg(test)]") {
            pending_attr = true;
        } else if pending_attr
            && test_depth.is_none()
            && (trimmed.starts_with("mod ") || trimmed.starts_with("pub mod "))
        {
            test_depth = Some(depth);
            pending_attr = false;
        } else if pending_attr && !trimmed.is_empty() && !trimmed.starts_with("#[") {
            // The attribute guarded something other than a module.
            pending_attr = false;
        }
        if test_depth.is_some() {
            flags[ix] = true;
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if let Some(td) = test_depth {
                        if depth <= td {
                            test_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"SystemTime::now()\"; // SystemTime::now()\nlet b = 1;\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(f.lines[0].comment.contains("SystemTime::now()"));
        assert!(f.lines[1].code.contains("let b = 1;"));
    }

    #[test]
    fn block_comments_span_lines() {
        let src = "/* one\n   SystemTime::now()\n*/ let x = 2;\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[1].code.contains("SystemTime"));
        assert!(f.lines[1].comment.contains("SystemTime::now()"));
        assert!(f.lines[2].code.contains("let x = 2;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"unsafe { }\"#;\nunsafe {}\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].code.contains("r#\""));
        assert!(f.lines[1].code.contains("unsafe"));
    }

    #[test]
    fn deep_hash_raw_strings_with_embedded_quotes_are_blanked() {
        // The pre-tokenizer scanner capped raw-string hashes at 3: with
        // four hashes the embedded `"hi"` re-opened a plain string and
        // `unsafe` leaked into the code view. Regression for KVS-L005.
        let src = "let s = r####\"say \"hi\" unsafe { SystemTime::now() }\"####;\nlet t = 1;\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(f.lines[0].code.contains("r####\""));
        assert!(f.lines[0].code.contains("\"####;"));
        assert!(f.lines[1].code.contains("let t = 1;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // 'q\nlet c = 'x';\nlet n = '\\n';\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(!f.lines[1].code.contains('x'));
        assert!(f.lines[2].code.contains("let n ="));
    }

    #[test]
    fn multiline_strings_stay_blanked_past_the_first_line() {
        let src = "let s = \"one\n  unsafe two\";\nlet u = 3;\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(!f.lines[1].code.contains("unsafe"));
        assert!(f.lines[2].code.contains("let u = 3;"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::scan("x.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_a_function_does_not_open_a_region() {
        let src = "#[cfg(test)]\nfn helper() {}\nfn live() {}\n";
        let f = SourceFile::scan("x.rs", src);
        assert!(f.lines.iter().all(|l| !l.in_test));
    }
}
