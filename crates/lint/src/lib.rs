//! `kvs-lint`: the workspace invariant checker.
//!
//! The paper's methodology stands on two legs this linter guards
//! mechanically: *measured* timings must come only from the sanctioned
//! clock portals, and the *simulated* components must be deterministic
//! enough to cross-validate against live runs. On top of that it pins the
//! wire-protocol documentation to the constants in `frame.rs` and enforces
//! the error- and lock-discipline conventions of the `net`/`cluster` hot
//! paths. See [`rules`] for the rule catalogue and [`waiver`] for the
//! escape hatch.
//!
//! Since PR 5 the linter is a three-layer analyzer: a real tokenizer and
//! token-tree builder ([`token`], [`tree`]), the line rules plus
//! semantic passes over the trees ([`rules`], [`passes`]: lock-order
//! cycles, channel topology, stage-stamp dataflow, frame-kind
//! exhaustiveness), and a reporting layer with SARIF/JSON output
//! ([`sarif`], [`json`]) and a frozen-debt ratchet ([`baseline`]).
//! PR 9 adds the interprocedural layer — a workspace call graph
//! ([`callgraph`]) and per-function control-flow graphs ([`cfg`]) that
//! power blocking-reachability, crash-ordering and deadline-propagation
//! passes — and parallelizes the per-file scan on a std-only worker
//! pool ([`ScanMode`]). On top of those sit the dataflow engine
//! ([`dataflow`]): a gen/kill worklist fixed point over the CFG blocks
//! with bottom-up interprocedural taint summaries over the call graph's
//! SCC condensation, powering the wire-input-taint, determinism-escape
//! and receipt-accounting rules (KVS-L017 … KVS-L019).
//!
//! Deliberately dependency-free (std only): this crate is the tool that
//! guards the shims, so it must build even when every shim is broken.
//!
//! Run it:
//!
//! ```console
//! $ cargo run -p kvs-lint -- check            # lint the workspace
//! $ cargo run -p kvs-lint -- check --format sarif --output kvs-lint.sarif
//! $ cargo run -p kvs-lint -- rules            # list rule IDs
//! $ cargo run -p kvs-lint -- waivers          # waivers with hit counts
//! $ cargo run -p kvs-lint -- baseline --update
//! $ cargo run -p kvs-lint -- bench --output target/figures/BENCH_lint.json
//! ```
//!
//! See `docs/LINT.md` for the architecture and the full rule catalogue.

#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod json;
pub mod passes;
pub mod rules;
pub mod sarif;
pub mod scan;
pub mod token;
pub mod tree;
pub mod waiver;

pub use rules::{Diagnostic, RULES};

use scan::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the waiver file, resolved relative to the workspace root.
pub const WAIVER_FILE: &str = "lint.waivers.toml";

/// Result of linting one workspace root.
pub struct Outcome {
    /// Violations that remain after waivers and baseline — non-empty
    /// means fail.
    pub diagnostics: Vec<Diagnostic>,
    /// Violations suppressed by a waiver, with the justification.
    pub waived: Vec<(Diagnostic, String)>,
    /// Violations frozen in `lint.baseline.json`: reported (SARIF level
    /// `warning`) but not failing.
    pub baselined: Vec<Diagnostic>,
    /// Every parsed waiver with the number of diagnostics it suppressed
    /// this run; feeds `kvs-lint waivers`.
    pub waiver_hits: Vec<(waiver::Waiver, usize)>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Wall-clock milliseconds spent in the dataflow-engine passes
    /// (KVS-L017 … KVS-L019); feeds the bench lane's `dataflow_ms`.
    pub dataflow_ms: f64,
}

impl Outcome {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Directory names never descended into. `target` is build output;
/// `fixtures` holds the linter's own deliberately-violating test trees,
/// which must not fail the real workspace.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// How the per-file scan/tokenize phase executes.
///
/// Scanning is embarrassingly parallel — each file's read, line
/// classification and tokenization touches nothing shared — and it
/// dominates wall-clock on large trees, so [`check_workspace`] defaults
/// to [`ScanMode::Parallel`]. Both modes produce byte-identical
/// results: the pool reassembles files in path order before any rule
/// runs, so scheduling can never reorder diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Scan one file at a time on the calling thread.
    Serial,
    /// Scan on a fixed pool of `std::thread::scope` workers (see
    /// [`scan_workers`]), stride-partitioned over the sorted path list.
    Parallel,
}

/// Worker count for [`ScanMode::Parallel`]: the machine's available
/// parallelism, clamped to `[1, 32]`. The upper clamp keeps the pool
/// from oversubscribing file I/O on very wide hosts; the lower one
/// covers `available_parallelism` failing (it errors on some
/// containers).
pub fn scan_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, 32)
}

/// Reads and scans `paths` under `mode`. Worker `k` of `n` handles
/// indices `k, k+n, k+2n, …` and reports `(index, file)` pairs; the
/// parent reassembles them by index, so output order is the sorted path
/// order regardless of thread scheduling.
fn scan_files(root: &Path, paths: &[PathBuf], mode: ScanMode) -> io::Result<Vec<SourceFile>> {
    let workers = match mode {
        ScanMode::Serial => 1,
        ScanMode::Parallel => scan_workers(),
    };
    if workers <= 1 || paths.len() <= 1 {
        let mut files = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(path)?;
            files.push(SourceFile::scan(&rel_of(root, path), &text));
        }
        return Ok(files);
    }
    let results: Vec<io::Result<Vec<(usize, SourceFile)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|k| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for ix in (k..paths.len()).step_by(workers) {
                        let text = fs::read_to_string(&paths[ix])?;
                        out.push((ix, SourceFile::scan(&rel_of(root, &paths[ix]), &text)));
                    }
                    Ok(out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(io::Error::other("scan worker panicked")),
            })
            .collect()
    });
    let mut slots: Vec<Option<SourceFile>> = Vec::new();
    slots.resize_with(paths.len(), || None);
    for r in results {
        for (ix, file) in r? {
            slots[ix] = Some(file);
        }
    }
    // Every index is visited by exactly one worker, so every slot is
    // filled once all workers have returned Ok.
    Ok(slots.into_iter().flatten().collect())
}

/// Lints the workspace rooted at `root` (the directory holding `crates/`,
/// `shims/`, `docs/` and optionally [`WAIVER_FILE`]), scanning files on
/// the parallel worker pool. Use [`check_workspace_with`] to pin the
/// scan mode (the bench subcommand times both).
pub fn check_workspace(root: &Path) -> io::Result<Outcome> {
    check_workspace_with(root, ScanMode::Parallel)
}

/// Scans the workspace rooted at `root` into a [`rules::Workspace`]
/// under `mode`, without running any rules. Exposed so the dataflow
/// engine's property suite can build summaries from serially- and
/// parallelly-scanned workspaces and assert they are identical.
pub fn scan_workspace(root: &Path, mode: ScanMode) -> io::Result<rules::Workspace> {
    let mut paths = Vec::new();
    for top in ["crates", "shims"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_rs(&dir, &mut paths)?;
        }
    }
    let files = scan_files(root, &paths, mode)?;

    let load_md = |name: &str| -> io::Result<Option<(String, Vec<String>)>> {
        let path = root.join("docs").join(name);
        if !path.is_file() {
            return Ok(None);
        }
        let text = fs::read_to_string(&path)?;
        Ok(Some((
            format!("docs/{name}"),
            text.lines().map(str::to_string).collect(),
        )))
    };
    let net_md = load_md("NET.md")?;
    let store_md = load_md("STORE.md")?;

    Ok(rules::Workspace {
        files,
        net_md,
        store_md,
    })
}

/// [`check_workspace`] with an explicit [`ScanMode`].
pub fn check_workspace_with(root: &Path, mode: ScanMode) -> io::Result<Outcome> {
    let ws = scan_workspace(root, mode)?;
    let files_scanned = ws.files.len();
    let (raw, dataflow_ms) = rules::run_all_timed(&ws);

    let config_error = |line: usize, message: String, raw: Vec<Diagnostic>| -> Outcome {
        let mut diagnostics = raw;
        diagnostics.push(Diagnostic {
            rule: "KVS-L000",
            path: WAIVER_FILE.to_string(),
            line,
            message,
        });
        diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        Outcome {
            diagnostics,
            waived: Vec::new(),
            baselined: Vec::new(),
            waiver_hits: Vec::new(),
            files_scanned,
            dataflow_ms,
        }
    };

    let waiver_path = root.join(WAIVER_FILE);
    let waivers = if waiver_path.is_file() {
        match waiver::parse(&fs::read_to_string(&waiver_path)?) {
            Ok(ws) => ws,
            Err((line, msg)) => {
                return Ok(config_error(
                    line,
                    format!("waiver file rejected: {msg}"),
                    raw,
                ));
            }
        }
    } else {
        Vec::new()
    };

    let baseline_path = root.join(baseline::BASELINE_FILE);
    let baseline_entries = if baseline_path.is_file() {
        match baseline::parse(&fs::read_to_string(&baseline_path)?) {
            Ok(es) => es,
            Err(msg) => {
                let mut diagnostics = raw;
                diagnostics.push(Diagnostic {
                    rule: "KVS-L000",
                    path: baseline::BASELINE_FILE.to_string(),
                    line: 1,
                    message: format!("baseline file rejected: {msg}"),
                });
                diagnostics.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
                return Ok(Outcome {
                    diagnostics,
                    waived: Vec::new(),
                    baselined: Vec::new(),
                    waiver_hits: Vec::new(),
                    files_scanned,
                    dataflow_ms,
                });
            }
        }
    } else {
        Vec::new()
    };

    let raw_line = |path: &str, line: usize| -> Option<String> {
        if let Some(f) = ws.files.iter().find(|f| f.rel == path) {
            return f.lines.get(line.checked_sub(1)?).map(|l| l.raw.clone());
        }
        for md in [&ws.net_md, &ws.store_md].into_iter().flatten() {
            if md.0 == path {
                return md.1.get(line.checked_sub(1)?).cloned();
            }
        }
        None
    };
    let applied = waiver::apply(raw, &waivers, WAIVER_FILE, raw_line);
    // Waived findings are passed through so a baseline entry that is
    // also covered by a waiver reads as *used*, not stale (the site is
    // still in the tree; the waiver merely outranks the ratchet).
    let waived_findings: Vec<Diagnostic> = applied.waived.iter().map(|(d, _)| d.clone()).collect();
    let (mut diagnostics, mut baselined) = baseline::apply(
        applied.failing,
        &waived_findings,
        &baseline_entries,
        baseline::BASELINE_FILE,
        raw_line,
    );
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    baselined.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(Outcome {
        diagnostics,
        waived: applied.waived,
        baselined,
        waiver_hits: waivers.into_iter().zip(applied.hits).collect(),
        files_scanned,
        dataflow_ms,
    })
}
