//! Per-function control-flow graphs: statement-ordered, branch-aware.
//!
//! One node per statement, lowered from the token trees: `if`/`else`
//! chains and `match` arms fork and re-join, loops edge back to their
//! header, and `return`/`break`/`continue`/`?` cut or redirect the
//! fall-through. The nodes carry word-separated statement text; two
//! kinds of consumer sit on top: pure graph-reachability queries ("can
//! GC run before the commit?", "is every path to the rename fsynced?"
//! — KVS-L015) and, since the dataflow layer ([`crate::dataflow`]), a
//! gen/kill worklist engine that runs taint and must-reach analyses
//! over these same blocks (KVS-L017 … KVS-L019).
//!
//! Precision boundary, documented so nobody re-learns it: a branch
//! *inside* an expression statement (`let x = if c { a } else { b };`)
//! is flattened into one node — its operations appear unconditionally
//! ordered at that statement. Only statement-position `if`/`match`/loops
//! fork the graph. Nested `fn` items are skipped (they are separate
//! functions); closure bodies are flattened into their statement.

use crate::token::{Tok, TokKind};
use crate::tree::{Delim, Group, Tree};

/// One statement node.
#[derive(Debug)]
pub struct Stmt {
    /// 1-based source line of the statement's first token.
    pub line: usize,
    /// Statement text with a single space separating adjacent word
    /// tokens (so identifier boundaries survive flattening — the
    /// dataflow layer parses variables out of this), e.g.
    /// `let mut buf=Vec::with_capacity(header_len+len)`.
    pub text: String,
}

/// The graph. Node `0` is a synthetic entry; [`Cfg::exit`] is a
/// synthetic exit reached by fall-through off the body, `return` and `?`.
#[derive(Debug)]
pub struct Cfg {
    /// Statement nodes; `stmts[0]` is the synthetic entry (empty text).
    pub stmts: Vec<Stmt>,
    /// `succ[i]` = successor node ids (may include [`Cfg::exit`]).
    pub succ: Vec<Vec<usize>>,
    /// The synthetic exit id (`== stmts.len()`).
    pub exit: usize,
}

struct Builder<'a> {
    src: &'a str,
    toks: &'a [Tok],
    stmts: Vec<Stmt>,
    succ: Vec<Vec<usize>>,
}

struct LoopCtx {
    header: usize,
    breaks: Vec<usize>,
}

/// Builds the CFG for one function body.
pub fn build(src: &str, toks: &[Tok], body: &Group) -> Cfg {
    let entry_line = toks[body.open].line;
    let mut b = Builder {
        src,
        toks,
        stmts: vec![Stmt {
            line: entry_line,
            text: String::new(),
        }],
        succ: vec![Vec::new()],
    };
    let mut loops = Vec::new();
    let outs = b.lower_block(&body.children, vec![0], &mut loops);
    let exit = b.stmts.len();
    for o in outs {
        b.succ[o].push(exit);
    }
    // `?` and `return` edges to the exit were recorded as usize::MAX.
    for succs in &mut b.succ {
        for s in succs.iter_mut() {
            if *s == usize::MAX {
                *s = exit;
            }
        }
        succs.sort_unstable();
        succs.dedup();
    }
    Cfg {
        stmts: b.stmts,
        succ: b.succ,
        exit,
    }
}

impl<'a> Builder<'a> {
    fn leaf(&self, t: &Tree) -> Option<&'a str> {
        match t {
            Tree::Leaf(ix) => Some(self.toks[*ix].text(self.src)),
            Tree::Group(_) => None,
        }
    }

    fn is_punct(&self, t: &Tree, ch: &str) -> bool {
        matches!(t, Tree::Leaf(ix)
            if self.toks[*ix].kind == TokKind::Punct && self.toks[*ix].text(self.src) == ch)
    }

    fn line_of(&self, t: &Tree) -> usize {
        match t {
            Tree::Leaf(ix) => self.toks[*ix].line,
            Tree::Group(g) => self.toks[g.open].line,
        }
    }

    fn node(&mut self, line: usize, text: String, preds: &[usize]) -> usize {
        let id = self.stmts.len();
        self.stmts.push(Stmt { line, text });
        self.succ.push(Vec::new());
        for &p in preds {
            self.succ[p].push(id);
        }
        id
    }

    fn text_of(&self, trees: &[Tree]) -> String {
        let mut s = String::new();
        spaced_text(self.src, self.toks, trees, &mut s);
        s
    }

    /// Lowers a block's children; returns the fall-through predecessor
    /// set flowing out of the block.
    fn lower_block(
        &mut self,
        children: &[Tree],
        mut preds: Vec<usize>,
        loops: &mut Vec<LoopCtx>,
    ) -> Vec<usize> {
        let mut start = 0;
        for i in 0..=children.len() {
            let boundary = i == children.len() || self.is_punct(&children[i], ";");
            if !boundary {
                continue;
            }
            let stmt = &children[start..i];
            start = i + 1;
            if stmt.is_empty() {
                continue;
            }
            preds = self.lower_stmt(stmt, preds, loops);
        }
        preds
    }

    /// Lowers one statement slice; returns its fall-through set.
    fn lower_stmt(
        &mut self,
        stmt: &[Tree],
        preds: Vec<usize>,
        loops: &mut Vec<LoopCtx>,
    ) -> Vec<usize> {
        let head = self.leaf(&stmt[0]).unwrap_or("");
        let line = self.line_of(&stmt[0]);
        match head {
            "fn" => preds, // nested fn: its own function, not a statement
            "if" => {
                let (outs, used) = self.lower_if(stmt, preds, loops);
                self.lower_tail(stmt, used, outs, loops)
            }
            "match" => {
                let (outs, used) = self.lower_match(stmt, preds, loops);
                self.lower_tail(stmt, used, outs, loops)
            }
            "while" | "for" | "loop" => {
                let (outs, used) = self.lower_loop(stmt, head, preds, loops);
                self.lower_tail(stmt, used, outs, loops)
            }
            "return" => {
                let n = self.node(line, self.text_of(stmt), &preds);
                self.succ[n].push(usize::MAX); // → exit
                Vec::new()
            }
            "break" => {
                let n = self.node(line, self.text_of(stmt), &preds);
                if let Some(ctx) = loops.last_mut() {
                    ctx.breaks.push(n);
                } else {
                    self.succ[n].push(usize::MAX);
                }
                Vec::new()
            }
            "continue" => {
                let n = self.node(line, self.text_of(stmt), &preds);
                if let Some(ctx) = loops.last() {
                    let header = ctx.header;
                    self.succ[n].push(header);
                } else {
                    self.succ[n].push(usize::MAX);
                }
                Vec::new()
            }
            _ => {
                // A bare (or `unsafe`-prefixed) brace block heading the
                // statement is a nested scope, not an opaque expression:
                // lower it so orderings inside stay visible to the path
                // queries (e.g. `{ write; fsync; } rename;`).
                let block_ix = match &stmt[0] {
                    Tree::Group(g) if g.delim == Delim::Brace => Some(0),
                    _ if head == "unsafe" => match stmt.get(1) {
                        Some(Tree::Group(g)) if g.delim == Delim::Brace => Some(1),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(ix) = block_ix {
                    let Tree::Group(g) = &stmt[ix] else {
                        unreachable!("checked above");
                    };
                    let outs = self.lower_block(&g.children, preds, loops);
                    return self.lower_tail(stmt, ix + 1, outs, loops);
                }
                // Plain statement (branches inside it are flattened).
                let text = self.text_of(stmt);
                let n = self.node(line, text, &preds);
                if self.has_top_level_question(stmt) {
                    self.succ[n].push(usize::MAX); // early return on Err
                }
                vec![n]
            }
        }
    }

    /// True when the statement carries a top-level `?` (early return).
    fn has_top_level_question(&self, stmt: &[Tree]) -> bool {
        stmt.iter().any(|t| self.is_punct(t, "?"))
    }

    /// Lowers the tokens past a block-headed construct (`if c { } tail`)
    /// as a follow-on statement.
    fn lower_tail(
        &mut self,
        stmt: &[Tree],
        used: usize,
        outs: Vec<usize>,
        loops: &mut Vec<LoopCtx>,
    ) -> Vec<usize> {
        if used >= stmt.len() || outs.is_empty() {
            return outs;
        }
        self.lower_stmt(&stmt[used..], outs, loops)
    }

    /// `if cond { … } else if … { … } else { … }` at statement position.
    /// Returns `(fall-through set, siblings consumed)`.
    fn lower_if(
        &mut self,
        stmt: &[Tree],
        preds: Vec<usize>,
        loops: &mut Vec<LoopCtx>,
    ) -> (Vec<usize>, usize) {
        let mut outs: Vec<usize> = Vec::new();
        let mut i = 0;
        let mut cur_preds = preds;
        loop {
            // `if <cond tokens> { then }`
            let cond_start = i + 1; // past `if`
            let mut j = cond_start;
            while j < stmt.len() && !matches!(&stmt[j], Tree::Group(g) if g.delim == Delim::Brace) {
                j += 1;
            }
            let cond_text = format!("if {}", self.text_of(&stmt[cond_start..j.min(stmt.len())]));
            let line = self.line_of(&stmt[i]);
            let cond = self.node(line, cond_text, &cur_preds);
            if self.has_top_level_question(&stmt[cond_start..j.min(stmt.len())]) {
                self.succ[cond].push(usize::MAX);
            }
            let Some(Tree::Group(then_g)) = stmt.get(j) else {
                // Malformed (unterminated); treat the cond as fall-through.
                return (vec![cond], stmt.len());
            };
            let then_outs = self.lower_block(&then_g.children, vec![cond], loops);
            outs.extend(then_outs);
            // `else` / `else if` / end.
            match stmt.get(j + 1).and_then(|t| self.leaf(t)) {
                Some("else") => match stmt.get(j + 2) {
                    Some(Tree::Group(else_g)) if else_g.delim == Delim::Brace => {
                        let else_outs = self.lower_block(&else_g.children, vec![cond], loops);
                        outs.extend(else_outs);
                        return (outs, j + 3);
                    }
                    Some(t) if self.leaf(t) == Some("if") => {
                        cur_preds = vec![cond];
                        i = j + 2;
                        continue;
                    }
                    _ => {
                        outs.push(cond);
                        return (outs, j + 2);
                    }
                },
                _ => {
                    // No else: the condition can fall through.
                    outs.push(cond);
                    return (outs, j + 1);
                }
            }
        }
    }

    /// `match scrutinee { arm => body, … }` at statement position.
    /// Returns `(fall-through set, siblings consumed)`.
    fn lower_match(
        &mut self,
        stmt: &[Tree],
        preds: Vec<usize>,
        loops: &mut Vec<LoopCtx>,
    ) -> (Vec<usize>, usize) {
        let mut j = 1;
        while j < stmt.len() && !matches!(&stmt[j], Tree::Group(g) if g.delim == Delim::Brace) {
            j += 1;
        }
        let scrut_text = format!("match {}", self.text_of(&stmt[1..j.min(stmt.len())]));
        let line = self.line_of(&stmt[0]);
        let scrut = self.node(line, scrut_text, &preds);
        let Some(Tree::Group(body)) = stmt.get(j) else {
            return (vec![scrut], stmt.len());
        };
        let mut outs = Vec::new();
        let ch = &body.children;
        let mut i = 0;
        while i < ch.len() {
            // Pattern tokens up to `=>`.
            let mut arrow = None;
            while i < ch.len() {
                if self.is_punct(&ch[i], "=")
                    && ch.get(i + 1).is_some_and(|t| self.is_punct(t, ">"))
                {
                    arrow = Some(i);
                    break;
                }
                i += 1;
            }
            let Some(arrow) = arrow else {
                break;
            };
            i = arrow + 2;
            // Arm body: a block, or an expression up to `,`.
            if let Some(Tree::Group(g)) = ch.get(i) {
                if g.delim == Delim::Brace {
                    outs.extend(self.lower_block(&g.children, vec![scrut], loops));
                    i += 1;
                    if ch.get(i).is_some_and(|t| self.is_punct(t, ",")) {
                        i += 1;
                    }
                    continue;
                }
            }
            let expr_start = i;
            while i < ch.len() && !self.is_punct(&ch[i], ",") {
                i += 1;
            }
            let expr = &ch[expr_start..i];
            i += 1;
            if !expr.is_empty() {
                outs.extend(self.lower_stmt(expr, vec![scrut], loops));
            } else {
                outs.push(scrut);
            }
        }
        if outs.is_empty() {
            outs.push(scrut); // empty or unparsed match body
        }
        (outs, j + 1)
    }

    /// `while`/`for`/`loop` at statement position.
    /// Returns `(fall-through set, siblings consumed)`.
    fn lower_loop(
        &mut self,
        stmt: &[Tree],
        head: &str,
        preds: Vec<usize>,
        loops: &mut Vec<LoopCtx>,
    ) -> (Vec<usize>, usize) {
        let mut j = 0;
        while j < stmt.len() && !matches!(&stmt[j], Tree::Group(g) if g.delim == Delim::Brace) {
            j += 1;
        }
        let header_text = self.text_of(&stmt[..j.min(stmt.len())]);
        let line = self.line_of(&stmt[0]);
        let header = self.node(line, header_text, &preds);
        if self.has_top_level_question(&stmt[..j.min(stmt.len())]) {
            self.succ[header].push(usize::MAX);
        }
        let Some(Tree::Group(body)) = stmt.get(j) else {
            return (vec![header], stmt.len());
        };
        loops.push(LoopCtx {
            header,
            breaks: Vec::new(),
        });
        let body_outs = self.lower_block(&body.children, vec![header], loops);
        let ctx = loops.pop().expect("pushed above");
        for o in body_outs {
            self.succ[o].push(header);
        }
        let mut outs = ctx.breaks;
        // `loop` without a break never falls through; `while`/`for` exit
        // at the header when the condition fails / iterator ends.
        if head != "loop" {
            outs.push(header);
        }
        (outs, j + 1)
    }
}

/// Renders a tree slice with a single space between adjacent word
/// tokens (`let mut x` rather than `letmutx`), leaving punctuation
/// glued (`wall_ns(`, `receipt.disk_blocks_read+=1`). Rule patterns
/// that anchor on punctuation (`rename(`, `.commit(`) are unaffected;
/// the dataflow layer needs the word boundaries to extract variables.
fn spaced_text(src: &str, toks: &[Tok], trees: &[Tree], s: &mut String) {
    let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let push = |s: &mut String, txt: &str| {
        if s.chars().next_back().is_some_and(is_word) && txt.chars().next().is_some_and(is_word) {
            s.push(' ');
        }
        s.push_str(txt);
    };
    for t in trees {
        match t {
            Tree::Leaf(ix) => push(s, toks[*ix].text(src)),
            Tree::Group(g) => {
                let (open, close) = match g.delim {
                    Delim::Paren => ("(", ")"),
                    Delim::Bracket => ("[", "]"),
                    Delim::Brace => ("{", "}"),
                };
                push(s, open);
                spaced_text(src, toks, &g.children, s);
                push(s, close);
            }
        }
    }
}

impl Cfg {
    /// Node ids (excluding entry) whose text satisfies `pred`.
    pub fn find(&self, pred: impl Fn(&str) -> bool) -> Vec<usize> {
        (1..self.stmts.len())
            .filter(|&i| pred(&self.stmts[i].text))
            .collect()
    }

    /// A path `entry → … → target` that avoids every node satisfying
    /// `via` (the target itself is not tested). `Some(path)` is the
    /// witness that `via` does **not** always precede `target`; `None`
    /// means every path to `target` passes a `via` node first.
    pub fn path_avoiding(&self, target: usize, via: impl Fn(usize) -> bool) -> Option<Vec<usize>> {
        self.dfs(0, target, |n| n < self.stmts.len() && n != target && via(n))
    }

    /// A path `from → … → exit` avoiding every `via` node (`from` itself
    /// is not tested): the witness that `via` does **not** always follow
    /// `from` before the function returns.
    pub fn path_to_exit_avoiding(
        &self,
        from: usize,
        via: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        self.dfs(from, self.exit, |n| {
            n < self.stmts.len() && n != from && via(n)
        })
    }

    /// True when `to` is reachable from `from` (along any path).
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        self.dfs(from, to, |_| false).is_some()
    }

    fn dfs(
        &self,
        start: usize,
        target: usize,
        blocked: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        if blocked(start) {
            return None;
        }
        let mut stack = vec![(start, 0usize)];
        let mut seen = vec![false; self.stmts.len() + 1];
        seen[start] = true;
        while let Some(&(n, ei)) = stack.last() {
            if n == target {
                return Some(stack.iter().map(|&(n, _)| n).collect());
            }
            let succs: &[usize] = if n == self.exit { &[] } else { &self.succ[n] };
            if ei < succs.len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let next = succs[ei];
                if !seen[next] && !blocked(next) {
                    seen[next] = true;
                    stack.push((next, 0));
                }
            } else {
                stack.pop();
            }
        }
        None
    }

    /// Renders a node path as `file:line → file:line` (consecutive
    /// duplicate lines collapsed, the synthetic entry skipped).
    pub fn witness(&self, file: &str, path: &[usize]) -> String {
        let mut hops: Vec<String> = Vec::new();
        for &n in path {
            if n == 0 || n >= self.stmts.len() {
                continue; // entry / exit
            }
            let hop = format!("{}:{}", file, self.stmts[n].line);
            if hops.last() != Some(&hop) {
                hops.push(hop);
            }
        }
        hops.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;
    use crate::tree::{build as build_trees, Tree};

    fn cfg_of(body_src: &str) -> (Cfg, String) {
        let src = format!("fn f() {body_src}");
        let toks = tokenize(&src);
        let trees = build_trees(&src, &toks);
        let body = trees
            .iter()
            .find_map(|t| match t {
                Tree::Group(g) if g.delim == Delim::Brace => Some(g),
                _ => None,
            })
            .expect("body");
        (build(&src, &toks, body), src)
    }

    fn only(cfg: &Cfg, needle: &str) -> usize {
        let found = cfg.find(|t| t.contains(needle));
        assert_eq!(found.len(), 1, "`{needle}`: {found:?}");
        found[0]
    }

    #[test]
    fn straight_line_order_holds() {
        let (cfg, _) = cfg_of("{ write(); sync(); rename(); }");
        let rename = only(&cfg, "rename(");
        assert!(cfg
            .path_avoiding(rename, |n| cfg.stmts[n].text.contains("sync("))
            .is_none());
        let sync = only(&cfg, "sync(");
        assert!(cfg
            .path_avoiding(sync, |n| cfg.stmts[n].text.contains("rename("))
            .is_some());
    }

    #[test]
    fn branches_create_a_bypass() {
        let (cfg, _) = cfg_of("{ if fast { } else { sync(); } rename(); }");
        let rename = only(&cfg, "rename(");
        let path = cfg
            .path_avoiding(rename, |n| cfg.stmts[n].text.contains("sync("))
            .expect("the then-branch skips the sync");
        assert!(path.contains(&rename));
    }

    #[test]
    fn early_return_cuts_fall_through() {
        let (cfg, _) = cfg_of("{ if bad { return Err(e); } commit(); }");
        let commit = only(&cfg, "commit(");
        // The return path does not reach commit; the fall-through does.
        assert!(cfg.reaches(0, commit));
        let ret = only(&cfg, "return");
        assert!(!cfg.reaches(ret, commit));
    }

    #[test]
    fn loops_edge_back_and_breaks_exit() {
        let (cfg, _) = cfg_of("{ for x in xs { gc(x); } commit(); }");
        let gc = only(&cfg, "gc(");
        let commit = only(&cfg, "commit(");
        assert!(cfg.reaches(gc, commit), "loop exits through the header");
        // And the reverse: commit after the loop cannot reach back to gc.
        assert!(!cfg.reaches(commit, gc));
    }

    #[test]
    fn question_mark_edges_to_exit() {
        let (cfg, _) = cfg_of("{ let x = fallible()?; commit(); }");
        let fallible = only(&cfg, "fallible(");
        assert!(cfg
            .path_to_exit_avoiding(fallible, |n| cfg.stmts[n].text.contains("commit("))
            .is_some());
    }

    #[test]
    fn match_arms_fork_and_rejoin() {
        let (cfg, _) = cfg_of("{ match mode { M::A => { sync(); } M::B => other(), } rename(); }");
        let rename = only(&cfg, "rename(");
        let path = cfg
            .path_avoiding(rename, |n| cfg.stmts[n].text.contains("sync("))
            .expect("arm B bypasses the sync");
        assert!(path.iter().any(|&n| cfg.stmts[n].text.contains("other(")));
    }

    #[test]
    fn witness_renders_lines() {
        let (cfg, _) = cfg_of("{ a();\n b();\n c(); }");
        let c = only(&cfg, "c(");
        let path = cfg.path_avoiding(c, |_| false).expect("reachable");
        let w = cfg.witness("x.rs", &path);
        assert!(w.contains(" → "), "{w}");
        assert!(w.ends_with(&format!("x.rs:{}", cfg.stmts[c].line)), "{w}");
    }
}
