//! Semantic passes over token trees: KVS-L009 … KVS-L012, the
//! interprocedural rules KVS-L014 … KVS-L016, and the dataflow-engine
//! rules KVS-L017 … KVS-L019 (see [`crate::dataflow`]).
//!
//! These are whole-program checks in the spirit of lightweight model
//! checking — not a runtime explorer, but build-time extraction of the
//! concurrency and dataflow structure the paper's methodology leans on:
//!
//! * **KVS-L009** collects every `Mutex`/`RwLock` acquisition in
//!   `net`/`cluster`, builds the acquired-while-held edge set per function
//!   (with call-edge propagation one level deep over the real call graph)
//!   and fails on any cycle — a deadlock candidate — with the full
//!   witness path. The same propagation feeds the interprocedural half of
//!   **KVS-L007**: a call made while a guard is held must not transitively
//!   reach a blocking op.
//! * **KVS-L010** pairs channel/queue endpoints by construction site,
//!   flags unbounded channels (waivable for the documented response
//!   paths) and sends without a matching drain.
//! * **KVS-L011** checks the stage-stamp dataflow on the request paths in
//!   `server.rs`/`master.rs`: every `stamps[0..4]` slot is written exactly
//!   once, at frame construction, per the frame-kind contract — the class
//!   of bug where a refactor drops the in-db timing and the model fit
//!   silently degrades.
//! * **KVS-L012** requires every `match` on the frame kind in
//!   `master.rs`/`server.rs`/`chaos.rs` to handle all kinds declared in
//!   `frame.rs`, or to carry an explicitly waived wildcard.
//! * **KVS-L014** walks the workspace call graph ([`crate::callgraph`])
//!   from every function anchored `// LINT-ZONE: nonblocking` and fails
//!   if any blocking op (lock/condvar wait, blocking socket or file I/O,
//!   fsync, `thread::sleep`, blocking channel recv, `join`) is
//!   transitively reachable, with the witness chain `file:line → …`.
//! * **KVS-L015** checks the durable commit paths in
//!   `store/src/{manifest,durable,wal}.rs` against the docs/STORE.md
//!   ordering contract — write → fsync → rename → dir-fsync — as CFG
//!   statement order ([`crate::cfg`]), with one level of call
//!   propagation (a call to a function that fsyncs, e.g. `write_sst`,
//!   counts as a sync step), and that SSTable GC can never run before
//!   the manifest commit that unreferences the files it deletes.
//! * **KVS-L016** extends L011 across function boundaries: every v2
//!   `Frame` literal on the request paths must thread an incoming
//!   deadline (value mentions `deadline`, or is a wall-clock portal
//!   expression with an explicit budget). When the value is a parameter,
//!   every call site is checked instead — passing a literal `0` or
//!   `u64::MAX` mints a fresh no-deadline frame and breaks expiry
//!   propagation.
//! * **KVS-L017** runs the [`crate::dataflow`] taint engine over the
//!   wire-decode files (`frame.rs`, `server.rs`, `master.rs`,
//!   `chaos.rs`): any value derived from `from_be_bytes`/`from_le_bytes`
//!   is untrusted and must pass a validated bound (a comparison against
//!   an ALL-CAPS constant or `.min(…)`/`.clamp(…)`) before reaching an
//!   allocation, slice index or loop bound. Interprocedural via the
//!   bottom-up summaries; the finding carries the full
//!   `file:line → file:line` flow.
//! * **KVS-L018** extends KVS-L001 from a call-site ban to value flow:
//!   a wall-clock/RNG-derived value (including the sanctioned
//!   `wall_ns()` portal and tainted returns of helpers that read it)
//!   must not flow through arguments or returns into the L001
//!   deterministic zones. `crates/bench/` callers are exempt — the
//!   bench lane feeds *measured* timings to the model as data.
//! * **KVS-L019** must-reach receipt accounting on the durable read
//!   paths (`durable.rs`, `sst_file.rs`): in any function with a
//!   `ReadReceipt` in scope, every CFG path that performs a disk block
//!   read (`read_exact`/`read_exact_at`) must charge the receipt before
//!   returning. The read's own `?` error edge is exempt (a failed read
//!   moved no bytes); calls to same-file helpers that charge count as
//!   charges.
//!
//! Heuristic boundaries (documented so nobody re-learns them): lock
//! identity is the receiver's trailing field/binding name, crate-
//! qualified (`net:conn`); two different mutexes sharing a field name in
//! one crate alias. Guards are tracked for `let g = ….lock();` bindings
//! and same-statement nesting; statement temporaries
//! (`table.lock().get(…)`) release before the next statement and create
//! no held state. Closures passed to `spawn` run on another thread and
//! are analyzed as separate synthetic functions. Reachability (L007's
//! interprocedural half and L014's zone traversal) follows only
//! `Free`/`SelfMethod`/`Path` call edges — may-call method edges alias
//! bare names like `get` across the whole workspace and would drown
//! every query in false paths. A direct blocking method call
//! (`rx.recv()`, `stream.write_all(…)`) in any *reached* function still
//! surfaces, because each node's recorded ops carry method names too.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{self, CallGraph, EdgeKind};
use crate::cfg;
use crate::dataflow;
use crate::rules::{Diagnostic, Workspace};
use crate::scan::SourceFile;
use crate::token::{Tok, TokKind};
use crate::tree::{self, Delim, Group, Tree};

/// Runs all semantic passes. Returns the wall-clock milliseconds spent
/// in the dataflow-engine passes (KVS-L017 … KVS-L019, including
/// summary construction) — the bench lane's `dataflow_ms`.
pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) -> f64 {
    let cg = callgraph::build(ws);
    lock_order(ws, &cg, out);
    channel_topology(ws, out);
    stamp_dataflow(ws, out);
    kind_exhaustiveness(ws, out);
    blocking_reachability(&cg, out);
    crash_ordering(ws, &cg, out);
    deadline_propagation(ws, &cg, out);
    let t0 = std::time::Instant::now();
    wire_taint(ws, &cg, out);
    determinism_escape(ws, &cg, out);
    receipt_accounting(ws, &cg, out);
    t0.elapsed().as_secs_f64() * 1e3
}

/// Call names that block the calling thread: condvar and channel waits,
/// blocking socket/file I/O, fsync, `thread::sleep`. `join` is excluded
/// (it would alias ubiquitous slice `join`); `send`/`push` are L010's
/// concern — bounded-vs-unbounded is a construction-site property this
/// name set cannot see.
const BLOCKING_OPS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
    "write_all",
    "read_exact",
    "write_to",
    "read_from",
    "accept",
    "connect",
    "sleep",
    "sync_all",
    "sync_data",
];

/// Additionally blocking from inside a declared non-blocking zone: lock
/// acquisition itself waits on the owner.
const ZONE_EXTRA_BLOCKING: &[&str] = &["lock"];

fn in_net_or_cluster_src(rel: &str) -> bool {
    rel.starts_with("crates/net/src/") || rel.starts_with("crates/cluster/src/")
}

fn crate_key(rel: &str) -> &str {
    if rel.starts_with("crates/net/") {
        "net"
    } else if rel.starts_with("crates/cluster/") {
        "cluster"
    } else {
        "other"
    }
}

fn leaf_text<'a>(src: &'a str, toks: &[Tok], t: &Tree) -> Option<&'a str> {
    match t {
        Tree::Leaf(ix) => Some(toks[*ix].text(src)),
        Tree::Group(_) => None,
    }
}

fn leaf_line(toks: &[Tok], t: &Tree) -> usize {
    match t {
        Tree::Leaf(ix) => toks[*ix].line,
        Tree::Group(g) => toks[g.open].line,
    }
}

fn is_punct(src: &str, toks: &[Tok], t: &Tree, ch: &str) -> bool {
    matches!(t, Tree::Leaf(ix) if toks[*ix].kind == TokKind::Punct && toks[*ix].text(src) == ch)
}

fn is_ident(_src: &str, toks: &[Tok], t: &Tree) -> bool {
    matches!(t, Tree::Leaf(ix) if toks[*ix].kind == TokKind::Ident)
}

// ---------------------------------------------------------------------------
// KVS-L009: lock-order graph.
// ---------------------------------------------------------------------------

/// Zero-argument methods that acquire a lock.
const ACQ_METHODS: &[&str] = &["lock", "read", "write"];

/// Keywords that look like `ident(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "move", "in", "as", "ref", "mut", "unsafe", "await", "drop",
];

#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    to: String,
    file: String,
    line: usize,
    note: String,
}

/// A call made while at least one guard was held: resolved against the
/// same-crate function index for one level of propagation.
struct HeldCall {
    held: Vec<String>,
    callee: String,
    file: String,
    line: usize,
}

#[derive(Default)]
struct FnFacts {
    /// Crate-qualified identities of every lock this function acquires.
    acquired: Vec<String>,
}

struct LockCollector<'a> {
    src: &'a str,
    toks: &'a [Tok],
    f: &'a SourceFile,
    edges: Vec<LockEdge>,
    calls: Vec<HeldCall>,
    facts: FnFacts,
    /// `spawn(…)` argument groups queued for isolated analysis.
    spawned: Vec<&'a Group>,
}

impl<'a> LockCollector<'a> {
    /// Walks one block: statements split on `;` (and `,` in match
    /// bodies). Guards bound here go out of scope when the block ends.
    fn walk_block(&mut self, children: &'a [Tree], held: &mut Vec<(String, String)>, comma: bool) {
        let entry = held.len();
        let mut start = 0;
        for i in 0..=children.len() {
            let boundary = i == children.len()
                || is_punct(self.src, self.toks, &children[i], ";")
                || (comma && is_punct(self.src, self.toks, &children[i], ","));
            if !boundary {
                continue;
            }
            let stmt = &children[start..i];
            start = i + 1;
            if stmt.is_empty() {
                continue;
            }
            if leaf_text(self.src, self.toks, &stmt[0]) == Some("fn") {
                continue; // nested fn: analyzed as its own function
            }
            let mut stmt_acqs: Vec<String> = Vec::new();
            self.scan_stmt(stmt, held, &mut stmt_acqs);
            self.maybe_bind_guard(stmt, held, &stmt_acqs);
            self.maybe_drop_guard(stmt, held);
        }
        held.truncate(entry);
    }

    /// Scans one statement (recursing through paren/bracket groups and
    /// into nested blocks) for acquisitions and calls-while-held.
    fn scan_stmt(
        &mut self,
        stmt: &'a [Tree],
        held: &mut Vec<(String, String)>,
        stmt_acqs: &mut Vec<String>,
    ) {
        let mut seen_match = false;
        let mut i = 0;
        while i < stmt.len() {
            // Acquisition: `.` + lock/read/write + `()`.
            if is_punct(self.src, self.toks, &stmt[i], ".")
                && i + 2 < stmt.len()
                && leaf_text(self.src, self.toks, &stmt[i + 1])
                    .is_some_and(|t| ACQ_METHODS.contains(&t))
                && matches!(&stmt[i + 2], Tree::Group(g) if g.delim == Delim::Paren && g.children.is_empty())
            {
                if let Some(lock) = self.receiver_identity(stmt, i) {
                    let line = leaf_line(self.toks, &stmt[i + 1]);
                    for (h, _) in held.iter() {
                        self.push_edge(h.clone(), lock.clone(), line, String::new());
                    }
                    for prior in stmt_acqs.iter() {
                        if *prior != lock {
                            self.push_edge(prior.clone(), lock.clone(), line, String::new());
                        }
                    }
                    stmt_acqs.push(lock.clone());
                    self.facts.acquired.push(lock);
                }
                i += 3;
                continue;
            }
            // Call / spawn handling: `ident(…)`.
            if is_ident(self.src, self.toks, &stmt[i])
                && i + 1 < stmt.len()
                && matches!(&stmt[i + 1], Tree::Group(g) if g.delim == Delim::Paren)
            {
                let name = leaf_text(self.src, self.toks, &stmt[i]).unwrap_or("");
                if name == "spawn" {
                    // The closure runs on another thread: no lock held
                    // here is held there. Analyze it in isolation.
                    if let Tree::Group(g) = &stmt[i + 1] {
                        self.spawned.push(g);
                    }
                    i += 2;
                    continue;
                }
                if !held.is_empty() && !NON_CALL_KEYWORDS.contains(&name) {
                    self.calls.push(HeldCall {
                        held: held.iter().map(|(h, _)| h.clone()).collect(),
                        callee: name.to_string(),
                        file: self.f.rel.clone(),
                        line: leaf_line(self.toks, &stmt[i]),
                    });
                }
            }
            match &stmt[i] {
                Tree::Group(g) if g.delim == Delim::Brace => {
                    self.walk_block(&g.children, held, seen_match);
                    seen_match = false;
                }
                Tree::Group(g) => self.scan_stmt(&g.children, held, stmt_acqs),
                Tree::Leaf(_) => {
                    if leaf_text(self.src, self.toks, &stmt[i]) == Some("match") {
                        seen_match = true;
                    }
                }
            }
            i += 1;
        }
    }

    /// Lock identity for the acquisition whose `.` sits at `stmt[dot]`:
    /// the trailing identifier of the receiver chain, crate-qualified.
    fn receiver_identity(&self, stmt: &[Tree], dot: usize) -> Option<String> {
        let mut j = dot;
        while j > 0 {
            let prev = &stmt[j - 1];
            if let Some(t) = leaf_text(self.src, self.toks, prev) {
                if matches!(prev, Tree::Leaf(ix) if self.toks[*ix].kind == TokKind::Ident)
                    && t != "self"
                {
                    return Some(format!("{}:{}", crate_key(&self.f.rel), t));
                }
                if t == "." || t == "self" || t == "*" || t == "&" {
                    j -= 1;
                    continue;
                }
            }
            break;
        }
        None
    }

    /// Binds `let [mut] NAME = ….lock();` as a held guard for the rest of
    /// the enclosing block.
    fn maybe_bind_guard(
        &mut self,
        stmt: &'a [Tree],
        held: &mut Vec<(String, String)>,
        stmt_acqs: &[String],
    ) {
        if stmt_acqs.is_empty() || leaf_text(self.src, self.toks, &stmt[0]) != Some("let") {
            return;
        }
        let n = stmt.len();
        let ends_with_acq = n >= 3
            && matches!(&stmt[n - 1], Tree::Group(g) if g.delim == Delim::Paren && g.children.is_empty())
            && leaf_text(self.src, self.toks, &stmt[n - 2])
                .is_some_and(|t| ACQ_METHODS.contains(&t))
            && is_punct(self.src, self.toks, &stmt[n - 3], ".");
        if !ends_with_acq {
            return;
        }
        let mut k = 1;
        if leaf_text(self.src, self.toks, &stmt[k]) == Some("mut") {
            k += 1;
        }
        if let Some(name) = leaf_text(self.src, self.toks, &stmt[k]) {
            if is_ident(self.src, self.toks, &stmt[k]) {
                let lock = stmt_acqs.last().expect("checked non-empty").clone();
                held.push((lock, name.to_string()));
            }
        }
    }

    /// `drop(NAME);` releases a held guard early.
    fn maybe_drop_guard(&mut self, stmt: &'a [Tree], held: &mut Vec<(String, String)>) {
        if stmt.len() == 2 && leaf_text(self.src, self.toks, &stmt[0]) == Some("drop") {
            if let Tree::Group(g) = &stmt[1] {
                if g.delim == Delim::Paren && g.children.len() == 1 {
                    if let Some(name) = leaf_text(self.src, self.toks, &g.children[0]) {
                        held.retain(|(_, g)| g != name);
                    }
                }
            }
        }
    }

    fn push_edge(&mut self, from: String, to: String, line: usize, note: String) {
        self.edges.push(LockEdge {
            from,
            to,
            file: self.f.rel.clone(),
            line,
            note,
        });
    }
}

fn lock_order(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut calls: Vec<HeldCall> = Vec::new();
    // Call-graph node → locks that function acquires anywhere.
    let mut acquired: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();

    for f in &ws.files {
        if !in_net_or_cluster_src(&f.rel) {
            continue;
        }
        let src = f.text.as_str();
        let trees = tree::build(src, &f.toks);
        for def in tree::functions(src, &f.toks, &trees) {
            if f.line_in_test(def.line) {
                continue;
            }
            let mut c = LockCollector {
                src,
                toks: &f.toks,
                f,
                edges: Vec::new(),
                calls: Vec::new(),
                facts: FnFacts::default(),
                spawned: Vec::new(),
            };
            let mut held = Vec::new();
            c.walk_block(&def.body.children, &mut held, false);
            // Spawn closures: fresh thread, fresh held set, and their
            // acquisitions do not count as the enclosing function's.
            let mut queue = std::mem::take(&mut c.spawned);
            let outer = std::mem::take(&mut c.facts);
            while let Some(g) = queue.pop() {
                let mut held = Vec::new();
                c.walk_block(&g.children, &mut held, false);
                queue.append(&mut c.spawned);
            }
            c.facts = outer;
            if let Some(node) = cg.fn_at(&f.rel, def.line) {
                acquired
                    .entry(node)
                    .or_default()
                    .extend(c.facts.acquired.iter().cloned());
            }
            edges.append(&mut c.edges);
            calls.append(&mut c.calls);
        }
    }

    // Call-site resolution over the real call graph: a held call at
    // (file, line, name) resolves to the same-crate `Free`/`SelfMethod`
    // edges the graph recorded there — method calls on locals and
    // cross-crate paths alias too loosely to propagate.
    let mut site: BTreeMap<(&str, usize, &str), Vec<usize>> = BTreeMap::new();
    for (caller, es) in cg.edges.iter().enumerate() {
        for e in es {
            if !matches!(e.kind, EdgeKind::Free | EdgeKind::SelfMethod) {
                continue;
            }
            if crate_key(&cg.fns[e.callee].file) != crate_key(&cg.fns[caller].file) {
                continue;
            }
            site.entry((cg.fns[caller].file.as_str(), e.line, e.name.as_str()))
                .or_default()
                .push(e.callee);
        }
    }

    // One level of call-edge propagation: a call made while holding H, to
    // a function that acquires L, is an H → L edge.
    for call in &calls {
        let Some(callees) = site.get(&(call.file.as_str(), call.line, call.callee.as_str())) else {
            continue;
        };
        for &callee in callees {
            let Some(locks) = acquired.get(&callee) else {
                continue;
            };
            for l in locks {
                for h in &call.held {
                    edges.push(LockEdge {
                        from: h.clone(),
                        to: l.clone(),
                        file: call.file.clone(),
                        line: call.line,
                        note: format!(" via call to {}()", call.callee),
                    });
                }
            }
        }
    }

    // KVS-L007, interprocedural half: a call made while a guard is held
    // must not transitively reach a blocking op. The same-line case is
    // the line rule in `rules.rs`; this covers the chain the ROADMAP's
    // epoll rewrite would otherwise hit blind.
    let mut l007_sites: BTreeSet<(String, usize)> = BTreeSet::new();
    for call in &calls {
        let Some(callees) = site.get(&(call.file.as_str(), call.line, call.callee.as_str())) else {
            continue;
        };
        for &callee in callees {
            let Some((node, op_line, op, parent)) = blocking_reach(cg, callee) else {
                continue;
            };
            if !l007_sites.insert((call.file.clone(), call.line)) {
                continue;
            }
            let chain = format!(
                "{}:{} → {}",
                call.file,
                call.line,
                cg.witness(callee, node, &parent, op_line)
            );
            out.push(Diagnostic {
                rule: "KVS-L007",
                path: call.file.clone(),
                line: call.line,
                message: format!(
                    "guard `{}` held across call to `{}()` which reaches blocking `{}`: {}",
                    call.held.join("`, `"),
                    call.callee,
                    op,
                    chain
                ),
            });
        }
    }

    // Deduplicate by (from, to), keeping the first witness site.
    let mut adj: BTreeMap<String, Vec<LockEdge>> = BTreeMap::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for e in edges {
        if seen.insert((e.from.clone(), e.to.clone())) {
            adj.entry(e.from.clone()).or_default().push(e);
        }
    }

    // Cycle detection with witness reconstruction.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<String> = adj.keys().cloned().collect();
    for start in &nodes {
        let mut path: Vec<&LockEdge> = Vec::new();
        let mut on_path: Vec<String> = vec![start.clone()];
        find_cycle(&adj, start, &mut on_path, &mut path, &mut reported, out);
    }
}

fn find_cycle<'e>(
    adj: &'e BTreeMap<String, Vec<LockEdge>>,
    node: &str,
    on_path: &mut Vec<String>,
    path: &mut Vec<&'e LockEdge>,
    reported: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    if on_path.len() > 32 {
        return; // defensive bound; real lock graphs are tiny
    }
    let Some(nexts) = adj.get(node) else {
        return;
    };
    for e in nexts {
        if let Some(pos) = on_path.iter().position(|n| n == &e.to) {
            // Cycle: edges path[pos..] plus e close the loop.
            let cycle: Vec<&LockEdge> = path[pos..].iter().copied().chain([e]).collect();
            let mut key: Vec<String> = cycle.iter().map(|c| c.from.clone()).collect();
            key.sort();
            if reported.insert(key) {
                let witness: Vec<String> = cycle
                    .iter()
                    .map(|c| format!("{} -> {} ({}:{}{})", c.from, c.to, c.file, c.line, c.note))
                    .collect();
                out.push(Diagnostic {
                    rule: "KVS-L009",
                    path: cycle[0].file.clone(),
                    line: cycle[0].line,
                    message: format!(
                        "lock-order cycle (deadlock candidate): {}",
                        witness.join(", then ")
                    ),
                });
            }
            continue;
        }
        on_path.push(e.to.clone());
        path.push(e);
        find_cycle(adj, &e.to, on_path, path, reported, out);
        path.pop();
        on_path.pop();
    }
}

// ---------------------------------------------------------------------------
// KVS-L010: channel / queue topology.
// ---------------------------------------------------------------------------

/// True when `code[pos]` starts `needle` and is not preceded by an
/// identifier character (so `tx.` never matches `retx.`).
fn find_endpoint_use(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(p) = code[from..].find(needle) {
        let at = from + p;
        let ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

fn channel_topology(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    const SENDS: &[&str] = &[".send(", ".try_send(", ".try_push", ".push("];
    const DRAINS: &[&str] = &[".recv", ".try_recv", ".iter(", ".try_iter(", ".drain"];
    for f in &ws.files {
        if !in_net_or_cluster_src(&f.rel) {
            continue;
        }
        for (n, l) in f.numbered() {
            if l.in_test {
                continue;
            }
            let code = l.code.trim();
            // `let (tx, rx) = <builder>…;` — single-line by rustfmt.
            let Some(rest) = code.strip_prefix("let (") else {
                continue;
            };
            let Some((names, init)) = rest.split_once(") =") else {
                continue;
            };
            let names: Vec<&str> = names.split(',').map(str::trim).collect();
            if names.len() != 2 {
                continue;
            }
            let unbounded = init.contains("unbounded")
                || (init.contains("channel(") && !init.contains("sync_channel("));
            let bounded = init.contains("work_queue")
                || init.contains("bounded(")
                || init.contains("sync_channel(");
            if !unbounded && !bounded {
                continue;
            }
            let (tx, rx) = (names[0].trim_start_matches("mut "), names[1]);
            if unbounded {
                out.push(Diagnostic {
                    rule: "KVS-L010",
                    path: f.rel.clone(),
                    line: n,
                    message: format!(
                        "unbounded channel `({tx}, {rx})` — queue depth is a measured quantity \
                         here; bound it, or waive with the invariant that caps its growth"
                    ),
                });
            }
            // Endpoint pairing: a send in this file needs a drain in this
            // file (both sides of every live channel stay in one
            // lifecycle).
            let mut sends = 0usize;
            let mut drains = 0usize;
            for (m, l2) in f.numbered() {
                if l2.in_test || m == n {
                    continue;
                }
                for s in SENDS {
                    if find_endpoint_use(&l2.code, &format!("{tx}{s}")) {
                        sends += 1;
                    }
                }
                for d in DRAINS {
                    if find_endpoint_use(&l2.code, &format!("{rx}{d}")) {
                        drains += 1;
                    }
                }
            }
            if sends > 0 && drains == 0 {
                out.push(Diagnostic {
                    rule: "KVS-L010",
                    path: f.rel.clone(),
                    line: n,
                    message: format!(
                        "channel `({tx}, {rx})` is sent to ({sends} site(s)) but `{rx}` is never \
                         drained in this file — dead-letter path or receiver leak"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// KVS-L011: stage-stamp dataflow.
// ---------------------------------------------------------------------------

/// The four pipeline stages of PAPER.md §IV; `master.rs` must keep
/// recording all of them or the per-stage decomposition silently loses a
/// term.
const STAGES: &[&str] = &[
    "Stage::MasterToSlave",
    "Stage::InQueue",
    "Stage::InDb",
    "Stage::SlaveToMaster",
];

fn stamp_scope(rel: &str) -> bool {
    rel.starts_with("crates/net/src/")
        && (rel.ends_with("/server.rs")
            || rel.ends_with("/master.rs")
            || rel.ends_with("/write_path.rs"))
}

fn stamp_dataflow(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        if !stamp_scope(&f.rel) {
            continue;
        }
        let src = f.text.as_str();
        let trees = tree::build(src, &f.toks);
        check_frame_literals(f, src, &trees, out);
        check_stage_completeness(f, out);
        check_stamp_mutations(f, out);
    }
}

/// Walks every sibling list, invoking `cb` on each non-test
/// `Frame { … }` struct literal with its body group and line. Shared by
/// KVS-L011 (stamp slots) and KVS-L016 (deadline threading).
fn for_each_frame_literal<'t>(
    f: &SourceFile,
    src: &str,
    trees: &'t [Tree],
    cb: &mut dyn FnMut(&'t Group, usize),
) {
    let toks = &f.toks;
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            for_each_frame_literal(f, src, &g.children, cb);
        }
        let is_frame = matches!(t, Tree::Leaf(ix) if toks[*ix].text(src) == "Frame");
        if !is_frame {
            continue;
        }
        let Some(Tree::Group(body)) = trees.get(i + 1) else {
            continue;
        };
        if body.delim != Delim::Brace {
            continue;
        }
        // Struct/trait declarations introduce `Frame {` too.
        if i > 0
            && leaf_text(src, toks, &trees[i - 1])
                .is_some_and(|t| matches!(t, "struct" | "enum" | "union" | "impl" | "trait"))
        {
            continue;
        }
        let line = leaf_line(toks, t);
        if f.line_in_test(line) {
            continue;
        }
        cb(body, line);
    }
}

/// Walks every sibling list looking for `Frame { … }` literals.
fn check_frame_literals(f: &SourceFile, src: &str, trees: &[Tree], out: &mut Vec<Diagnostic>) {
    for_each_frame_literal(f, src, trees, &mut |body, line| {
        check_one_frame(f, src, body, line, out);
    });
}

/// Field value trees for `name:` inside a struct-literal body.
fn field_value<'t>(src: &str, toks: &[Tok], body: &'t Group, name: &str) -> Option<Vec<&'t Tree>> {
    let ch = &body.children;
    let mut i = 0;
    while i < ch.len() {
        let here = leaf_text(src, toks, &ch[i]) == Some(name)
            && ch.get(i + 1).is_some_and(|t| is_punct(src, toks, t, ":"))
            && (i == 0 || is_punct(src, toks, &ch[i - 1], ","));
        if here {
            let mut vals = Vec::new();
            let mut j = i + 2;
            while j < ch.len() && !is_punct(src, toks, &ch[j], ",") {
                vals.push(&ch[j]);
                j += 1;
            }
            return Some(vals);
        }
        i += 1;
    }
    None
}

fn check_one_frame(
    f: &SourceFile,
    src: &str,
    body: &Group,
    line: usize,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &f.toks;
    let diag = |line: usize, message: String| Diagnostic {
        rule: "KVS-L011",
        path: f.rel.clone(),
        line,
        message,
    };
    let kind_text = field_value(src, toks, body, "kind")
        .map(|vals| {
            vals.iter()
                .map(|t| tree::text_of(src, toks, std::slice::from_ref(*t)))
                .collect::<String>()
        })
        .unwrap_or_default();
    let Some(stamp_vals) = field_value(src, toks, body, "stamps") else {
        return; // update syntax / destructuring: nothing to check
    };
    let [Tree::Group(arr)] = stamp_vals.as_slice() else {
        out.push(diag(
            line,
            "stamps must be a 4-element array literal written once at construction".to_string(),
        ));
        return;
    };
    if arr.delim != Delim::Bracket {
        return;
    }
    let stamp_line = toks[arr.open].line;
    // Split the array elements on `,`.
    let mut slots: Vec<String> = Vec::new();
    let mut cur: Vec<&Tree> = Vec::new();
    for t in &arr.children {
        if is_punct(src, toks, t, ",") {
            slots.push(slot_text(src, toks, &cur));
            cur.clear();
        } else {
            cur.push(t);
        }
    }
    if !cur.is_empty() {
        slots.push(slot_text(src, toks, &cur));
    }
    if slots.len() != 4 {
        out.push(diag(
            stamp_line,
            format!(
                "stamps literal has {} slot(s) — the stage decomposition needs exactly 4",
                slots.len()
            ),
        ));
        return;
    }
    let kind = kind_text
        .rsplit("FrameKind::")
        .next()
        .filter(|_| kind_text.contains("FrameKind::"))
        .unwrap_or("")
        .to_string();
    match kind.as_str() {
        // Write and Rmw frames follow the request convention: the master
        // owns the first three slots (the LWW timestamp travels in the
        // payload, never in the stamps).
        "Request" | "Write" | "Rmw" => {
            for (i, name) in ["issue", "send", "send-seq"].iter().enumerate() {
                if slots[i] == "0" {
                    out.push(diag(
                        stamp_line,
                        format!(
                            "request stamps[{i}] ({name}) is a literal 0 — the master must \
                             write it before encode"
                        ),
                    ));
                }
            }
            if slots[3] != "0" {
                out.push(diag(
                    stamp_line,
                    "request stamps[3] must be the literal 0 — it belongs to the slave side \
                     of the exchange"
                        .to_string(),
                ));
            }
        }
        // A write-ack carries the same four stage boundaries a response
        // does; losing one degrades the write path's decomposition the
        // same way.
        "Response" | "WriteAck" => {
            for (i, name) in ["send echo", "dequeue", "in-db end", "slave send"]
                .iter()
                .enumerate()
            {
                if slots[i] == "0" {
                    out.push(diag(
                        stamp_line,
                        format!(
                            "response stamps[{i}] ({name}) is a literal 0 — a dropped stage \
                             stamp silently degrades the per-stage model fit"
                        ),
                    ));
                }
            }
            let mut uniq: BTreeSet<&str> = BTreeSet::new();
            for (i, s) in slots.iter().enumerate() {
                if !uniq.insert(s.as_str()) {
                    out.push(diag(
                        stamp_line,
                        format!(
                            "response stamps[{i}] duplicates another slot (`{s}`) — each \
                             stage boundary is written exactly once"
                        ),
                    ));
                }
            }
        }
        // Busy / Expired / a kind passed as a parameter: only the echoed
        // request-send stamp is mandatory.
        _ => {
            if slots[0] == "0" {
                out.push(diag(
                    stamp_line,
                    "stamps[0] must echo the request's send time — a literal 0 erases the \
                     round-trip correlation"
                        .to_string(),
                ));
            }
        }
    }
}

fn slot_text(src: &str, toks: &[Tok], trees: &[&Tree]) -> String {
    let mut s = String::new();
    for t in trees {
        s.push_str(&tree::text_of(src, toks, std::slice::from_ref(*t)));
    }
    s
}

fn check_stage_completeness(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut present: BTreeMap<&str, usize> = BTreeMap::new();
    for (n, l) in f.numbered() {
        if l.in_test {
            continue;
        }
        for s in STAGES {
            if l.code.contains(s) {
                present.entry(s).or_insert(n);
            }
        }
    }
    if present.is_empty() || present.len() == STAGES.len() {
        return;
    }
    let first = *present.values().min().expect("non-empty");
    let missing: Vec<&str> = STAGES
        .iter()
        .filter(|s| !present.contains_key(**s))
        .copied()
        .collect();
    out.push(Diagnostic {
        rule: "KVS-L011",
        path: f.rel.clone(),
        line: first,
        message: format!(
            "stage decomposition incomplete: this file records some stages but not {} — \
             the per-stage model loses a term",
            missing.join(", ")
        ),
    });
}

fn check_stamp_mutations(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (n, l) in f.numbered() {
        if l.in_test {
            continue;
        }
        let code = &l.code;
        let Some(p) = code.find(".stamps[") else {
            continue;
        };
        let Some(close) = code[p..].find(']') else {
            continue;
        };
        let after = code[p + close + 1..].trim_start();
        if after.starts_with('=') && !after.starts_with("==") {
            out.push(Diagnostic {
                rule: "KVS-L011",
                path: f.rel.clone(),
                line: n,
                message: "post-construction write to a stamps slot — each slot is written \
                          exactly once, at frame construction, so no stage can be stamped \
                          twice or lost"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// KVS-L012: frame-kind exhaustiveness.
// ---------------------------------------------------------------------------

fn kind_scope(rel: &str) -> bool {
    rel.starts_with("crates/net/src/")
        && (rel.ends_with("/master.rs")
            || rel.ends_with("/server.rs")
            || rel.ends_with("/chaos.rs")
            || rel.ends_with("/write_path.rs"))
}

/// Variant names of `enum FrameKind` in `frame.rs`, in declaration order.
fn frame_kind_variants(ws: &Workspace) -> Option<Vec<String>> {
    let f = ws
        .files
        .iter()
        .find(|f| f.rel == "crates/net/src/frame.rs")?;
    let src = f.text.as_str();
    let trees = tree::build(src, &f.toks);
    variants_in(src, &f.toks, &trees)
}

fn variants_in(src: &str, toks: &[Tok], trees: &[Tree]) -> Option<Vec<String>> {
    for (i, t) in trees.iter().enumerate() {
        if leaf_text(src, toks, t) == Some("enum")
            && leaf_text(src, toks, trees.get(i + 1)?) == Some("FrameKind")
        {
            if let Some(Tree::Group(g)) = trees.get(i + 2) {
                let mut names = Vec::new();
                let mut take_next = true;
                for c in &g.children {
                    if is_punct(src, toks, c, ",") {
                        take_next = true;
                    } else if take_next && is_ident(src, toks, c) {
                        names.push(leaf_text(src, toks, c)?.to_string());
                        take_next = false;
                    }
                }
                return Some(names);
            }
        }
        if let Tree::Group(g) = t {
            if let Some(v) = variants_in(src, toks, &g.children) {
                return Some(v);
            }
        }
    }
    None
}

fn kind_exhaustiveness(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(kinds) = frame_kind_variants(ws) else {
        return; // fixture trees without a frame.rs skip the rule
    };
    for f in &ws.files {
        if !kind_scope(&f.rel) {
            continue;
        }
        let src = f.text.as_str();
        let trees = tree::build(src, &f.toks);
        check_matches(f, src, &trees, &kinds, out);
    }
}

fn check_matches(
    f: &SourceFile,
    src: &str,
    trees: &[Tree],
    kinds: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let toks = &f.toks;
    for (i, t) in trees.iter().enumerate() {
        if let Tree::Group(g) = t {
            check_matches(f, src, &g.children, kinds, out);
        }
        if leaf_text(src, toks, t) != Some("match") {
            continue;
        }
        let line = leaf_line(toks, t);
        if f.line_in_test(line) {
            continue;
        }
        // The match body: the next brace group among the siblings.
        let Some(body) = trees[i + 1..].iter().find_map(|t| match t {
            Tree::Group(g) if g.delim == Delim::Brace => Some(g),
            _ => None,
        }) else {
            continue;
        };
        let arms = arm_patterns(src, toks, body);
        if !arms.iter().any(|p| p.contains("FrameKind::")) {
            continue; // not a frame-kind match (codec kinds, byte values…)
        }
        let named: Vec<&String> = kinds
            .iter()
            .filter(|k| arms.iter().any(|p| p.contains(&format!("FrameKind::{k}"))))
            .collect();
        let has_wildcard = arms.iter().any(|p| {
            let p = p.trim();
            p == "_" || p.chars().all(|c| c.is_alphanumeric() || c == '_') && !p.is_empty()
        });
        let missing: Vec<&String> = kinds.iter().filter(|k| !named.contains(k)).collect();
        if missing.is_empty() {
            continue;
        }
        let list = missing
            .iter()
            .map(|s| s.as_str())
            .collect::<Vec<_>>()
            .join(", ");
        if has_wildcard {
            out.push(Diagnostic {
                rule: "KVS-L012",
                path: f.rel.clone(),
                line,
                message: format!(
                    "wildcard arm hides frame kind(s) {list} — name every kind so a new \
                     FrameKind cannot be silently swallowed, or waive the wildcard"
                ),
            });
        } else {
            out.push(Diagnostic {
                rule: "KVS-L012",
                path: f.rel.clone(),
                line,
                message: format!("frame-kind match does not handle {list} and has no wildcard arm"),
            });
        }
    }
}

/// The pattern text of each arm in a match body: tokens up to `=>`, with
/// arm bodies (block or expression-until-`,`) skipped.
fn arm_patterns(src: &str, toks: &[Tok], body: &Group) -> Vec<String> {
    let ch = &body.children;
    let mut arms = Vec::new();
    let mut i = 0;
    while i < ch.len() {
        // Collect the pattern until `=>`.
        let start = i;
        let mut fat_arrow = None;
        while i < ch.len() {
            if is_punct(src, toks, &ch[i], "=")
                && ch.get(i + 1).is_some_and(|t| is_punct(src, toks, t, ">"))
            {
                fat_arrow = Some(i);
                break;
            }
            i += 1;
        }
        let Some(arrow) = fat_arrow else {
            break;
        };
        arms.push(
            ch[start..arrow]
                .iter()
                .map(|t| tree::text_of(src, toks, std::slice::from_ref(t)))
                .collect::<String>(),
        );
        i = arrow + 2;
        // Skip the arm body: a block ends the arm; otherwise scan to `,`.
        if let Some(Tree::Group(g)) = ch.get(i) {
            if g.delim == Delim::Brace {
                i += 1;
                if ch.get(i).is_some_and(|t| is_punct(src, toks, t, ",")) {
                    i += 1;
                }
                continue;
            }
        }
        while i < ch.len() && !is_punct(src, toks, &ch[i], ",") {
            i += 1;
        }
        i += 1;
    }
    arms
}

// ---------------------------------------------------------------------------
// KVS-L014: blocking-call reachability from non-blocking zones.
// ---------------------------------------------------------------------------

/// BFS over `Free`/`SelfMethod`/`Path` edges only, returning the parent
/// map [`CallGraph::witness`] needs. May-call `Method` edges are *not*
/// traversed: bare names like `get`/`map` alias across the whole
/// workspace and would drown every reachability query in false paths. A
/// blocking method call (`rx.recv()`, `stream.write_all(…)`) still
/// surfaces, because each reached node's `ops` records it by name.
fn reach_parents(cg: &CallGraph, root: usize) -> BTreeMap<usize, (usize, usize)> {
    let mut parent: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
    let mut seen = vec![false; cg.fns.len()];
    seen[root] = true;
    let mut queue = VecDeque::from([root]);
    while let Some(n) = queue.pop_front() {
        for e in &cg.edges[n] {
            if matches!(e.kind, EdgeKind::Method) {
                continue;
            }
            if !seen[e.callee] {
                seen[e.callee] = true;
                parent.insert(e.callee, (n, e.line));
                queue.push_back(e.callee);
            }
        }
    }
    parent
}

/// A blocking-reachability hit: the reached node, the op's line, the
/// op's name, and the parent map needed to rebuild the witness chain.
type BlockingHit = (usize, usize, String, BTreeMap<usize, (usize, usize)>);

/// Blocking-reachability probe for the L007 interprocedural check: the
/// first reachable node (in node order) whose body contains a blocking
/// op, with the parent map needed to rebuild the witness chain.
fn blocking_reach(cg: &CallGraph, root: usize) -> Option<BlockingHit> {
    let parent = reach_parents(cg, root);
    for n in std::iter::once(root).chain(parent.keys().copied()) {
        if let Some((line, op)) = cg.fns[n]
            .ops
            .iter()
            .find(|(_, name)| BLOCKING_OPS.contains(&name.as_str()))
        {
            return Some((n, *line, op.clone(), parent));
        }
    }
    None
}

/// KVS-L014: nothing reachable from a `// LINT-ZONE: nonblocking`
/// function may block. Each diagnostic anchors at the zone's `fn` line
/// and carries the full witness chain.
fn blocking_reachability(cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    let block: BTreeSet<&str> = BLOCKING_OPS
        .iter()
        .chain(ZONE_EXTRA_BLOCKING)
        .copied()
        .collect();
    for (root, f) in cg.fns.iter().enumerate() {
        if f.zone.as_deref() != Some("nonblocking") {
            continue;
        }
        let parent = reach_parents(cg, root);
        for n in std::iter::once(root).chain(parent.keys().copied()) {
            let Some((line, op)) = cg.fns[n]
                .ops
                .iter()
                .find(|(_, name)| block.contains(name.as_str()))
            else {
                continue;
            };
            out.push(Diagnostic {
                rule: "KVS-L014",
                path: f.file.clone(),
                line: f.line,
                message: format!(
                    "non-blocking zone `{}` can reach blocking `{}`: {}",
                    f.name,
                    op,
                    cg.witness(root, n, &parent, *line)
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// KVS-L015: crash ordering on the durable commit paths.
// ---------------------------------------------------------------------------

/// Files whose commit paths carry the docs/STORE.md ordering contract.
fn crash_scope(rel: &str) -> bool {
    [
        "store/src/manifest.rs",
        "store/src/durable.rs",
        "store/src/wal.rs",
    ]
    .iter()
    .any(|s| rel.ends_with(s))
}

/// KVS-L015: the docs/STORE.md durability contract — write → fsync →
/// rename → dir-fsync, and GC strictly after the manifest commit — as CFG
/// statement order. One level of call propagation: a statement calling a
/// workspace function whose body fsyncs (`write_sst`,
/// `WalWriter::create`, …) counts as a sync step; methods are
/// receiver-qualified so `File::create` never matches
/// `WalWriter::create`. "Preceded by" checks are universal over paths;
/// "followed by" checks are existential (can the dir-fsync be reached at
/// all) because `?` error edges legitimately exit before it.
fn crash_ordering(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    let mut sync_pats: BTreeSet<String> = BTreeSet::new();
    for f in &cg.fns {
        if f.ops
            .iter()
            .any(|(_, n)| n == "sync_all" || n == "sync_data")
        {
            sync_pats.insert(match &f.receiver {
                Some(r) => format!("{r}::{}(", f.name),
                None => format!("{}(", f.name),
            });
        }
    }
    let is_sync = |text: &str| {
        text.contains("sync_all(")
            || text.contains("sync_data(")
            || sync_pats.iter().any(|p| text.contains(p.as_str()))
    };
    for f in &ws.files {
        if !crash_scope(&f.rel) {
            continue;
        }
        let src = f.text.as_str();
        let trees = tree::build(src, &f.toks);
        for def in tree::functions(src, &f.toks, &trees) {
            if f.line_in_test(def.line) {
                continue;
            }
            let g = cfg::build(src, &f.toks, def.body);
            let diag = |line: usize, message: String| Diagnostic {
                rule: "KVS-L015",
                path: f.rel.clone(),
                line,
                message,
            };
            for r in g.find(|t| t.contains("rename(")) {
                if let Some(p) = g.path_avoiding(r, |n| is_sync(&g.stmts[n].text)) {
                    out.push(diag(
                        g.stmts[r].line,
                        format!(
                            "rename is reachable without a preceding fsync — a crash can \
                             publish unsynced data (docs/STORE.md order: write → fsync → \
                             rename → dir-fsync): {}",
                            g.witness(&f.rel, &p)
                        ),
                    ));
                }
                let dir_syncs = g.find(|t| t.contains("sync_all("));
                if !dir_syncs.iter().any(|&s| s != r && g.reaches(r, s)) {
                    out.push(diag(
                        g.stmts[r].line,
                        "rename is never followed by a directory fsync — a crash can lose \
                         the directory entry (docs/STORE.md order: write → fsync → rename → \
                         dir-fsync)"
                            .to_string(),
                    ));
                }
            }
            for c in g.find(|t| t.contains(".commit(")) {
                if let Some(p) = g.path_avoiding(c, |n| is_sync(&g.stmts[n].text)) {
                    out.push(diag(
                        g.stmts[c].line,
                        format!(
                            "manifest commit is reachable without a preceding sync of the \
                             data it references (docs/STORE.md: every path to a commit must \
                             pass a sync): {}",
                            g.witness(&f.rel, &p)
                        ),
                    ));
                }
                for rm in g.find(|t| t.contains("remove_file(")) {
                    if rm != c && g.reaches(rm, c) {
                        out.push(diag(
                            g.stmts[rm].line,
                            format!(
                                "GC (remove_file) can run before the manifest commit that \
                                 unreferences it — a crash between them loses the only \
                                 durable copy: {}:{} → {}:{}",
                                f.rel, g.stmts[rm].line, f.rel, g.stmts[c].line
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// KVS-L016: deadline propagation across call sites.
// ---------------------------------------------------------------------------

/// Deadline values that mint a fresh no-deadline frame.
const FRESH_DEADLINES: &[&str] = &["0", "u64::MAX", "NO_DEADLINE"];

/// True when the struct-literal body initializes `name` via field
/// shorthand (`Frame { …, deadline, … }`).
fn has_shorthand_field(src: &str, toks: &[Tok], body: &Group, name: &str) -> bool {
    let ch = &body.children;
    ch.iter().enumerate().any(|(i, t)| {
        leaf_text(src, toks, t) == Some(name)
            && (i == 0 || is_punct(src, toks, &ch[i - 1], ","))
            && ch.get(i + 1).is_none_or(|n| is_punct(src, toks, n, ","))
    })
}

/// KVS-L016: every v2 `Frame` literal on the request paths must thread an
/// incoming deadline. Literals without a `deadline:` field (v1 shapes)
/// are L011's concern and skipped here. A value that names the deadline
/// it threads, or derives a budget from the wall-clock portal
/// (`wall_ns() + …`), passes. When the value is a parameter of the
/// enclosing function the obligation moves to every call site in the
/// call graph: passing a literal `0`/`u64::MAX` there mints a fresh
/// no-deadline frame one function removed — exactly the bug L011 cannot
/// see.
fn deadline_propagation(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    let mut caller_sites: BTreeSet<(String, usize)> = BTreeSet::new();
    for f in &ws.files {
        if !stamp_scope(&f.rel) {
            continue;
        }
        let src = f.text.as_str();
        let toks = &f.toks;
        let trees = tree::build(src, toks);
        let mut sites: Vec<(usize, String)> = Vec::new();
        for_each_frame_literal(f, src, &trees, &mut |body, line| {
            if let Some(vals) = field_value(src, toks, body, "deadline") {
                sites.push((line, slot_text(src, toks, &vals)));
            } else if has_shorthand_field(src, toks, body, "deadline") {
                sites.push((line, "deadline".to_string()));
            }
        });
        for (line, text) in sites {
            if FRESH_DEADLINES.contains(&text.as_str()) {
                out.push(Diagnostic {
                    rule: "KVS-L016",
                    path: f.rel.clone(),
                    line,
                    message: format!(
                        "frame mints a fresh `{text}` deadline — thread the incoming \
                         request's deadline instead"
                    ),
                });
                continue;
            }
            let identish = !text.is_empty()
                && text.chars().all(|c| c.is_alphanumeric() || c == '_')
                && !text.starts_with(|c: char| c.is_ascii_digit());
            if identish {
                // A bare name. When it is a parameter of the enclosing
                // function, the obligation moves to every call site.
                if let Some(node) = cg.fn_enclosing(&f.rel, line) {
                    if let Some(pos) = cg.fns[node].params.iter().position(|p| *p == text) {
                        for (caller, edge) in cg.callers(node) {
                            let Some(arg) = edge.args.get(pos) else {
                                continue;
                            };
                            if !FRESH_DEADLINES.contains(&arg.as_str()) {
                                continue;
                            }
                            let site = (cg.fns[caller].file.clone(), edge.line);
                            if caller_sites.insert(site.clone()) {
                                out.push(Diagnostic {
                                    rule: "KVS-L016",
                                    path: site.0,
                                    line: site.1,
                                    message: format!(
                                        "call to `{}()` passes a fresh `{arg}` deadline \
                                         into a v2 frame — thread the incoming deadline \
                                         across this call",
                                        cg.fns[node].name
                                    ),
                                });
                            }
                        }
                        continue;
                    }
                }
                if text.contains("deadline") {
                    continue;
                }
                out.push(Diagnostic {
                    rule: "KVS-L016",
                    path: f.rel.clone(),
                    line,
                    message: format!(
                        "frame deadline comes from `{text}`, which neither names a \
                         threaded deadline nor is a parameter checked at its call sites"
                    ),
                });
                continue;
            }
            let threaded = text.contains("deadline");
            let portal_budget =
                text.contains("wall_ns") && (text.contains('+') || text.contains("saturating_add"));
            if !threaded && !portal_budget {
                out.push(Diagnostic {
                    rule: "KVS-L016",
                    path: f.rel.clone(),
                    line,
                    message: format!(
                        "frame deadline `{text}` is neither threaded from an incoming \
                         deadline nor a wall-clock budget (`wall_ns() + …`) — fresh \
                         deadlines break expiry propagation"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// KVS-L017 … KVS-L019: the dataflow-engine rules.
// ---------------------------------------------------------------------------

/// Files whose `from_be_bytes`/`from_le_bytes` results decode socket
/// bytes and are therefore untrusted wire input (suffix-matched so the
/// rule also runs on fixture trees mirroring the layout).
const WIRE_FILES: &[&str] = &[
    "net/src/frame.rs",
    "net/src/server.rs",
    "net/src/master.rs",
    "net/src/chaos.rs",
];

fn wire_scope(rel: &str) -> bool {
    WIRE_FILES.iter().any(|s| rel.ends_with(s))
}

/// KVS-L017's taint spec: wire decodes are sources; allocations sized
/// from them, slice indexing and loop bounds are sinks.
const WIRE_SPEC: dataflow::TaintSpec<'static> = dataflow::TaintSpec {
    sources: &["from_be_bytes(", "from_le_bytes("],
    sink_calls: &[
        ("with_capacity(", "allocation"),
        (".reserve(", "allocation"),
        (".resize(", "allocation"),
        ("vec![", "allocation"),
    ],
    index_sinks: true,
};

/// KVS-L017: untrusted wire-input taint. Summaries are built workspace-
/// wide (so a decode helper in another file still taints its callers),
/// but findings are reported only for functions living in the wire
/// files — `from_be_bytes` on locally produced data (store block
/// decode, checksums) is not wire input.
fn wire_taint(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    if !ws.files.iter().any(|f| wire_scope(&f.rel)) {
        return;
    }
    let summaries = dataflow::TaintSummaries::build(ws, cg, &WIRE_SPEC);
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    for (fid, info) in cg.fns.iter().enumerate() {
        if !wire_scope(&info.file) {
            continue;
        }
        for ss in &summaries.by_fn[fid].source_sinks {
            let message = format!(
                "untrusted wire length: {} (line {}) reaches {} without a validated \
                 bound — compare against a MAX_PAYLOAD-style limit first; flow: {}",
                ss.what, ss.source_line, ss.hit.kind, ss.hit.chain
            );
            if seen.insert((info.file.clone(), ss.hit.line, message.clone())) {
                out.push(Diagnostic {
                    rule: "KVS-L017",
                    path: info.file.clone(),
                    line: ss.hit.line,
                    message,
                });
            }
        }
    }
}

/// Wall-clock and RNG portals whose results must not flow into the
/// deterministic zones. `wall_ns(` is the *sanctioned* live portal —
/// L001 allows calling it anywhere — but its value is still host time
/// and smuggling it into a zone breaks replayability just the same.
const TIME_SOURCES: &[&str] = &[
    "SystemTime::now(",
    "Instant::now(",
    "wall_ns(",
    "thread_rng(",
    "from_entropy(",
    "rand::random(",
];

const TIME_SPEC: dataflow::TaintSpec<'static> = dataflow::TaintSpec {
    sources: TIME_SOURCES,
    sink_calls: &[],
    index_sinks: false,
};

/// Callers exempt from KVS-L018: the bench lane feeds *measured*
/// timings to the model as data (that is its whole purpose), and the
/// linter itself times its phases.
fn time_exempt_caller(rel: &str) -> bool {
    rel.starts_with("crates/bench/") || rel.starts_with("crates/lint/")
}

/// True when the source line at a call site is plausibly a call to
/// *this specific* callee. The call graph resolves `Path` calls whose
/// qualifier matches no workspace type by name alone, so `Instant::now()`
/// aliases every workspace `now()`; L018 must not report through such
/// edges. Accepts `Q::name(…)` only when `Q` is the callee's receiver
/// (or a module-looking lowercase path segment and the callee is a free
/// function), bare `name(…)` only for free callees, and `self.name(…)`
/// only within the callee's own impl.
fn plausible_call(
    line_text: &str,
    caller: &callgraph::FnInfo,
    callee: &callgraph::FnInfo,
    name: &str,
) -> bool {
    let pat = format!("{name}(");
    let b = line_text.as_bytes();
    let mut from = 0;
    while let Some(p) = line_text[from..].find(&pat) {
        let start = from + p;
        from = start + 1;
        if start > 0 && ((b[start - 1] as char).is_ascii_alphanumeric() || b[start - 1] == b'_') {
            continue; // substring of a longer identifier
        }
        let before = &line_text[..start];
        if let Some(qpath) = before.strip_suffix("::") {
            let q: String = qpath
                .chars()
                .rev()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            match &callee.receiver {
                Some(r) => {
                    if *r == q {
                        return true;
                    }
                }
                None => {
                    if q.starts_with(|c: char| c.is_ascii_lowercase()) {
                        return true;
                    }
                }
            }
        } else if before.ends_with('.') {
            if before.trim_end_matches('.').ends_with("self")
                && callee.receiver.is_some()
                && caller.receiver == callee.receiver
            {
                return true;
            }
        } else if callee.receiver.is_none() {
            return true;
        }
    }
    false
}

/// KVS-L018: determinism escape by value flow. Two directions:
///
/// * a non-zone function passes a time/RNG-derived value (directly, or
///   a variable the taint engine tracked — including tainted returns of
///   helpers) as an argument to a function living in a deterministic
///   zone;
/// * a zone function calls a non-zone function whose summary says the
///   return value carries time/RNG taint.
///
/// Heuristic boundaries: a non-zone function that merely *forwards its
/// own parameter* into a zone call is not flagged (the caller passing
/// time into it is, one level up, only if that call site is itself a
/// zone call) — mark such conduits with `// LINT-TAINT-SOURCE` when the
/// parameter is known to carry host time. Pure value constructors
/// (`new`, `from_*`, `with_*`) are exempt sinks: wrapping a measured
/// duration into a typed sim value is the sanctioned live→sim bridge.
/// And because the call graph aliases unqualified names workspace-wide,
/// an edge only counts when the call site text plausibly names the
/// callee ([`plausible_call`]).
fn determinism_escape(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    use crate::rules::in_deterministic_zone;
    let resolved =
        |k: &EdgeKind| matches!(k, EdgeKind::Free | EdgeKind::SelfMethod | EdgeKind::Path);
    // Collect the call edges the rule cares about before paying for
    // summaries: non-zone → zone (taint-in) and zone → non-zone
    // (taint-back-via-return).
    let by_rel: BTreeMap<&str, &SourceFile> =
        ws.files.iter().map(|f| (f.rel.as_str(), f)).collect();
    let line_code = |rel: &str, line: usize| -> String {
        by_rel
            .get(rel)
            .and_then(|f| f.lines.get(line.checked_sub(1)?))
            .map(|l| l.code.clone())
            .unwrap_or_default()
    };
    let mut into_zone: Vec<(usize, usize, usize, String)> = Vec::new(); // caller, callee, line, name
    let mut from_zone: Vec<(usize, usize, usize, String)> = Vec::new();
    for (fid, info) in cg.fns.iter().enumerate() {
        let caller_zone = in_deterministic_zone(&info.file);
        for e in &cg.edges[fid] {
            if !resolved(&e.kind) {
                continue;
            }
            let callee_zone = in_deterministic_zone(&cg.fns[e.callee].file);
            if caller_zone == callee_zone {
                continue;
            }
            if !plausible_call(
                &line_code(&info.file, e.line),
                info,
                &cg.fns[e.callee],
                &e.name,
            ) {
                continue;
            }
            // Pure value constructors (`new`, `from_*`, `with_*`) wrap a
            // measured value into a typed one — that is data plumbing
            // (the live→sim measurement bridge), not zone behavior.
            // The escape fires when the value reaches a zone call that
            // *does* something with it.
            let constructor =
                e.name == "new" || e.name.starts_with("from_") || e.name.starts_with("with_");
            if !caller_zone && !time_exempt_caller(&info.file) && !constructor {
                into_zone.push((fid, e.callee, e.line, e.name.clone()));
            } else if caller_zone {
                from_zone.push((fid, e.callee, e.line, e.name.clone()));
            }
        }
    }
    if into_zone.is_empty() && from_zone.is_empty() {
        return;
    }
    let summaries = dataflow::TaintSummaries::build(ws, cg, &TIME_SPEC);
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut emit = |path: &str, line: usize, message: String, out: &mut Vec<Diagnostic>| {
        if seen.insert((path.to_string(), line, message.clone())) {
            out.push(Diagnostic {
                rule: "KVS-L018",
                path: path.to_string(),
                line,
                message,
            });
        }
    };
    for (fid, callee, line, name) in from_zone {
        if summaries.by_fn[callee].returns_source {
            emit(
                &cg.fns[fid].file,
                line,
                format!(
                    "deterministic zone calls `{name}()`, whose return carries a \
                     wall-clock/RNG-derived value — take time from simcore::time \
                     or thread it in as an explicit parameter"
                ),
                out,
            );
        }
    }
    // Group the taint-in edges by caller so each caller's flow is
    // computed once.
    let mut by_caller: BTreeMap<usize, Vec<(usize, String)>> = BTreeMap::new();
    for (fid, _callee, line, name) in into_zone {
        by_caller.entry(fid).or_default().push((line, name));
    }
    for (fid, sites) in by_caller {
        let file = cg.fns[fid].file.clone();
        let Some((g, flow, facts)) = dataflow::flow_for(ws, cg, fid, &TIME_SPEC, &summaries) else {
            continue;
        };
        for (line, name) in sites {
            let callpat = format!("{name}(");
            for n in 1..g.stmts.len() {
                if g.stmts[n].line != line || !g.stmts[n].text.contains(callpat.as_str()) {
                    continue;
                }
                let text = &g.stmts[n].text;
                // Direct: a portal read inside the call's own statement.
                for sp in TIME_SOURCES {
                    if text.contains(sp) {
                        emit(
                            &file,
                            line,
                            format!(
                                "`{}` flows into deterministic-zone call `{name}()` — \
                                 zones must take time/randomness from simcore, not \
                                 the host; flow: {file}:{line}",
                                sp.trim_end_matches('(')
                            ),
                            out,
                        );
                    }
                }
                // Tracked: a variable tainted earlier in the function.
                for &f in flow.ins[n].iter() {
                    let (origin, var) = &facts[f as usize];
                    let dataflow::Origin::Source {
                        line: src_line,
                        what,
                    } = origin
                    else {
                        continue;
                    };
                    if !ident_mentions(text, var) {
                        continue;
                    }
                    emit(
                        &file,
                        line,
                        format!(
                            "`{var}` carries {what} (line {src_line}) into \
                             deterministic-zone call `{name}()` — zones must take \
                             time/randomness from simcore, not the host; flow: \
                             {file}:{src_line} → {file}:{line}"
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// Identifier-boundary substring: `needle` appears in `hay` not glued
/// to another identifier character on either side.
fn ident_mentions(hay: &str, needle: &str) -> bool {
    let b = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok =
            start == 0 || !((b[start - 1] as char).is_ascii_alphanumeric() || b[start - 1] == b'_');
        let after_ok =
            end >= b.len() || !((b[end] as char).is_ascii_alphanumeric() || b[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn receipt_scope(rel: &str) -> bool {
    rel.ends_with("store/src/durable.rs") || rel.ends_with("store/src/sst_file.rs")
}

/// KVS-L019: receipt accounting on the durable read paths. In any
/// non-test function in `durable.rs`/`sst_file.rs` with a receipt in
/// scope (the rule checks accounting *completeness* where accounting
/// exists, not coverage), every CFG path performing a disk block read
/// must charge the receipt — directly (`receipt.… += …` /
/// `receipt.… = true`) or by calling a same-scope helper that charges —
/// before reaching the exit. The read's own `?` error edge is exempt.
fn receipt_accounting(ws: &Workspace, cg: &CallGraph, out: &mut Vec<Diagnostic>) {
    let is_direct_charge =
        |text: &str| text.contains("receipt.") && (text.contains("+=") || text.contains("=true"));
    // Helper functions whose body charges a receipt: calling them
    // counts as charging (`self.charge(receipt)` style indirection).
    let mut charge_helpers: BTreeSet<String> = BTreeSet::new();
    let mut fns: Vec<(&SourceFile, usize, cfg::Cfg)> = Vec::new();
    for f in &ws.files {
        if !receipt_scope(&f.rel) {
            continue;
        }
        let trees = tree::build(&f.text, &f.toks);
        for def in tree::functions(&f.text, &f.toks, &trees) {
            if f.line_in_test(def.line) {
                continue;
            }
            let g = cfg::build(&f.text, &f.toks, def.body);
            if !g.find(|t| is_direct_charge(t)).is_empty() {
                charge_helpers.insert(def.name.clone());
            }
            fns.push((f, def.line, g));
        }
    }
    let is_charge = |text: &str| {
        is_direct_charge(text)
            || charge_helpers
                .iter()
                .any(|h| text.contains(&format!("{h}(")) && ident_mentions(text, h))
    };
    let is_read = |text: &str| text.contains("read_exact");
    for (f, fn_line, g) in &fns {
        // Receipt in scope: a parameter or any statement names it.
        let param_receipt = cg
            .fn_at(&f.rel, *fn_line)
            .is_some_and(|id| cg.fns[id].params.iter().any(|p| p == "receipt"));
        let in_scope = param_receipt || !g.find(|t| ident_mentions(t, "receipt")).is_empty();
        if !in_scope {
            continue;
        }
        for ob in dataflow::uncharged_paths(g, &f.rel, &is_read, &is_charge) {
            out.push(Diagnostic {
                rule: "KVS-L019",
                path: f.rel.clone(),
                line: ob.read_line,
                message: format!(
                    "disk block read can reach the function exit without charging the \
                     ReadReceipt — the bench observability silently rots; escaping \
                     path: {}",
                    ob.witness
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Workspace;
    use crate::scan::SourceFile;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(rel, text)| SourceFile::scan(rel, text))
                .collect(),
            net_md: None,
            store_md: None,
        }
    }

    fn run_on(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let _ms = run(&ws_of(files), &mut out);
        out
    }

    #[test]
    fn inconsistent_lock_order_is_a_cycle() {
        let src = "pub fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); drop(gb); drop(ga); }\n\
                   pub fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); drop(ga); drop(gb); }\n";
        let out = run_on(&[("crates/net/src/x.rs", src)]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "KVS-L009");
        assert!(
            out[0].message.contains("net:a -> net:b"),
            "{}",
            out[0].message
        );
        assert!(
            out[0].message.contains("net:b -> net:a"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn consistent_order_and_temporaries_are_clean() {
        let src = "pub fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); drop(gb); drop(ga); }\n\
                   pub fn g(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); drop(gb); drop(ga); }\n\
                   pub fn h(s: &S) { s.a.lock().push(1); s.b.lock().push(2); }\n";
        assert!(run_on(&[("crates/net/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn spawn_closures_are_isolated_threads() {
        let src = "pub fn f(s: &S) { let g = s.registry.lock();\n\
                   g.push(std::thread::spawn(move || { let h = s.other.lock(); drop(h); }));\n\
                   drop(g); }\n\
                   pub fn k(s: &S) { let h = s.other.lock(); let g2 = s.registry.lock(); drop(g2); drop(h); }\n";
        assert!(run_on(&[("crates/net/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn call_propagation_reaches_one_level() {
        let src = "fn inner(s: &S) { let gb = s.b.lock(); drop(gb); }\n\
                   pub fn f(s: &S) { let ga = s.a.lock(); inner(s); drop(ga); }\n\
                   pub fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); drop(ga); drop(gb); }\n";
        let out = run_on(&[("crates/net/src/x.rs", src)]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(
            out[0].message.contains("via call to inner()"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn unbounded_and_undrained_channels_are_flagged() {
        let src = "pub fn leak() {\n    let (tx, rx) = crossbeam::channel::unbounded::<u64>();\n    tx.send(1).ok();\n}\n";
        let out = run_on(&[("crates/cluster/src/x.rs", src)]);
        assert_eq!(out.len(), 2, "{out:#?}");
        assert!(out.iter().all(|d| d.rule == "KVS-L010"));
        let src_ok = "pub fn ok() {\n    let (tx, rx) = crossbeam::channel::bounded::<u64>(8);\n    tx.send(1).ok();\n    while let Ok(v) = rx.recv() { drop(v); }\n}\n";
        assert!(run_on(&[("crates/cluster/src/x.rs", src_ok)]).is_empty());
    }

    #[test]
    fn dropped_stage_stamp_is_flagged() {
        let src = "fn reply() -> Frame { Frame { kind: FrameKind::Response, id: 7,\n\
                   stamps: [first, dequeued, 0, wall_ns()], payload: p } }\n";
        let out = run_on(&[("crates/net/src/server.rs", src)]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "KVS-L011");
        assert!(out[0].message.contains("in-db end"), "{}", out[0].message);
    }

    #[test]
    fn request_and_refusal_stamp_contracts_hold() {
        let src = "fn send() -> Frame { Frame { kind: FrameKind::Request,\n\
                   stamps: [issued, sent, seq, 0] } }\n\
                   fn refuse(kind: FrameKind) -> Frame { Frame { kind,\n\
                   stamps: [echo, wall_ns(), 0, 0] } }\n";
        assert!(run_on(&[("crates/net/src/master.rs", src)]).is_empty());
    }

    #[test]
    fn write_path_kinds_follow_their_stamp_conventions() {
        // Write/Rmw are request-shaped; WriteAck is response-shaped.
        let ok = "fn w() -> Frame { Frame { kind: FrameKind::Write,\n\
                  stamps: [issued, sent, seq, 0] } }\n\
                  fn r() -> Frame { Frame { kind: FrameKind::Rmw,\n\
                  stamps: [issued, sent, seq, 0] } }\n\
                  fn a() -> Frame { Frame { kind: FrameKind::WriteAck,\n\
                  stamps: [echo, dequeued, db_end, wall_ns()] } }\n";
        assert!(run_on(&[("crates/net/src/write_path.rs", ok)]).is_empty());
        let bad_write = "fn w() -> Frame { Frame { kind: FrameKind::Write,\n\
                         stamps: [issued, sent, seq, wall_ns()] } }\n";
        let out = run_on(&[("crates/net/src/write_path.rs", bad_write)]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "KVS-L011");
        assert!(out[0].message.contains("stamps[3]"), "{}", out[0].message);
        let bad_ack = "fn a() -> Frame { Frame { kind: FrameKind::WriteAck,\n\
                       stamps: [echo, dequeued, 0, wall_ns()] } }\n";
        let out = run_on(&[("crates/net/src/write_path.rs", bad_ack)]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "KVS-L011");
        assert!(out[0].message.contains("in-db end"), "{}", out[0].message);
    }

    #[test]
    fn wildcard_match_on_frame_kind_is_flagged() {
        let frame = "pub enum FrameKind { Request, Response, Busy, Expired }\n";
        let master = "fn on(kind: FrameKind) { match kind { FrameKind::Busy => {}, _ => {} } }\n";
        let out = run_on(&[
            ("crates/net/src/frame.rs", frame),
            ("crates/net/src/master.rs", master),
        ]);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, "KVS-L012");
        assert!(out[0].message.contains("Request"), "{}", out[0].message);
        let full = "fn on(kind: FrameKind) { match kind {\n\
                    FrameKind::Request => {}\n    FrameKind::Response => {}\n\
                    FrameKind::Busy => {}\n    FrameKind::Expired => {}\n} }\n";
        assert!(run_on(&[
            ("crates/net/src/frame.rs", frame),
            ("crates/net/src/master.rs", full),
        ])
        .is_empty());
    }

    #[test]
    fn nonblocking_zone_reaching_a_blocking_op_is_flagged_with_a_chain() {
        let src = "// LINT-ZONE: nonblocking\n\
                   fn tick(s: &S) { helper(s); }\n\
                   fn helper(s: &S) { s.rx.recv(); }\n";
        let out = run_on(&[("crates/net/src/master.rs", src)]);
        let l014: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L014").collect();
        assert_eq!(l014.len(), 1, "{out:#?}");
        assert_eq!(l014[0].line, 2);
        assert!(
            l014[0]
                .message
                .contains("crates/net/src/master.rs:2 → crates/net/src/master.rs:3"),
            "{}",
            l014[0].message
        );
        // The same chain without the anchor comment is nobody's business.
        let unzoned = "fn tick(s: &S) { helper(s); }\nfn helper(s: &S) { s.rx.recv(); }\n";
        assert!(run_on(&[("crates/net/src/master.rs", unzoned)])
            .iter()
            .all(|d| d.rule != "KVS-L014"));
    }

    #[test]
    fn guard_held_across_a_transitively_blocking_call_is_flagged() {
        let src = "fn push_out(s: &S) { s.stream.write_all(&s.buf); }\n\
                   pub fn f(s: &S) { let g = s.conn.lock(); push_out(s); drop(g); }\n";
        let out = run_on(&[("crates/net/src/master.rs", src)]);
        let l007: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L007").collect();
        assert_eq!(l007.len(), 1, "{out:#?}");
        assert_eq!(l007[0].line, 2);
        assert!(
            l007[0].message.contains("push_out")
                && l007[0].message.contains("write_all")
                && l007[0]
                    .message
                    .contains("crates/net/src/master.rs:2 → crates/net/src/master.rs:1"),
            "{}",
            l007[0].message
        );
    }

    #[test]
    fn rename_without_a_preceding_fsync_is_a_crash_ordering_violation() {
        let bad = "impl Manifest { pub fn commit(&self, dir: &Path) -> io::Result<()> {\n\
                   let tmp = dir.join(TMP);\n\
                   fs::rename(&tmp, &dst)?;\n\
                   f.sync_data()?;\n\
                   File::open(dir)?.sync_all()?;\n\
                   Ok(())\n\
                   } }\n";
        let out = run_on(&[("crates/store/src/manifest.rs", bad)]);
        let l015: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L015").collect();
        assert_eq!(l015.len(), 1, "{out:#?}");
        assert_eq!(l015[0].line, 3);
        assert!(
            l015[0].message.contains("without a preceding fsync")
                && l015[0].message.contains("crates/store/src/manifest.rs:2"),
            "{}",
            l015[0].message
        );
        let good = "impl Manifest { pub fn commit(&self, dir: &Path) -> io::Result<()> {\n\
                    let tmp = dir.join(TMP);\n\
                    { let mut f = open(&tmp)?; f.write_all(&self.encode())?; f.sync_data()?; }\n\
                    fs::rename(&tmp, &dst)?;\n\
                    File::open(dir)?.sync_all()?;\n\
                    Ok(())\n\
                    } }\n";
        assert!(run_on(&[("crates/store/src/manifest.rs", good)])
            .iter()
            .all(|d| d.rule != "KVS-L015"));
    }

    #[test]
    fn gc_before_the_manifest_commit_is_a_crash_ordering_violation() {
        let bad = "impl Durable { fn flush(&mut self) -> io::Result<()> {\n\
                   let sst = write_sst(&self.dir, gen, &cells)?;\n\
                   fs::remove_file(&old)?;\n\
                   self.manifest.commit(&self.dir)?;\n\
                   Ok(())\n\
                   } }\n\
                   fn write_sst(dir: &Path) -> io::Result<()> {\n\
                   let f = open(dir)?; f.sync_data()?; Ok(())\n\
                   }\n";
        let out = run_on(&[("crates/store/src/durable.rs", bad)]);
        let l015: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L015").collect();
        assert_eq!(l015.len(), 1, "{out:#?}");
        assert_eq!(l015[0].line, 3);
        assert!(l015[0].message.contains("GC"), "{}", l015[0].message);
        // One level of call propagation: `write_sst` counts as the sync.
        let good = bad.replace(
            "let sst = write_sst(&self.dir, gen, &cells)?;\nfs::remove_file(&old)?;",
            "let sst = write_sst(&self.dir, gen, &cells)?;",
        );
        assert!(run_on(&[("crates/store/src/durable.rs", &good)])
            .iter()
            .all(|d| d.rule != "KVS-L015"));
    }

    #[test]
    fn fresh_deadline_in_a_frame_literal_is_flagged() {
        let bad = "fn send() -> Frame { Frame { kind: FrameKind::Request,\n\
                   stamps: [issued, sent, seq, 0], deadline: 0 } }\n";
        let out = run_on(&[("crates/net/src/master.rs", bad)]);
        let l016: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L016").collect();
        assert_eq!(l016.len(), 1, "{out:#?}");
        assert!(l016[0].message.contains("fresh `0`"), "{}", l016[0].message);
        let ok = "fn relay(incoming: &Frame) -> Frame { Frame { kind: FrameKind::Request,\n\
                  stamps: [issued, sent, seq, 0], deadline: incoming.deadline } }\n";
        assert!(run_on(&[("crates/net/src/master.rs", ok)])
            .iter()
            .all(|d| d.rule != "KVS-L016"));
    }

    #[test]
    fn deadline_parameters_are_checked_at_their_call_sites() {
        let src =
            "fn send(node: u32, deadline: u64) -> Frame { Frame { kind: FrameKind::Request,\n\
                   stamps: [issued, sent, seq, 0], deadline } }\n\
                   fn go() { send(7, 0); }\n\
                   fn ok(d: u64) { send(7, d); }\n";
        let out = run_on(&[("crates/net/src/master.rs", src)]);
        let l016: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L016").collect();
        assert_eq!(l016.len(), 1, "{out:#?}");
        assert_eq!(
            l016[0].line, 3,
            "the violation is the call site, not the literal"
        );
        assert!(
            l016[0].message.contains("send") && l016[0].message.contains("`0`"),
            "{}",
            l016[0].message
        );
    }

    // ---- KVS-L017: untrusted wire-input taint -----------------------

    #[test]
    fn wire_length_reaching_allocation_unvalidated_is_flagged() {
        let bad = "pub fn read_frame(buf: &[u8]) -> Vec<u8> {\n\
                   let len = u32::from_be_bytes(buf[0..4].try_into().expect(\"4\")) as usize;\n\
                   let payload = Vec::with_capacity(len);\n\
                   payload }\n";
        let out = run_on(&[("crates/net/src/frame.rs", bad)]);
        let l017: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L017").collect();
        assert_eq!(l017.len(), 1, "{out:#?}");
        assert_eq!(l017[0].line, 3);
        assert!(
            l017[0].message.contains("allocation"),
            "{}",
            l017[0].message
        );
        assert!(
            l017[0]
                .message
                .contains("crates/net/src/frame.rs:2 → crates/net/src/frame.rs:3"),
            "witness chain should run source to sink: {}",
            l017[0].message
        );
    }

    #[test]
    fn bounds_check_sanitizes_the_wire_length() {
        let ok = "pub fn read_frame(buf: &[u8]) -> Result<Vec<u8>, Error> {\n\
                  let len = u32::from_be_bytes(buf[0..4].try_into().expect(\"4\"));\n\
                  if len > MAX_PAYLOAD { return Err(Error::TooLarge(len)); }\n\
                  let payload = Vec::with_capacity(len as usize);\n\
                  Ok(payload) }\n";
        let out = run_on(&[("crates/net/src/frame.rs", ok)]);
        assert!(
            out.iter().all(|d| d.rule != "KVS-L017"),
            "validated length must not be flagged: {out:#?}"
        );
    }

    #[test]
    fn non_wire_files_are_out_of_l017_scope() {
        let src = "pub fn decode(buf: &[u8]) -> Vec<u8> {\n\
                   let len = u32::from_be_bytes(buf[0..4].try_into().expect(\"4\")) as usize;\n\
                   Vec::with_capacity(len) }\n";
        // Same shape, but store-side block decode works on locally
        // produced data — a wire file elsewhere keeps the pass alive.
        let out = run_on(&[
            ("crates/store/src/block.rs", src),
            ("crates/net/src/frame.rs", "pub fn ping() {}\n"),
        ]);
        assert!(out.iter().all(|d| d.rule != "KVS-L017"), "{out:#?}");
    }

    // ---- KVS-L018: determinism escape -------------------------------

    #[test]
    fn tracked_wall_clock_value_into_zone_call_is_flagged() {
        let zone = "pub fn advance(model: &mut Model, now: u64) { model.t = now; }\n";
        let live = "pub fn tick(model: &mut Model) {\n\
                    let host_now = wall_ns();\n\
                    advance(model, host_now); }\n";
        let out = run_on(&[
            ("crates/simcore/src/model.rs", zone),
            ("crates/net/src/server.rs", live),
        ]);
        let l018: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L018").collect();
        assert_eq!(l018.len(), 1, "{out:#?}");
        assert_eq!(l018[0].path, "crates/net/src/server.rs");
        assert_eq!(l018[0].line, 3);
        assert!(
            l018[0].message.contains("host_now")
                && l018[0]
                    .message
                    .contains("crates/net/src/server.rs:2 → crates/net/src/server.rs:3"),
            "{}",
            l018[0].message
        );
    }

    #[test]
    fn zone_calling_a_time_returning_helper_is_flagged() {
        let live = "pub fn host_nanos() -> u64 { wall_ns() }\n";
        let zone = "pub fn advance(model: &mut Model) { model.t = host_nanos(); }\n";
        let out = run_on(&[
            ("crates/net/src/server.rs", live),
            ("crates/simcore/src/model.rs", zone),
        ]);
        let l018: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L018").collect();
        assert_eq!(l018.len(), 1, "{out:#?}");
        assert_eq!(l018[0].path, "crates/simcore/src/model.rs");
        assert!(
            l018[0].message.contains("host_nanos"),
            "{}",
            l018[0].message
        );
    }

    #[test]
    fn sim_parameters_and_constructors_stay_clean() {
        // Passing a *sim-derived* value into a zone is fine, and so is
        // wrapping a measured duration via a `from_*` constructor (the
        // sanctioned live→sim bridge).
        let zone = "pub fn advance(model: &mut Model, now: u64) { model.t = now; }\n\
                    impl SimTime { pub fn from_nanos(n: u64) -> SimTime { SimTime(n) } }\n";
        let live = "pub fn tick(model: &mut Model, sim_now: u64) {\n\
                    advance(model, sim_now);\n\
                    let w = wall_ns();\n\
                    let _bridge = SimTime::from_nanos(w); }\n";
        let out = run_on(&[
            ("crates/simcore/src/model.rs", zone),
            ("crates/net/src/server.rs", live),
        ]);
        assert!(out.iter().all(|d| d.rule != "KVS-L018"), "{out:#?}");
    }

    // ---- KVS-L019: receipt accounting -------------------------------

    #[test]
    fn read_escaping_before_the_charge_is_flagged_with_a_path() {
        let bad =
            "pub fn load(file: &mut File, receipt: &mut ReadReceipt) -> io::Result<Vec<u8>> {\n\
                   let mut buf = vec![0u8; 64];\n\
                   file.read_exact(&mut buf)?;\n\
                   if fnv64(&buf) != expected { return Err(corrupt()); }\n\
                   receipt.disk_blocks_read += 1;\n\
                   Ok(buf) }\n";
        let out = run_on(&[("crates/store/src/sst_file.rs", bad)]);
        let l019: Vec<_> = out.iter().filter(|d| d.rule == "KVS-L019").collect();
        assert_eq!(l019.len(), 1, "{out:#?}");
        assert_eq!(l019[0].line, 3);
        assert!(
            l019[0]
                .message
                .contains("crates/store/src/sst_file.rs:3 → crates/store/src/sst_file.rs:4"),
            "the escaping path should pass the early return: {}",
            l019[0].message
        );
    }

    #[test]
    fn charging_before_branching_satisfies_every_path() {
        let ok =
            "pub fn load(file: &mut File, receipt: &mut ReadReceipt) -> io::Result<Vec<u8>> {\n\
                  let mut buf = vec![0u8; 64];\n\
                  file.read_exact(&mut buf)?;\n\
                  receipt.disk_blocks_read += 1;\n\
                  if fnv64(&buf) != expected { return Err(corrupt()); }\n\
                  Ok(buf) }\n";
        assert!(run_on(&[("crates/store/src/sst_file.rs", ok)])
            .iter()
            .all(|d| d.rule != "KVS-L019"));
    }

    #[test]
    fn receiptless_functions_and_helper_charges_are_clean() {
        // No receipt in scope → the rule measures accounting
        // completeness, not coverage; and charging through a same-scope
        // helper counts.
        let src = "pub fn raw(file: &mut File) -> io::Result<()> {\n\
                   let mut b = [0u8; 8]; file.read_exact(&mut b)?; Ok(()) }\n\
                   pub fn charge(receipt: &mut ReadReceipt) { receipt.disk_blocks_read += 1; }\n\
                   pub fn load(file: &mut File, receipt: &mut ReadReceipt) -> io::Result<()> {\n\
                   let mut b = [0u8; 8];\n\
                   file.read_exact(&mut b)?;\n\
                   charge(receipt);\n\
                   Ok(()) }\n";
        assert!(run_on(&[("crates/store/src/durable.rs", src)])
            .iter()
            .all(|d| d.rule != "KVS-L019"));
    }
}
