//! Gen/kill worklist dataflow over the per-function CFGs, made
//! interprocedural with bottom-up function summaries.
//!
//! Layers, bottom to top:
//!
//! * [`fixpoint`] — a forward worklist engine over a [`Cfg`]'s blocks:
//!   facts are interned `u32`s, the join is set union (a may-analysis),
//!   and the caller supplies a monotone transfer function. The pure
//!   gen/kill form ([`forward_gen_kill`]) is what the property suite
//!   exercises: `out[n] = (in[n] \ kill[n]) ∪ gen[n]`, `in[n] = ⋃
//!   out[pred]`, iterated to a fixed point.
//! * **Taint analysis** ([`TaintSummaries`]) — facts are `(origin,
//!   variable)` pairs: the origin is either a function parameter or an
//!   in-function source site (a statement matching a source pattern
//!   such as `from_be_bytes(`, or one annotated `// LINT-TAINT-SOURCE`).
//!   Assignments propagate taint from right to left, reassignment from
//!   a clean expression kills, and a *validated bound* kills the
//!   compared variable: a comparison against an ALL-CAPS constant, an
//!   integer literal or `::MAX`/`::MIN` (`if len > MAX_PAYLOAD {…}`),
//!   or a `.min(…)`/`.clamp(…)` call. Sinks are configured per rule
//!   ([`TaintSpec`]): allocation calls, slice indexing, loop bounds.
//! * **Summaries** — per function: which parameters flow to the return
//!   value unsanitized (`param_to_return`), which parameters reach a
//!   sink (`param_sink`, the param→sink *obligation* a caller
//!   discharges by sanitizing the argument), and whether the return
//!   value carries source taint (`returns_source`). Summaries are
//!   computed bottom-up over an SCC condensation of the workspace call
//!   graph (Tarjan), iterating each strongly-connected component to a
//!   fixed point so mutual recursion converges; only resolved
//!   `Free`/`SelfMethod`/`Path` edges are followed (may-call `Method`
//!   edges alias bare names workspace-wide and would drown the
//!   analysis in false flows — same boundary as KVS-L014).
//! * **Must-reach obligations** ([`uncharged_paths`]) — the dual shape
//!   KVS-L019 needs: a statement performing a disk block read creates
//!   an obligation that every path to the exit must discharge at a
//!   charge statement; the read's own `?` error edge is exempt (a
//!   failed read moved no bytes). Implemented on the same gen/kill
//!   engine: the obligation is seeded on the read's non-exit,
//!   non-charge successors, killed at charges, and any obligation
//!   alive at the exit is a violation.
//!
//! Witnesses are rendered as `file:line → file:line` chains, same as
//! the call-graph rules; interprocedural flows splice the callee's
//! chain onto the caller's call site.
//!
//! Precision boundaries (documented so nobody re-learns them): the
//! analysis is flow-sensitive but path-insensitive — a bound check
//! sanitizes both branches below it; expression-position branches are
//! one CFG node, so taint through them is joined; `spawn` closure
//! bodies are flattened into their statement (no separate summary);
//! struct-field taint is tracked by field *name* within one function
//! and crosses function boundaries only through arguments and returns.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, EdgeKind};
use crate::cfg::{self, Cfg};
use crate::rules::Workspace;
use crate::scan::SourceFile;
use crate::tree;

/// A set of interned dataflow facts.
pub type FactSet = BTreeSet<u32>;

/// Per-node fixed-point states: `ins[n]` is the join over predecessor
/// outs, `outs[n] = transfer(n, ins[n])`. Index `cfg.exit` is the
/// synthetic exit (its in-state is the "what survives to return" set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flow {
    /// In-state per node (`0 ..= exit`).
    pub ins: Vec<FactSet>,
    /// Out-state per node (`outs[exit] == ins[exit]`).
    pub outs: Vec<FactSet>,
}

/// Runs a forward may-analysis to a fixed point over `succ`/`exit`
/// (the shape of [`Cfg::succ`]/[`Cfg::exit`]). `transfer` must be
/// monotone in its fact-set argument; with finitely many facts the
/// worklist then terminates. A hard iteration valve (documented, never
/// hit by a monotone transfer) bounds adversarial inputs.
pub fn fixpoint(
    succ: &[Vec<usize>],
    exit: usize,
    transfer: impl Fn(usize, &FactSet) -> FactSet,
) -> Flow {
    let n = exit + 1;
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, ss) in succ.iter().enumerate() {
        for &v in ss {
            if v < n {
                preds[v].push(u);
            }
        }
    }
    let mut ins = vec![FactSet::new(); n];
    let mut outs = vec![FactSet::new(); n];
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();
    // Safety valve: a monotone transfer changes each node's out-state
    // at most once per fact, so pops are bounded by n * (facts + 1);
    // this cap only matters for a buggy, oscillating transfer.
    let mut budget = 1_000_000usize;
    while let Some(u) = work.pop_front() {
        queued[u] = false;
        if budget == 0 {
            break;
        }
        budget -= 1;
        let mut inp = FactSet::new();
        for &p in &preds[u] {
            inp.extend(outs[p].iter().copied());
        }
        let out = if u == exit {
            inp.clone()
        } else {
            transfer(u, &inp)
        };
        ins[u] = inp;
        if out != outs[u] {
            outs[u] = out;
            let ss: &[usize] = if u == exit { &[] } else { &succ[u] };
            for &v in ss {
                if v < n && !queued[v] {
                    queued[v] = true;
                    work.push_back(v);
                }
            }
        }
    }
    Flow { ins, outs }
}

/// The pure gen/kill form: `out[n] = (in[n] \ kill[n]) ∪ gen[n]`.
pub fn forward_gen_kill(
    succ: &[Vec<usize>],
    exit: usize,
    gen: &[FactSet],
    kill: &[FactSet],
) -> Flow {
    fixpoint(succ, exit, |u, inp| {
        let mut out: FactSet = inp.difference(&kill[u]).copied().collect();
        out.extend(gen[u].iter().copied());
        out
    })
}

/// Where a taint fact came from.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    /// The `i`-th parameter of the function under analysis.
    Param(usize),
    /// A source statement inside the function: line + what matched
    /// (a source pattern, a tainted callee return, or the
    /// `LINT-TAINT-SOURCE` annotation).
    Source {
        /// 1-based line of the source statement.
        line: usize,
        /// Human-readable description of the source.
        what: String,
    },
}

/// A taint fact: this `var` carries taint from `origin`.
pub type Fact = (Origin, String);

/// What a rule considers a source and a sink.
pub struct TaintSpec<'a> {
    /// Substring patterns whose presence in an assignment's right-hand
    /// side marks the defined variables as tainted
    /// (e.g. `"from_be_bytes("`).
    pub sources: &'a [&'a str],
    /// `(pattern, kind)` sink calls: a tainted variable inside the
    /// argument list of `pattern` is a violation of kind `kind`
    /// (e.g. `("with_capacity(", "allocation")`).
    pub sink_calls: &'a [(&'a str, &'a str)],
    /// Also treat slice indexing (`buf[.. v]`) and loop bounds
    /// (`for`/`while` headers mentioning a tainted variable) as sinks.
    pub index_sinks: bool,
}

/// A sink reached by tainted data, with the in-function witness chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkHit {
    /// 1-based line of the sink statement (in the function's file).
    pub line: usize,
    /// Sink kind, e.g. `allocation (Vec::with_capacity)`.
    pub kind: String,
    /// `file:line → file:line` chain from the taint's origin to the
    /// sink; interprocedural hits splice the callee chain on.
    pub chain: String,
}

/// A source-originated flow that reached a sink — a direct violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSink {
    /// Line of the source statement.
    pub source_line: usize,
    /// What made it a source.
    pub what: String,
    /// The sink it reached.
    pub hit: SinkHit,
}

/// One function's taint summary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FnTaint {
    /// `param_to_return[i]`: parameter `i` flows to the return value
    /// without passing a validated bound.
    pub param_to_return: Vec<bool>,
    /// The return value carries taint originating *inside* the
    /// function (or a callee), e.g. a wire decode or a clock read.
    pub returns_source: bool,
    /// `param_sink[i]`: parameter `i` reaches a sink unsanitized — the
    /// obligation a caller discharges by bounding the argument.
    pub param_sink: Vec<Option<SinkHit>>,
    /// Source→sink flows wholly inside (or through callees of) this
    /// function: the rule's direct findings.
    pub source_sinks: Vec<SourceSink>,
}

/// Bottom-up taint summaries for every function in the call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSummaries {
    /// Indexed like [`CallGraph::fns`].
    pub by_fn: Vec<FnTaint>,
}

// ---------------------------------------------------------------------
// Statement parsing (over the CFG's word-separated statement text).

/// Iterates the identifier words of `text` as `(byte_start, word)`,
/// skipping double-quoted string literals.
fn idents(text: &str) -> Vec<(usize, &str)> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut in_str = false;
    while i < b.len() {
        let c = b[i] as char;
        if in_str {
            if c == '\\' {
                i += 2;
                continue;
            }
            if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        if c == '"' {
            in_str = true;
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((start, &text[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

const KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "if", "else", "match", "for", "while", "loop", "in", "as", "move",
    "return", "break", "continue", "fn", "pub", "self", "Self", "true", "false", "await",
];

fn is_var_word(w: &str) -> bool {
    !KEYWORDS.contains(&w) && w.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
}

/// Whether `word` occurs in `text` as a whole identifier.
fn mentions(text: &str, word: &str) -> bool {
    idents(text).iter().any(|(_, w)| *w == word)
}

/// Splits `text` at the top-level assignment operator, returning
/// `(lhs, rhs, compound)`. `compound` is true for `+=`-style operators
/// (the left side keeps feeding the right).
fn split_assign(text: &str) -> Option<(&str, &str, bool)> {
    let b = text.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        if in_str {
            if c == '\\' {
                i += 2;
                continue;
            }
            if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            '"' => in_str = true,
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            '=' if depth == 0 => {
                let next = b.get(i + 1).map(|&c| c as char);
                let prev = i.checked_sub(1).map(|j| b[j] as char);
                if next == Some('=') || next == Some('>') {
                    i += 2;
                    continue;
                }
                match prev {
                    // ==, <=, >=, !=, ..= are comparisons / ranges.
                    Some('=') | Some('<') | Some('>') | Some('!') | Some('.') => {}
                    // +=, -=, *=, /=, %=, &=, |=, ^=, <<=, >>=
                    Some('+') | Some('-') | Some('*') | Some('/') | Some('%') | Some('&')
                    | Some('|') | Some('^') => {
                        return Some((&text[..i - 1], &text[i + 1..], true));
                    }
                    _ => return Some((&text[..i], &text[i + 1..], false)),
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Variables defined (written) by the statement: the lowercase
/// identifiers of the assignment pattern (`let (a, b) = …`, `x = …`,
/// `*s = …`, `self.field = …` → `field`).
fn defs_of(lhs: &str) -> Vec<String> {
    idents(lhs)
        .iter()
        .filter(|(_, w)| is_var_word(w))
        .map(|(_, w)| w.to_string())
        .collect()
}

/// True when `w` looks like a bound: an ALL-CAPS constant
/// (`MAX_PAYLOAD`), or a numeric-literal-looking word (`0u64`).
fn is_bound_word(w: &str) -> bool {
    (w.len() >= 2
        && w.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
        || w.starts_with(|c: char| c.is_ascii_digit())
}

/// Variables sanitized by this statement: compared against a validated
/// bound (`v > MAX_PAYLOAD`, `LIMIT >= v`, `v < 16`, `x::MAX > v`) or
/// clamped (`v.min(…)`, `v.clamp(…)`). Equality comparisons do not
/// sanitize — checking a checksum is not bounding a length.
fn sanitized_vars(text: &str, candidates: &BTreeSet<&str>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    if candidates.is_empty() {
        return out;
    }
    let b = text.as_bytes();
    for (start, w) in idents(text) {
        if !candidates.contains(w) {
            continue;
        }
        let end = start + w.len();
        // v.min( / v.clamp(
        let rest = &text[end..];
        if rest.starts_with(".min(") || rest.starts_with(".clamp(") {
            out.insert(w.to_string());
            continue;
        }
        // A comparison operator adjacent to the variable, with a
        // bound-looking word on the far side (scan a short window).
        let cmp_after = rest.starts_with('<') && !rest.starts_with("<<")
            || rest.starts_with('>') && !rest.starts_with(">>");
        let before = &text[..start];
        let cmp_before = (before.ends_with('<')
            || before.ends_with('>')
            || before.ends_with("<=")
            || before.ends_with(">="))
            && !before.ends_with("<<")
            && !before.ends_with(">>")
            // `Vec<u8>`-style generics: `<` glued to a type name.
            && !before.ends_with("::<");
        if cmp_after {
            let after_op = rest.trim_start_matches(['<', '>', '=']);
            let mut w_end = after_op.len().min(48);
            while w_end > 0 && !after_op.is_char_boundary(w_end) {
                w_end -= 1;
            }
            let window = &after_op[..w_end];
            if window.contains("::MAX") || window.contains("::MIN") {
                out.insert(w.to_string());
                continue;
            }
            if idents(window)
                .first()
                .is_some_and(|(_, fw)| is_bound_word(fw))
                || window.starts_with(|c: char| c.is_ascii_digit())
            {
                out.insert(w.to_string());
                continue;
            }
        }
        if cmp_before {
            let op_start = before.trim_end_matches(['<', '>', '=']).len();
            let mut window_start = op_start.saturating_sub(48);
            while window_start < op_start && !text.is_char_boundary(window_start) {
                window_start += 1;
            }
            let window = &text[window_start..op_start];
            if window.contains("::MAX") || window.contains("::MIN") {
                out.insert(w.to_string());
                continue;
            }
            if idents(window)
                .last()
                .is_some_and(|(_, lw)| is_bound_word(lw))
            {
                out.insert(w.to_string());
                continue;
            }
        }
        let _ = b;
    }
    out
}

/// A call site parsed out of a statement: name + top-level argument
/// texts. Glued rendering guarantees `name(` with no space between.
#[derive(Debug)]
struct ParsedCall {
    name: String,
    args: Vec<String>,
}

fn parse_calls(text: &str) -> Vec<ParsedCall> {
    let b = text.as_bytes();
    let mut out = Vec::new();
    for (start, w) in idents(text) {
        let end = start + w.len();
        if b.get(end) != Some(&b'(') || KEYWORDS.contains(&w) {
            continue;
        }
        // Matching paren scan.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut close = None;
        for (j, &c) in b.iter().enumerate().skip(end) {
            let c = c as char;
            if in_str {
                if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        let inner = &text[end + 1..close];
        // Split top-level commas.
        let mut args = Vec::new();
        let mut depth = 0i32;
        let mut in_str = false;
        let mut seg_start = 0;
        for (j, c) in inner.char_indices() {
            if in_str {
                if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                ',' if depth == 0 => {
                    args.push(inner[seg_start..j].to_string());
                    seg_start = j + 1;
                }
                _ => {}
            }
        }
        if seg_start < inner.len() {
            args.push(inner[seg_start..].to_string());
        }
        out.push(ParsedCall {
            name: w.to_string(),
            args,
        });
    }
    out
}

/// True when `v` appears inside a bracket-indexing region of `text`
/// (`buf[hdr + v]`, `buf[v ..]`), excluding `vec![…]` (an allocation
/// sink, reported as such).
fn indexed_by(text: &str, v: &str) -> bool {
    let b = text.as_bytes();
    for (start, w) in idents(text) {
        if w != v {
            continue;
        }
        // Walk backwards counting bracket depth from the statement
        // start; inside at least one `[` that is not `vec![`.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut vec_macro_depth: Vec<bool> = Vec::new();
        for (j, &c) in b.iter().enumerate() {
            if j >= start {
                break;
            }
            let c = c as char;
            if in_str {
                if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '[' => {
                    depth += 1;
                    vec_macro_depth.push(j >= 4 && &text[j - 4..j] == "vec!");
                }
                ']' => {
                    depth -= 1;
                    vec_macro_depth.pop();
                }
                _ => {}
            }
        }
        if depth > 0 && vec_macro_depth.iter().any(|&is_vec| !is_vec) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Per-function taint analysis.

/// Per-file parse products, built once and shared across functions.
pub struct FileCtx<'a> {
    file: &'a SourceFile,
    trees: Vec<tree::Tree>,
}

/// Builds the per-file token trees for every workspace file, keyed by
/// relative path.
pub fn file_contexts(ws: &Workspace) -> BTreeMap<&str, FileCtx<'_>> {
    ws.files
        .iter()
        .map(|f| {
            (
                f.rel.as_str(),
                FileCtx {
                    file: f,
                    trees: tree::build(&f.text, &f.toks),
                },
            )
        })
        .collect()
}

/// The CFG for call-graph function `fid`, or `None` for spawn roots
/// (closure bodies are flattened into their enclosing statement) and
/// functions whose file is missing.
fn cfg_for(cg: &CallGraph, fid: usize, ctxs: &BTreeMap<&str, FileCtx<'_>>) -> Option<Cfg> {
    let info = &cg.fns[fid];
    if info.is_spawn_root {
        return None;
    }
    let ctx = ctxs.get(info.file.as_str())?;
    let src = &ctx.file.text;
    let def = tree::functions(src, &ctx.file.toks, &ctx.trees)
        .into_iter()
        .find(|d| d.line == info.line && d.name == info.name)?;
    Some(cfg::build(src, &ctx.file.toks, def.body))
}

struct StmtInfo {
    line: usize,
    defs: Vec<String>,
    rhs: String,
    compound: bool,
    annotated_source: bool,
    calls: Vec<ParsedCall>,
}

fn stmt_infos(g: &Cfg, file: &SourceFile) -> Vec<StmtInfo> {
    g.stmts
        .iter()
        .map(|s| {
            let (lhs, rhs, compound) = match split_assign(&s.text) {
                Some((l, r, c)) => (l, r, c),
                None => ("", s.text.as_str(), false),
            };
            // `// LINT-TAINT-SOURCE` on the statement line or the line
            // above marks the defined variables as tainted regardless
            // of the right-hand side.
            let annotated_source = [s.line, s.line.saturating_sub(1)]
                .iter()
                .filter_map(|&l| file.lines.get(l.checked_sub(1)?))
                .any(|li| li.comment.contains("LINT-TAINT-SOURCE"));
            StmtInfo {
                line: s.line,
                defs: defs_of(lhs),
                rhs: rhs.to_string(),
                compound,
                annotated_source,
                calls: parse_calls(&s.text),
            }
        })
        .collect()
}

/// Interner for `(origin, var)` facts, local to one function analysis.
#[derive(Default)]
struct FactTable {
    ids: BTreeMap<Fact, u32>,
    facts: Vec<Fact>,
}

impl FactTable {
    fn intern(&mut self, f: Fact) -> u32 {
        if let Some(&id) = self.ids.get(&f) {
            return id;
        }
        let id = self.facts.len() as u32;
        self.ids.insert(f.clone(), id);
        self.facts.push(f);
        id
    }
}

/// Everything the analysis of one function produces.
struct FnAnalysis {
    flow: Flow,
    table: FactTable,
    summary: FnTaint,
}

/// Edges of a statement keyed by line: resolved callees at that line.
fn callees_at<'a>(
    cg: &'a CallGraph,
    fid: usize,
    line: usize,
    name: &str,
) -> impl Iterator<Item = usize> + 'a {
    let name = name.to_string();
    cg.edges[fid]
        .iter()
        .filter(move |e| {
            e.line == line
                && e.name == name
                && matches!(
                    e.kind,
                    EdgeKind::Free | EdgeKind::SelfMethod | EdgeKind::Path
                )
        })
        .map(|e| e.callee)
}

/// Runs the taint analysis for one function against the current
/// summary table, producing its flow, fact table and (new) summary.
#[allow(clippy::too_many_lines)]
fn analyze_fn(
    cg: &CallGraph,
    fid: usize,
    g: &Cfg,
    infos: &[StmtInfo],
    spec: &TaintSpec<'_>,
    summaries: &[FnTaint],
) -> FnAnalysis {
    let info = &cg.fns[fid];
    let file = info.file.as_str();
    let nparams = info.params.len();

    // Pre-intern every fact the transfer can ever generate, so the
    // closure only reads the table. Facts: (Param(i), var) and
    // (Source{line, what}, var) for every var defined anywhere plus
    // the parameters themselves.
    let mut table = FactTable::default();
    let mut param_seed = FactSet::new();
    for (i, p) in info.params.iter().enumerate() {
        param_seed.insert(table.intern((Origin::Param(i), p.clone())));
    }
    // Collect (node, defs, origin) gen obligations in a pre-pass; the
    // data-dependent part (taint through assignments and call returns)
    // happens in the transfer.
    #[derive(Clone)]
    struct NodeGen {
        source_origins: Vec<Origin>,
    }
    let mut node_sources: Vec<NodeGen> = Vec::with_capacity(infos.len());
    for (n, si) in infos.iter().enumerate() {
        let mut source_origins = Vec::new();
        if n > 0 && !si.defs.is_empty() {
            for pat in spec.sources {
                if si.rhs.contains(pat) {
                    source_origins.push(Origin::Source {
                        line: si.line,
                        what: format!("`{}`", pat.trim_end_matches('(')),
                    });
                }
            }
            if si.annotated_source {
                source_origins.push(Origin::Source {
                    line: si.line,
                    what: "`LINT-TAINT-SOURCE` annotation".to_string(),
                });
            }
            // Calls whose summary says the return carries source taint.
            for c in &si.calls {
                for callee in callees_at(cg, fid, si.line, &c.name) {
                    if summaries[callee].returns_source {
                        source_origins.push(Origin::Source {
                            line: si.line,
                            what: format!("`{}()` (tainted return)", c.name),
                        });
                    }
                }
            }
        }
        node_sources.push(NodeGen { source_origins });
    }
    // Intern the full universe: every origin × every defined var.
    let mut all_origins: Vec<Origin> = (0..nparams).map(Origin::Param).collect();
    for ng in &node_sources {
        all_origins.extend(ng.source_origins.iter().cloned());
    }
    all_origins.sort();
    all_origins.dedup();
    let mut all_vars: BTreeSet<String> = info.params.iter().cloned().collect();
    for si in infos {
        all_vars.extend(si.defs.iter().cloned());
    }
    for o in &all_origins {
        for v in &all_vars {
            table.intern((o.clone(), v.clone()));
        }
    }

    let facts = table.facts.clone();
    let candidates: BTreeSet<&str> = all_vars.iter().map(String::as_str).collect();
    let sanitized_per_node: Vec<BTreeSet<String>> = g
        .stmts
        .iter()
        .map(|s| sanitized_vars(&s.text, &candidates))
        .collect();

    let fact_id = |o: &Origin, v: &str| -> Option<u32> {
        table.ids.get(&(o.clone(), v.to_string())).copied()
    };

    let transfer = |n: usize, inp: &FactSet| -> FactSet {
        if n == 0 {
            let mut out = inp.clone();
            out.extend(param_seed.iter().copied());
            return out;
        }
        let si = &infos[n];
        let sanitized = &sanitized_per_node[n];
        // Which origins taint the RHS under the in-state?
        let mut rhs_origins: Vec<Origin> = node_sources[n].source_origins.clone();
        let rhs_idents: Vec<&str> = idents(&si.rhs)
            .into_iter()
            .map(|(_, w)| w)
            .filter(|w| is_var_word(w) && !sanitized.contains(*w))
            .collect();
        for &f in inp.iter() {
            let (o, v) = &facts[f as usize];
            if rhs_idents.contains(&v.as_str()) {
                rhs_origins.push(o.clone());
            }
        }
        // Call returns carrying a tainted parameter through.
        for c in &si.calls {
            for callee in callees_at(cg, fid, si.line, &c.name) {
                let summ = &summaries[callee];
                for (i, arg) in c.args.iter().enumerate() {
                    if !summ.param_to_return.get(i).copied().unwrap_or(false) {
                        continue;
                    }
                    for &f in inp.iter() {
                        let (o, v) = &facts[f as usize];
                        if !sanitized.contains(v.as_str()) && mentions(arg, v) {
                            rhs_origins.push(o.clone());
                        }
                    }
                }
            }
        }
        rhs_origins.sort();
        rhs_origins.dedup();

        let mut out = FactSet::new();
        for &f in inp.iter() {
            let (_, v) = &facts[f as usize];
            // Kill: sanitized here, or strongly reassigned from a
            // clean RHS (compound assignment keeps the old taint).
            if sanitized.contains(v.as_str()) {
                continue;
            }
            if !si.compound && si.defs.contains(v) && rhs_origins.is_empty() {
                continue;
            }
            out.insert(f);
        }
        for o in &rhs_origins {
            for d in &si.defs {
                if sanitized.contains(d.as_str()) {
                    continue;
                }
                if let Some(id) = fact_id(o, d) {
                    out.insert(id);
                }
            }
        }
        out
    };

    let flow = fixpoint(&g.succ, g.exit, transfer);

    // --- Summary extraction ------------------------------------------
    let mut summary = FnTaint {
        param_to_return: vec![false; nparams],
        returns_source: false,
        param_sink: vec![None; nparams],
        source_sinks: Vec::new(),
    };

    // The chain witness for `fact` ending at `sink_node`: a successor
    // walk from the origin along nodes where the fact stays live.
    let chain_for = |fact: u32, sink_node: usize| -> String {
        let origin_node = match &facts[fact as usize].0 {
            Origin::Param(_) => 0,
            Origin::Source { line, .. } => {
                infos.iter().position(|si| si.line == *line).unwrap_or(0)
            }
        };
        // BFS restricted to nodes that carry the fact (or the origin).
        let mut prev: Vec<Option<usize>> = vec![None; g.exit + 1];
        let mut q = VecDeque::new();
        q.push_back(origin_node);
        let mut seen = vec![false; g.exit + 1];
        seen[origin_node] = true;
        while let Some(u) = q.pop_front() {
            if u == sink_node {
                break;
            }
            if u == g.exit {
                continue;
            }
            for &v in &g.succ[u] {
                // The fact may be *generated* at v (an assignment in
                // the def chain) rather than merely flowing through, so
                // accept either state.
                let carries = v == sink_node
                    || (v < g.exit
                        && (flow.ins[v].contains(&fact) || flow.outs[v].contains(&fact)));
                if v <= g.exit && !seen[v] && carries {
                    seen[v] = true;
                    prev[v] = Some(u);
                    q.push_back(v);
                }
            }
        }
        let mut path = vec![sink_node];
        while let Some(p) = prev[*path.last().expect("non-empty")] {
            path.push(p);
            if p == origin_node {
                break;
            }
        }
        path.reverse();
        g.witness(file, &path)
    };

    let mut pending: Vec<(Origin, SinkHit)> = Vec::new();
    let record_hit = |pending: &mut Vec<(Origin, SinkHit)>,
                      fact: u32,
                      node: usize,
                      kind: String,
                      spliced: Option<&str>| {
        let (o, _) = facts[fact as usize].clone();
        let mut chain = chain_for(fact, node);
        if let Some(callee_chain) = spliced {
            chain = format!("{chain} → {callee_chain}");
        }
        pending.push((
            o,
            SinkHit {
                line: infos[node].line,
                kind,
                chain,
            },
        ));
    };

    for (n, si) in infos.iter().enumerate().skip(1) {
        let inp = &flow.ins[n];
        let sanitized = &sanitized_per_node[n];
        let live: Vec<u32> = inp
            .iter()
            .copied()
            .filter(|&f| !sanitized.contains(facts[f as usize].1.as_str()))
            .collect();
        // Sink calls (allocation and friends) + `vec![…]`.
        for (pat, kind) in spec.sink_calls {
            let Some(pos) = g.stmts[n].text.find(pat) else {
                continue;
            };
            let after = &g.stmts[n].text[pos + pat.len()..];
            // Argument region: up to the matching close of the opener
            // the pattern ends with (`(` or `[`).
            let openc = pat.chars().next_back().unwrap_or('(');
            let closec = if openc == '[' { ']' } else { ')' };
            let mut depth = 1i32;
            let mut endix = after.len();
            for (j, c) in after.char_indices() {
                if c == openc || c == '(' || c == '[' {
                    depth += 1;
                } else if c == closec || c == ')' || c == ']' {
                    depth -= 1;
                    if depth == 0 {
                        endix = j;
                        break;
                    }
                }
            }
            let argtext = &after[..endix];
            for &f in &live {
                if mentions(argtext, &facts[f as usize].1) {
                    record_hit(&mut pending, f, n, format!("{kind} `{}…)`", pat), None);
                }
            }
            // Source directly inside the sink's arguments.
            for sp in spec.sources {
                if argtext.contains(sp) {
                    pending.push((
                        Origin::Source {
                            line: si.line,
                            what: format!("`{}`", sp.trim_end_matches('(')),
                        },
                        SinkHit {
                            line: si.line,
                            kind: format!("{kind} `{}…)`", pat),
                            chain: format!("{}:{}", file, si.line),
                        },
                    ));
                }
            }
        }
        if spec.index_sinks {
            let text = &g.stmts[n].text;
            let is_loop_header = text.starts_with("for ")
                || text.starts_with("while ")
                || text.starts_with("while(");
            for &f in &live {
                let v = &facts[f as usize].1;
                if is_loop_header && mentions(text, v) {
                    record_hit(&mut pending, f, n, "loop bound".to_string(), None);
                } else if indexed_by(text, v) {
                    record_hit(&mut pending, f, n, "slice index".to_string(), None);
                }
            }
        }
        // Interprocedural: passing a tainted argument into a callee
        // whose summary says that parameter reaches a sink.
        for c in &si.calls {
            for callee in callees_at(cg, fid, si.line, &c.name) {
                let callee_summ = summaries[callee].clone();
                for (i, arg) in c.args.iter().enumerate() {
                    let Some(hit) = callee_summ.param_sink.get(i).and_then(|h| h.as_ref()) else {
                        continue;
                    };
                    for &f in &live {
                        if mentions(arg, &facts[f as usize].1) {
                            record_hit(
                                &mut pending,
                                f,
                                n,
                                format!("{} (via `{}()`)", hit.kind, c.name),
                                Some(&hit.chain),
                            );
                        }
                    }
                }
            }
        }
    }

    for (o, hit) in pending {
        match o {
            Origin::Param(i) => {
                if summary.param_sink[i].is_none() {
                    summary.param_sink[i] = Some(hit);
                }
            }
            Origin::Source { line, what } => summary.source_sinks.push(SourceSink {
                source_line: line,
                what,
                hit,
            }),
        }
    }

    // Returns: explicit `return <expr>` plus the highest-id node with
    // an exit edge (the tail expression under fall-through lowering).
    let mut return_nodes: Vec<usize> = (1..g.stmts.len())
        .filter(|&n| g.stmts[n].text.starts_with("return"))
        .collect();
    if let Some(tail) = (1..g.stmts.len())
        .rev()
        .find(|&n| g.succ[n].contains(&g.exit) && !g.stmts[n].text.starts_with("return"))
    {
        return_nodes.push(tail);
    }
    for n in return_nodes {
        let text = &g.stmts[n].text;
        let sanitized = &sanitized_per_node[n];
        for sp in spec.sources {
            if text.contains(sp) {
                summary.returns_source = true;
            }
        }
        if node_sources[n]
            .source_origins
            .iter()
            .any(|o| matches!(o, Origin::Source { .. }))
        {
            summary.returns_source = true;
        }
        for &f in flow.ins[n].iter() {
            let (o, v) = &facts[f as usize];
            if sanitized.contains(v.as_str()) || !mentions(text, v) {
                continue;
            }
            match o {
                Origin::Param(i) => summary.param_to_return[*i] = true,
                Origin::Source { .. } => summary.returns_source = true,
            }
        }
    }

    FnAnalysis {
        flow,
        table,
        summary,
    }
}

// ---------------------------------------------------------------------
// SCC condensation + bottom-up summary computation.

/// Tarjan SCCs of the resolved call graph, returned in reverse
/// topological order (callees before callers) — the order bottom-up
/// summary computation wants.
pub fn sccs(cg: &CallGraph) -> Vec<Vec<usize>> {
    let n = cg.fns.len();
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|u| {
            let mut vs: Vec<usize> = cg.edges[u]
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        EdgeKind::Free | EdgeKind::SelfMethod | EdgeKind::Path
                    )
                })
                .map(|e| e.callee)
                .collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        })
        .collect();
    // Iterative Tarjan.
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<usize>> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (u, ref mut ei)) = call.last_mut() {
            if *ei == 0 {
                index[u] = next_index;
                low[u] = next_index;
                next_index += 1;
                stack.push(u);
                on_stack[u] = true;
            }
            if *ei < adj[u].len() {
                let v = adj[u][*ei];
                *ei += 1;
                if index[v] == usize::MAX {
                    call.push((v, 0));
                } else if on_stack[v] {
                    low[u] = low[u].min(index[v]);
                }
            } else {
                if low[u] == index[u] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == u {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[u]);
                }
            }
        }
    }
    // Tarjan emits SCCs in reverse topological order already.
    out
}

impl TaintSummaries {
    /// Computes bottom-up taint summaries for every function under
    /// `spec`, iterating each SCC to a fixed point.
    pub fn build(ws: &Workspace, cg: &CallGraph, spec: &TaintSpec<'_>) -> TaintSummaries {
        let ctxs = file_contexts(ws);
        let cfgs: Vec<Option<(Cfg, Vec<StmtInfo>)>> = (0..cg.fns.len())
            .map(|fid| {
                let g = cfg_for(cg, fid, &ctxs)?;
                let file = ctxs.get(cg.fns[fid].file.as_str())?.file;
                let infos = stmt_infos(&g, file);
                Some((g, infos))
            })
            .collect();
        let mut by_fn: Vec<FnTaint> = cg
            .fns
            .iter()
            .map(|f| FnTaint {
                param_to_return: vec![false; f.params.len()],
                returns_source: false,
                param_sink: vec![None; f.params.len()],
                source_sinks: Vec::new(),
            })
            .collect();
        for comp in sccs(cg) {
            // Iterate the component until its summaries stabilize;
            // summary flags only grow, so this converges quickly.
            for _round in 0..8 {
                let mut changed = false;
                for &fid in &comp {
                    let Some((g, infos)) = cfgs[fid].as_ref() else {
                        continue;
                    };
                    let res = analyze_fn(cg, fid, g, infos, spec, &by_fn);
                    if res.summary != by_fn[fid] {
                        by_fn[fid] = res.summary;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        TaintSummaries { by_fn }
    }
}

// ---------------------------------------------------------------------
// Must-reach obligations (KVS-L019's shape).

/// An uncharged path: a read at `read_line` reaches the function exit
/// without passing a charge statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Line of the statement that performs the disk read.
    pub read_line: usize,
    /// `file:line → file:line` chain from the read to the escape.
    pub witness: String,
}

/// Must-reach analysis: every path from a statement matching `is_read`
/// to the exit must pass a statement matching `is_charge`. The read's
/// own direct edge to the exit (its `?` error propagation) is exempt —
/// a failed read moved no bytes. Returns one [`Obligation`] per
/// violating read with the escaping path as witness.
pub fn uncharged_paths(
    g: &Cfg,
    file: &str,
    is_read: impl Fn(&str) -> bool,
    is_charge: impl Fn(&str) -> bool,
) -> Vec<Obligation> {
    let reads: Vec<usize> = g.find(|t| is_read(t));
    if reads.is_empty() {
        return Vec::new();
    }
    let charges: BTreeSet<usize> = g.find(|t| is_charge(t)).into_iter().collect();
    // Fact i = "read i not yet charged", seeded on the read's non-exit,
    // non-charge successors, killed at charges.
    let mut gen = vec![FactSet::new(); g.exit + 1];
    let mut kill = vec![FactSet::new(); g.exit + 1];
    for (i, &r) in reads.iter().enumerate() {
        for &s in &g.succ[r] {
            if s != g.exit && !charges.contains(&s) {
                gen[s].insert(i as u32);
            }
        }
    }
    for &c in &charges {
        for i in 0..reads.len() {
            kill[c].insert(i as u32);
        }
    }
    let flow = forward_gen_kill(&g.succ, g.exit, &gen, &kill);
    let mut out = Vec::new();
    for (i, &r) in reads.iter().enumerate() {
        if !flow.ins[g.exit].contains(&(i as u32)) {
            continue;
        }
        // Witness: DFS from the read to the exit avoiding charges and
        // the read's direct error edge.
        let mut path = vec![r];
        let mut seen = vec![false; g.exit + 1];
        seen[r] = true;
        let mut stack: Vec<(usize, usize)> = vec![(r, 0)];
        'dfs: while let Some(&(u, ei)) = stack.last() {
            let succs: &[usize] = if u == g.exit { &[] } else { &g.succ[u] };
            if ei < succs.len() {
                stack.last_mut().expect("non-empty").1 += 1;
                let v = succs[ei];
                // Skip the read's own direct exit edge.
                if u == r && v == g.exit {
                    continue;
                }
                if v <= g.exit && !seen[v] && !charges.contains(&v) {
                    seen[v] = true;
                    stack.push((v, 0));
                    if v == g.exit {
                        path = stack.iter().map(|&(n, _)| n).collect();
                        break 'dfs;
                    }
                }
            } else {
                stack.pop();
            }
        }
        out.push(Obligation {
            read_line: g.stmts[r].line,
            witness: g.witness(file, &path),
        });
    }
    out
}

// ---------------------------------------------------------------------

/// Per-function flow states for callers that need them (tests, rule
/// diagnostics needing raw states rather than summaries).
pub fn flow_for(
    ws: &Workspace,
    cg: &CallGraph,
    fid: usize,
    spec: &TaintSpec<'_>,
    summaries: &TaintSummaries,
) -> Option<(Cfg, Flow, Vec<Fact>)> {
    let ctxs = file_contexts(ws);
    let g = cfg_for(cg, fid, &ctxs)?;
    let file = ctxs.get(cg.fns[fid].file.as_str())?.file;
    let infos = stmt_infos(&g, file);
    let res = analyze_fn(cg, fid, &g, &infos, spec, &summaries.by_fn);
    Some((g, res.flow, res.table.facts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::rules::Workspace;
    use crate::scan::SourceFile;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(rel, text)| SourceFile::scan(rel, text))
                .collect(),
            net_md: None,
            store_md: None,
        }
    }

    const WIRE: TaintSpec<'_> = TaintSpec {
        sources: &["from_be_bytes(", "from_le_bytes("],
        sink_calls: &[("with_capacity(", "allocation")],
        index_sinks: true,
    };

    #[test]
    fn assignment_propagates_and_bound_check_kills() {
        let ws = ws_of(&[(
            "crates/net/src/frame.rs",
            "pub fn f(buf: &[u8]) {\n\
             let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;\n\
             let total = 4 + len;\n\
             let v = Vec::with_capacity(total);\n\
             drop(v);\n\
             }\n\
             pub fn ok(buf: &[u8]) {\n\
             let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);\n\
             if len > MAX_PAYLOAD { return; }\n\
             let v = Vec::with_capacity(len as usize);\n\
             drop(v);\n\
             }\n",
        )]);
        let cg = callgraph::build(&ws);
        let summ = TaintSummaries::build(&ws, &cg, &WIRE);
        let f = cg.fns.iter().position(|x| x.name == "f").expect("fn f");
        let ok = cg.fns.iter().position(|x| x.name == "ok").expect("fn ok");
        assert_eq!(summ.by_fn[f].source_sinks.len(), 1, "{:#?}", summ.by_fn[f]);
        let ss = &summ.by_fn[f].source_sinks[0];
        assert_eq!(ss.source_line, 2);
        assert_eq!(ss.hit.line, 4);
        assert!(
            ss.hit.chain.contains("crates/net/src/frame.rs:2")
                && ss.hit.chain.contains("crates/net/src/frame.rs:4"),
            "{}",
            ss.hit.chain
        );
        assert!(
            summ.by_fn[ok].source_sinks.is_empty(),
            "bound check should sanitize: {:#?}",
            summ.by_fn[ok]
        );
    }

    #[test]
    fn summaries_cross_function_boundaries() {
        let ws = ws_of(&[(
            "crates/net/src/frame.rs",
            "fn wire_len(buf: &[u8]) -> usize {\n\
             u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize\n\
             }\n\
             fn alloc_for(n: usize) -> Vec<u8> {\n\
             Vec::with_capacity(n)\n\
             }\n\
             pub fn f(buf: &[u8]) {\n\
             let n = wire_len(buf);\n\
             let v = alloc_for(n);\n\
             drop(v);\n\
             }\n",
        )]);
        let cg = callgraph::build(&ws);
        let summ = TaintSummaries::build(&ws, &cg, &WIRE);
        let wl = cg.fns.iter().position(|x| x.name == "wire_len").unwrap();
        let af = cg.fns.iter().position(|x| x.name == "alloc_for").unwrap();
        let f = cg.fns.iter().position(|x| x.name == "f").unwrap();
        assert!(summ.by_fn[wl].returns_source, "{:#?}", summ.by_fn[wl]);
        assert!(
            summ.by_fn[af].param_sink[0].is_some(),
            "{:#?}",
            summ.by_fn[af]
        );
        assert_eq!(summ.by_fn[f].source_sinks.len(), 1, "{:#?}", summ.by_fn[f]);
        let ss = &summ.by_fn[f].source_sinks[0];
        assert!(
            ss.hit.chain.contains("crates/net/src/frame.rs:9")
                && ss.hit.chain.contains("crates/net/src/frame.rs:5"),
            "spliced chain: {}",
            ss.hit.chain
        );
    }

    #[test]
    fn loop_and_index_sinks_fire() {
        let ws = ws_of(&[(
            "crates/net/src/frame.rs",
            "pub fn f(buf: &[u8]) -> u64 {\n\
             let n = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;\n\
             let mut acc = 0u64;\n\
             for i in 0..n {\n\
             acc += buf[i] as u64;\n\
             }\n\
             acc\n\
             }\n",
        )]);
        let cg = callgraph::build(&ws);
        let summ = TaintSummaries::build(&ws, &cg, &WIRE);
        let f = cg.fns.iter().position(|x| x.name == "f").unwrap();
        assert!(
            summ.by_fn[f]
                .source_sinks
                .iter()
                .any(|s| s.hit.kind == "loop bound"),
            "{:#?}",
            summ.by_fn[f]
        );
    }

    #[test]
    fn obligation_analysis_finds_uncharged_escape() {
        let src = "fn load(receipt: &mut R) -> io::Result<()> {\n\
                   let mut raw = vec![0u8; 4096];\n\
                   file.read_exact_at(&mut raw, off)?;\n\
                   if crc_bad(&raw) {\n\
                   return Err(bad());\n\
                   }\n\
                   receipt.disk_blocks_read += 1;\n\
                   Ok(())\n\
                   }\n";
        let toks = crate::token::tokenize(src);
        let trees = tree::build(src, &toks);
        let def = tree::functions(src, &toks, &trees)
            .into_iter()
            .next()
            .expect("fn");
        let g = cfg::build(src, &toks, def.body);
        let obs = uncharged_paths(
            &g,
            "crates/store/src/x.rs",
            |t| t.contains("read_exact_at("),
            |t| t.contains("receipt.") && t.contains("+="),
        );
        assert_eq!(obs.len(), 1, "{obs:#?}");
        assert_eq!(obs[0].read_line, 3);
        assert!(
            obs[0].witness.contains("crates/store/src/x.rs:5"),
            "witness should pass the early return: {}",
            obs[0].witness
        );
        // Charging before the check discharges the obligation.
        let src_ok = src.replace(
            "if crc_bad(&raw) {",
            "receipt.disk_blocks_read += 1;\nif crc_bad(&raw) {",
        );
        let src_ok = src_ok.replacen("receipt.disk_blocks_read += 1;\nOk(())", "Ok(())", 1);
        let toks = crate::token::tokenize(&src_ok);
        let trees = tree::build(&src_ok, &toks);
        let def = tree::functions(&src_ok, &toks, &trees)
            .into_iter()
            .next()
            .expect("fn");
        let g = cfg::build(&src_ok, &toks, def.body);
        let obs = uncharged_paths(
            &g,
            "crates/store/src/x.rs",
            |t| t.contains("read_exact_at("),
            |t| t.contains("receipt.") && t.contains("+="),
        );
        assert!(obs.is_empty(), "{obs:#?}");
    }

    #[test]
    fn gen_kill_fixed_point_is_consistent() {
        // Diamond with a back edge: 0→1, 1→2, 1→3, 2→4, 3→4, 4→1, 4→exit(5).
        let succ = vec![vec![1], vec![2, 3], vec![4], vec![4], vec![1, 5]];
        let exit = 5;
        let mk = |ids: &[u32]| ids.iter().copied().collect::<FactSet>();
        let gen = vec![mk(&[]), mk(&[1]), mk(&[2]), mk(&[]), mk(&[]), mk(&[])];
        let kill = vec![mk(&[]), mk(&[]), mk(&[]), mk(&[1]), mk(&[]), mk(&[])];
        let flow = forward_gen_kill(&succ, exit, &gen, &kill);
        // Fact 1 survives via node 2 but is killed on the 3 branch:
        // both reach 4, so the join keeps it.
        assert!(flow.ins[4].contains(&1));
        assert!(flow.ins[exit].contains(&1));
        assert!(flow.ins[exit].contains(&2));
        // Post-hoc fixed-point check: out = (in \ kill) ∪ gen, in = ⋃ preds.
        for u in 0..exit {
            let expect: FactSet = flow.ins[u]
                .difference(&kill[u])
                .copied()
                .chain(gen[u].iter().copied())
                .collect();
            assert_eq!(flow.outs[u], expect, "node {u}");
        }
    }
}
