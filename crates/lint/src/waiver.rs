//! The waiver file: `lint.waivers.toml` at the workspace root.
//!
//! A waiver suppresses exactly one class of diagnostic at one site, and it
//! must say *why*. The parser is a strict TOML subset (same philosophy as
//! the chaos-schedule parser): unknown keys, duplicate keys, missing
//! required keys and empty justifications are all hard errors — a waiver
//! file that doesn't mean what it says is worse than no waiver file.
//!
//! ```toml
//! [[waiver]]
//! rule = "KVS-L004"
//! path = "crates/net/src/frame.rs"
//! contains = "expect(\"kind validated above\")"
//! justification = "decode validates the kind byte before construction"
//! owner = "net"
//! ```
//!
//! `contains` is matched against the raw text of the diagnosed line; the
//! waiver applies only when rule, path and line content all match. A
//! waiver that matches nothing is *stale* and reported as `KVS-L000`:
//! waivers must not outlive the code they excuse.

use crate::rules::Diagnostic;

/// One parsed `[[waiver]]` entry.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule ID being waived (`KVS-L001` … `KVS-L016`).
    pub rule: String,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// Substring the diagnosed line must contain.
    pub contains: String,
    /// Why the violation is acceptable — the invariant that makes it safe.
    pub justification: String,
    /// Who stands behind the justification.
    pub owner: String,
    /// Line in the waiver file where this entry starts (for staleness
    /// reports).
    pub line: usize,
}

/// Parses the waiver file. Errors carry the offending line number.
pub fn parse(text: &str) -> Result<Vec<Waiver>, (usize, String)> {
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut current: Option<(usize, Vec<(String, String)>)> = None;

    let finish = |entry: Option<(usize, Vec<(String, String)>)>,
                  waivers: &mut Vec<Waiver>|
     -> Result<(), (usize, String)> {
        let Some((start, fields)) = entry else {
            return Ok(());
        };
        let get = |key: &str| -> Result<String, (usize, String)> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| (start, format!("waiver is missing required key `{key}`")))
        };
        let rule = get("rule")?;
        let valid_rule = crate::rules::RULES.iter().any(|(id, _)| *id == rule);
        if !valid_rule {
            return Err((start, format!("unknown rule ID `{rule}`")));
        }
        let justification = get("justification")?;
        if justification.trim().len() < 10 {
            return Err((
                start,
                "justification must actually justify (>= 10 characters)".to_string(),
            ));
        }
        let owner = get("owner")?;
        if owner.trim().is_empty() {
            return Err((start, "owner must not be empty".to_string()));
        }
        waivers.push(Waiver {
            rule,
            path: get("path")?,
            contains: get("contains")?,
            justification,
            owner,
            line: start,
        });
        Ok(())
    };

    for (ix, raw) in text.lines().enumerate() {
        let n = ix + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            finish(current.take(), &mut waivers)?;
            current = Some((n, Vec::new()));
            continue;
        }
        if line.starts_with('[') {
            return Err((n, format!("unknown section `{line}` (only [[waiver]])")));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err((n, format!("expected `key = \"value\"`, got `{line}`")));
        };
        let key = key.trim();
        if !matches!(
            key,
            "rule" | "path" | "contains" | "justification" | "owner"
        ) {
            return Err((n, format!("unknown key `{key}`")));
        }
        let Some((_, fields)) = current.as_mut() else {
            return Err((n, format!("`{key}` outside a [[waiver]] section")));
        };
        if fields.iter().any(|(k, _)| k == key) {
            return Err((n, format!("duplicate key `{key}`")));
        }
        let value = parse_string(value.trim()).map_err(|e| (n, e))?;
        fields.push((key.to_string(), value));
    }
    finish(current.take(), &mut waivers)?;
    Ok(waivers)
}

/// Parses a double-quoted TOML basic string with `\"`, `\\`, `\n`, `\t`
/// escapes. Trailing `#` comments after the closing quote are allowed.
fn parse_string(tok: &str) -> Result<String, String> {
    let Some(rest) = tok.strip_prefix('"') else {
        return Err(format!("expected a quoted string, got `{tok}`"));
    };
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("unsupported escape `\\{:?}`", other)),
            },
            Some(c) => out.push(c),
        }
    }
    let tail: String = chars.collect();
    let tail = tail.trim();
    if !tail.is_empty() && !tail.starts_with('#') {
        return Err(format!("unexpected trailing content `{tail}`"));
    }
    Ok(out)
}

/// Result of applying the waiver file to a diagnostic set.
pub struct Applied {
    /// Diagnostics no waiver matched, plus a `KVS-L000` per stale waiver.
    pub failing: Vec<Diagnostic>,
    /// Suppressed diagnostics with the justification that excused them.
    pub waived: Vec<(Diagnostic, String)>,
    /// How many diagnostics each waiver suppressed, parallel to the
    /// input slice (0 ⇒ that waiver is stale). Feeds `kvs-lint waivers`.
    pub hits: Vec<usize>,
}

/// Splits diagnostics into (still-failing, waived) and appends a
/// `KVS-L000` diagnostic for every stale waiver. `raw_line` resolves
/// `(path, line)` to the raw source text the waiver's `contains` is
/// matched against.
pub fn apply(
    diagnostics: Vec<Diagnostic>,
    waivers: &[Waiver],
    waiver_file: &str,
    raw_line: impl Fn(&str, usize) -> Option<String>,
) -> Applied {
    let mut hits = vec![0usize; waivers.len()];
    let mut failing = Vec::new();
    let mut waived = Vec::new();
    for d in diagnostics {
        let hit = waivers.iter().position(|w| {
            w.rule == d.rule
                && w.path == d.path
                && raw_line(&d.path, d.line).is_some_and(|raw| raw.contains(&w.contains))
        });
        match hit {
            Some(ix) => {
                hits[ix] += 1;
                waived.push((d, waivers[ix].justification.clone()));
            }
            None => failing.push(d),
        }
    }
    for (ix, w) in waivers.iter().enumerate() {
        if hits[ix] == 0 {
            failing.push(Diagnostic {
                rule: "KVS-L000",
                path: waiver_file.to_string(),
                line: w.line,
                message: format!(
                    "stale waiver: no {} diagnostic in `{}` matches `{}` — the code it \
                     excused is gone, delete the waiver",
                    w.rule, w.path, w.contains
                ),
            });
        }
    }
    Applied {
        failing,
        waived,
        hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# fleet-wide waivers
[[waiver]]
rule = "KVS-L004"
path = "crates/net/src/frame.rs"
contains = "expect(\"4 bytes\")"
justification = "slice length is proven by the preceding bounds check"
owner = "net"
"#;

    #[test]
    fn parses_a_valid_waiver() {
        let ws = parse(GOOD).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "KVS-L004");
        assert_eq!(ws[0].contains, "expect(\"4 bytes\")");
    }

    #[test]
    fn rejects_unknown_keys_duplicates_and_missing_fields() {
        assert!(parse("[[waiver]]\nrule = \"KVS-L004\"\nwhatever = \"x\"\n").is_err());
        let dup = "[[waiver]]\nrule = \"KVS-L004\"\nrule = \"KVS-L003\"\n";
        assert!(parse(dup).is_err());
        let missing = "[[waiver]]\nrule = \"KVS-L004\"\npath = \"x\"\ncontains = \"y\"\n";
        assert!(parse(missing).is_err());
    }

    #[test]
    fn rejects_empty_justifications_and_unknown_rules() {
        let lazy = "[[waiver]]\nrule = \"KVS-L004\"\npath = \"x\"\ncontains = \"y\"\n\
                    justification = \"ok\"\nowner = \"me\"\n";
        assert!(parse(lazy).is_err());
        let bogus = "[[waiver]]\nrule = \"KVS-L999\"\npath = \"x\"\ncontains = \"y\"\n\
                     justification = \"long enough reason\"\nowner = \"me\"\n";
        assert!(parse(bogus).is_err());
    }

    #[test]
    fn stale_waivers_become_l000() {
        let ws = parse(GOOD).unwrap();
        let applied = apply(Vec::new(), &ws, "lint.waivers.toml", |_, _| None);
        assert!(applied.waived.is_empty());
        assert_eq!(applied.failing.len(), 1);
        assert_eq!(applied.failing[0].rule, "KVS-L000");
        assert_eq!(applied.hits, vec![0]);
    }

    #[test]
    fn matching_waiver_suppresses_and_counts_hits() {
        let ws = parse(GOOD).unwrap();
        let d = Diagnostic {
            rule: "KVS-L004",
            path: "crates/net/src/frame.rs".to_string(),
            line: 7,
            message: "m".to_string(),
        };
        let applied = apply(vec![d], &ws, "w.toml", |_, _| {
            Some("let x = v.try_into().expect(\"4 bytes\");".to_string())
        });
        assert!(applied.failing.is_empty());
        assert_eq!(applied.waived.len(), 1);
        assert_eq!(applied.hits, vec![1]);
    }
}
