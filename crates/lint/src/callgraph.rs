//! The workspace call graph: the interprocedural half of the analyzer.
//!
//! Built from the token trees ([`crate::tree`]), not from names alone:
//! function items are discovered with their `impl` block so methods are
//! receiver-qualified (`Manifest::commit`, not just `commit`), and every
//! call site in a body becomes an edge to the set of functions it *may*
//! resolve to. The passes ([`crate::passes`]) run reachability queries
//! over this graph: KVS-L014 (blocking calls reachable from a declared
//! non-blocking zone), KVS-L016 (deadline threading across call sites)
//! and the KVS-L009 one-level lock propagation all share it.
//!
//! Resolution is deliberately conservative (may-call, never must-call):
//!
//! * **free calls** `f(…)` resolve same-file first, then same-crate,
//!   then workspace-wide by name;
//! * **`self.m(…)`** resolves to methods named `m` on the enclosing
//!   `impl`/`trait` type in the same crate, falling back to the file;
//! * **path calls** `Type::f(…)` resolve to `f` on `Type` anywhere,
//!   falling back to every `f`;
//! * **method calls** `x.m(…)` are trait-method edges by name: they
//!   fan out to *every* method named `m` in the workspace. These
//!   may-call edges stay in the graph for queries that want the full
//!   over-approximation, but the reachability passes do not traverse
//!   them (bare names like `get` alias everywhere); a blocking method
//!   call still surfaces through the callee's recorded [`FnInfo::ops`].
//!
//! Closures passed to `spawn` run on another thread: their bodies become
//! synthetic root functions (`outer::spawn@line`) with **no** edge from
//! the spawning function, so a non-blocking zone does not inherit the
//! blocking work it hands off.
//!
//! A `// LINT-ZONE: <tag>` comment within the three lines above a `fn`
//! attaches `tag` to that function (the L014 `nonblocking` roots).

use std::collections::BTreeMap;

use crate::rules::Workspace;
use crate::scan::SourceFile;
use crate::token::{Tok, TokKind};
use crate::tree::{self, Delim, Group, Tree};

/// How a call site was written, which decides how it resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// `f(…)` — a bare free-function call.
    Free,
    /// `self.m(…)` — a method call on the enclosing impl type.
    SelfMethod,
    /// `x.m(…)` — a method call on anything else (may-call by name).
    Method,
    /// `Type::f(…)` — a path-qualified call.
    Path,
}

/// One function (or spawn-closure) node.
#[derive(Debug)]
pub struct FnInfo {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// Function name; spawn closures get `outer::spawn@<line>`.
    pub name: String,
    /// Enclosing `impl`/`trait` type, when the fn is a method.
    pub receiver: Option<String>,
    /// 1-based line of the `fn` keyword (or the `spawn` call).
    pub line: usize,
    /// First and last line of the body — used to find the enclosing
    /// function of an arbitrary source line.
    pub body_lines: (usize, usize),
    /// Parameter names in order, `self` excluded (so indices line up
    /// with call-site argument lists).
    pub params: Vec<String>,
    /// `LINT-ZONE:` tag attached by an anchor comment above the fn.
    pub zone: Option<String>,
    /// True for synthetic spawn-closure roots.
    pub is_spawn_root: bool,
    /// Every call name that appears directly in this body (nested fns
    /// and spawn closures excluded), with its line: `(line, name)`.
    /// The passes match these against their blocking-op name sets.
    pub ops: Vec<(usize, String)>,
}

/// One resolved call edge out of a function.
#[derive(Debug)]
pub struct CallEdge {
    /// Index of the callee in [`CallGraph::fns`].
    pub callee: usize,
    /// Call-site line in the caller's file.
    pub line: usize,
    /// Callee name as written at the call site.
    pub name: String,
    /// Call shape.
    pub kind: EdgeKind,
    /// Flattened text of each argument, in order.
    pub args: Vec<String>,
}

/// The graph: nodes plus per-node adjacency.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes.
    pub fns: Vec<FnInfo>,
    /// `edges[i]` = resolved calls out of `fns[i]`.
    pub edges: Vec<Vec<CallEdge>>,
}

/// An unresolved call collected during the tree walk.
struct RawCall {
    caller: usize,
    name: String,
    /// `Type` for `Type::f(…)` path calls.
    qualifier: Option<String>,
    kind: EdgeKind,
    line: usize,
    args: Vec<String>,
}

/// Keywords that look like `ident(` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "move", "in", "as", "ref", "mut", "unsafe", "await",
];

struct Builder<'w> {
    ws: &'w Workspace,
    fns: Vec<FnInfo>,
    raw: Vec<RawCall>,
}

/// Builds the call graph over every scanned file. Functions inside test
/// regions are skipped — the graph models the production call structure.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut b = Builder {
        ws,
        fns: Vec::new(),
        raw: Vec::new(),
    };
    for (fix, f) in ws.files.iter().enumerate() {
        let src = f.text.as_str();
        let trees = tree::build(src, &f.toks);
        b.walk_items(fix, src, &f.toks, &trees, None);
    }
    b.resolve()
}

impl<'w> Builder<'w> {
    fn file(&self, fix: usize) -> &'w SourceFile {
        &self.ws.files[fix]
    }

    /// Walks a sibling list at item level: `impl`/`trait` blocks set the
    /// receiver for the fns inside, `fn` items are registered, any other
    /// group is descended into.
    fn walk_items(
        &mut self,
        fix: usize,
        src: &str,
        toks: &[Tok],
        trees: &[Tree],
        receiver: Option<&str>,
    ) {
        let mut i = 0;
        while i < trees.len() {
            if let Some(text) = leaf_text(src, toks, &trees[i]) {
                if text == "fn" {
                    if let Some(next) = self.register_fn(fix, src, toks, trees, i, receiver) {
                        i = next;
                        continue;
                    }
                }
                if text == "impl" || text == "trait" {
                    if let Some((ty, body_ix)) = impl_target(src, toks, trees, i) {
                        if let Tree::Group(g) = &trees[body_ix] {
                            self.walk_items(fix, src, toks, &g.children, Some(&ty));
                        }
                        i = body_ix + 1;
                        continue;
                    }
                }
            }
            if let Tree::Group(g) = &trees[i] {
                self.walk_items(fix, src, toks, &g.children, None);
            }
            i += 1;
        }
    }

    /// Registers the fn whose `fn` keyword sits at sibling `i` and walks
    /// its body for calls. Returns the sibling index past the body.
    fn register_fn(
        &mut self,
        fix: usize,
        src: &str,
        toks: &[Tok],
        trees: &[Tree],
        i: usize,
        receiver: Option<&str>,
    ) -> Option<usize> {
        let Tree::Leaf(fn_ix) = trees[i] else {
            return None;
        };
        let name = match trees.get(i + 1) {
            Some(Tree::Leaf(ix)) if toks[*ix].kind == TokKind::Ident => {
                toks[*ix].text(src).to_string()
            }
            _ => return None,
        };
        // Signature = first paren group before the body; body = first
        // brace group; a `;` first means a bodiless trait declaration.
        let mut sig: Option<&Group> = None;
        let mut body: Option<(&Group, usize)> = None;
        for (j, t) in trees.iter().enumerate().skip(i + 2) {
            match t {
                Tree::Leaf(ix) => {
                    if toks[*ix].kind == TokKind::Punct && toks[*ix].text(src) == ";" {
                        return Some(j + 1);
                    }
                }
                Tree::Group(g) if g.delim == Delim::Paren && sig.is_none() => sig = Some(g),
                Tree::Group(g) if g.delim == Delim::Brace => {
                    body = Some((g, j));
                    break;
                }
                Tree::Group(_) => {}
            }
        }
        let (body, body_at) = body?;
        let line = toks[fn_ix].line;
        let f = self.file(fix);
        if f.line_in_test(line) {
            return Some(body_at + 1); // test-only fn: not part of the graph
        }
        let end_line = body.close.map(|c| toks[c].line).unwrap_or(line);
        let id = self.fns.len();
        self.fns.push(FnInfo {
            file: f.rel.clone(),
            name,
            receiver: receiver.map(str::to_string),
            line,
            body_lines: (line, end_line),
            params: sig.map(|g| params_of(src, toks, g)).unwrap_or_default(),
            zone: zone_of(f, line),
            is_spawn_root: false,
            ops: Vec::new(),
        });
        self.walk_body(fix, id, src, toks, &body.children);
        Some(body_at + 1)
    }

    /// Walks a body sibling list collecting calls and ops for `caller`.
    /// Nested `fn` items and `spawn(…)` closures become their own nodes.
    fn walk_body(&mut self, fix: usize, caller: usize, src: &str, toks: &[Tok], trees: &[Tree]) {
        let mut i = 0;
        while i < trees.len() {
            if leaf_text(src, toks, &trees[i]) == Some("fn") {
                if let Some(next) = self.register_fn(fix, src, toks, trees, i, None) {
                    i = next;
                    continue;
                }
            }
            if is_ident(toks, src, &trees[i])
                && matches!(trees.get(i + 1), Some(Tree::Group(g)) if g.delim == Delim::Paren)
            {
                let name = leaf_text(src, toks, &trees[i]).unwrap_or("").to_string();
                let line = leaf_line(toks, &trees[i]);
                let Some(Tree::Group(argg)) = trees.get(i + 1) else {
                    unreachable!("matched above");
                };
                if name == "spawn" {
                    // Another thread: the closure is a fresh root with no
                    // edge from the spawner.
                    let outer = self.fns[caller].name.clone();
                    let file = self.fns[caller].file.clone();
                    let id = self.fns.len();
                    self.fns.push(FnInfo {
                        file,
                        name: format!("{outer}::spawn@{line}"),
                        receiver: None,
                        line,
                        body_lines: (line, toks[argg.close.unwrap_or(argg.open)].line),
                        params: Vec::new(),
                        zone: None,
                        is_spawn_root: true,
                        ops: Vec::new(),
                    });
                    self.walk_body(fix, id, src, toks, &argg.children);
                    i += 2;
                    continue;
                }
                if !NON_CALL_KEYWORDS.contains(&name.as_str()) {
                    let (kind, qualifier) = call_shape(src, toks, trees, i);
                    self.fns[caller].ops.push((line, name.clone()));
                    self.raw.push(RawCall {
                        caller,
                        name,
                        qualifier,
                        kind,
                        line,
                        args: split_args(src, toks, argg),
                    });
                }
            }
            if let Tree::Group(g) = &trees[i] {
                self.walk_body(fix, caller, src, toks, &g.children);
            }
            i += 1;
        }
    }

    /// Resolves every raw call to its may-call target set.
    fn resolve(self) -> CallGraph {
        let Builder { fns, raw, .. } = self;
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (ix, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(ix);
        }
        let mut edges: Vec<Vec<CallEdge>> = (0..fns.len()).map(|_| Vec::new()).collect();
        for call in raw {
            let candidates = by_name.get(call.name.as_str()).map_or(&[][..], |v| v);
            let caller = &fns[call.caller];
            let pick: Vec<usize> = match call.kind {
                EdgeKind::Free => narrow(candidates, &fns, |f| {
                    if f.file == caller.file {
                        2
                    } else if same_crate(&f.file, &caller.file) {
                        1
                    } else {
                        0
                    }
                }),
                EdgeKind::SelfMethod => {
                    let same_recv: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&ix| {
                            fns[ix].receiver == caller.receiver
                                && caller.receiver.is_some()
                                && same_crate(&fns[ix].file, &caller.file)
                        })
                        .collect();
                    if !same_recv.is_empty() {
                        same_recv
                    } else {
                        candidates
                            .iter()
                            .copied()
                            .filter(|&ix| fns[ix].file == caller.file)
                            .collect()
                    }
                }
                EdgeKind::Path => {
                    let on_type: Vec<usize> = candidates
                        .iter()
                        .copied()
                        .filter(|&ix| fns[ix].receiver.as_deref() == call.qualifier.as_deref())
                        .collect();
                    if !on_type.is_empty() {
                        on_type
                    } else {
                        candidates.to_vec()
                    }
                }
                EdgeKind::Method => candidates
                    .iter()
                    .copied()
                    .filter(|&ix| fns[ix].receiver.is_some())
                    .collect(),
            };
            for callee in pick {
                if callee == call.caller {
                    continue; // self-recursion adds nothing to reachability
                }
                edges[call.caller].push(CallEdge {
                    callee,
                    line: call.line,
                    name: call.name.clone(),
                    kind: call.kind,
                    args: call.args.clone(),
                });
            }
        }
        CallGraph { fns, edges }
    }
}

impl CallGraph {
    /// The innermost function whose body spans `line` in `file`.
    pub fn fn_enclosing(&self, file: &str, line: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.body_lines.0 <= line && line <= f.body_lines.1)
            .min_by_key(|(_, f)| f.body_lines.1 - f.body_lines.0)
            .map(|(ix, _)| ix)
    }

    /// The node whose `fn` keyword sits exactly at `(file, line)`.
    pub fn fn_at(&self, file: &str, line: usize) -> Option<usize> {
        self.fns
            .iter()
            .position(|f| f.file == file && f.line == line && !f.is_spawn_root)
    }

    /// Every `(caller, edge)` pair targeting `callee`.
    pub fn callers(&self, callee: usize) -> Vec<(usize, &CallEdge)> {
        let mut out = Vec::new();
        for (caller, es) in self.edges.iter().enumerate() {
            for e in es {
                if e.callee == callee {
                    out.push((caller, e));
                }
            }
        }
        out
    }

    /// Breadth-first search from `root`; returns, for each reached node,
    /// its BFS parent and the call-site line of the edge used — enough to
    /// rebuild a witness chain.
    pub fn bfs(&self, root: usize) -> BTreeMap<usize, (usize, usize)> {
        let mut parent: BTreeMap<usize, (usize, usize)> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([root]);
        let mut seen = vec![false; self.fns.len()];
        seen[root] = true;
        while let Some(n) = queue.pop_front() {
            for e in &self.edges[n] {
                if !seen[e.callee] {
                    seen[e.callee] = true;
                    parent.insert(e.callee, (n, e.line));
                    queue.push_back(e.callee);
                }
            }
        }
        parent
    }

    /// The `root → … → node` witness as `file:line` hops: the root's
    /// definition, each call site along the BFS tree, then `last_line` in
    /// the final node's file (the offending op).
    pub fn witness(
        &self,
        root: usize,
        node: usize,
        parent: &BTreeMap<usize, (usize, usize)>,
        last_line: usize,
    ) -> String {
        let mut hops: Vec<String> = Vec::new();
        let mut cur = node;
        while cur != root {
            let Some(&(p, via_line)) = parent.get(&cur) else {
                break;
            };
            hops.push(format!("{}:{}", self.fns[p].file, via_line));
            cur = p;
        }
        hops.reverse();
        let mut chain = vec![format!("{}:{}", self.fns[root].file, self.fns[root].line)];
        chain.extend(hops);
        chain.push(format!("{}:{}", self.fns[node].file, last_line));
        chain.dedup();
        chain.join(" → ")
    }
}

fn leaf_text<'a>(src: &'a str, toks: &[Tok], t: &Tree) -> Option<&'a str> {
    match t {
        Tree::Leaf(ix) => Some(toks[*ix].text(src)),
        Tree::Group(_) => None,
    }
}

fn leaf_line(toks: &[Tok], t: &Tree) -> usize {
    match t {
        Tree::Leaf(ix) => toks[*ix].line,
        Tree::Group(g) => toks[g.open].line,
    }
}

fn is_ident(toks: &[Tok], _src: &str, t: &Tree) -> bool {
    matches!(t, Tree::Leaf(ix) if toks[*ix].kind == TokKind::Ident)
}

fn is_punct_ch(src: &str, toks: &[Tok], t: &Tree, ch: &str) -> bool {
    matches!(t, Tree::Leaf(ix) if toks[*ix].kind == TokKind::Punct && toks[*ix].text(src) == ch)
}

fn same_crate(a: &str, b: &str) -> bool {
    let key = |p: &str| p.splitn(3, '/').take(2).collect::<Vec<_>>().join("/");
    key(a) == key(b)
}

/// Picks the candidates with the highest score, if any score > 0;
/// otherwise returns all candidates (workspace-wide fallback).
fn narrow(candidates: &[usize], fns: &[FnInfo], score: impl Fn(&FnInfo) -> u8) -> Vec<usize> {
    let best = candidates
        .iter()
        .map(|&ix| score(&fns[ix]))
        .max()
        .unwrap_or(0);
    candidates
        .iter()
        .copied()
        .filter(|&ix| score(&fns[ix]) == best)
        .collect()
}

/// Classifies the call whose name leaf sits at sibling `i`.
fn call_shape(src: &str, toks: &[Tok], trees: &[Tree], i: usize) -> (EdgeKind, Option<String>) {
    if i >= 1 && is_punct_ch(src, toks, &trees[i - 1], ".") {
        let on_self = i >= 2
            && leaf_text(src, toks, &trees[i - 2]) == Some("self")
            && (i < 3 || !is_punct_ch(src, toks, &trees[i - 3], "."));
        return if on_self {
            (EdgeKind::SelfMethod, None)
        } else {
            (EdgeKind::Method, None)
        };
    }
    if i >= 2
        && is_punct_ch(src, toks, &trees[i - 1], ":")
        && is_punct_ch(src, toks, &trees[i - 2], ":")
    {
        let qualifier = trees
            .get(i.wrapping_sub(3))
            .filter(|_| i >= 3)
            .and_then(|t| leaf_text(src, toks, t))
            .map(str::to_string);
        return (EdgeKind::Path, qualifier);
    }
    (EdgeKind::Free, None)
}

/// Flattened text of each top-level comma-separated argument.
fn split_args(src: &str, toks: &[Tok], args: &Group) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur: Vec<&Tree> = Vec::new();
    for t in &args.children {
        if is_punct_ch(src, toks, t, ",") {
            out.push(flat_text(src, toks, &cur));
            cur.clear();
        } else {
            cur.push(t);
        }
    }
    if !cur.is_empty() {
        out.push(flat_text(src, toks, &cur));
    }
    out
}

fn flat_text(src: &str, toks: &[Tok], trees: &[&Tree]) -> String {
    let mut s = String::new();
    for t in trees {
        s.push_str(&tree::text_of(src, toks, std::slice::from_ref(*t)));
    }
    s
}

/// Parameter names from a signature paren group, `self` excluded.
/// Pattern parameters (`(a, b): (u32, u32)`) contribute no name.
fn params_of(src: &str, toks: &[Tok], sig: &Group) -> Vec<String> {
    let mut segs: Vec<Vec<&Tree>> = vec![Vec::new()];
    for t in &sig.children {
        if is_punct_ch(src, toks, t, ",") {
            segs.push(Vec::new());
        } else {
            segs.last_mut().expect("always non-empty").push(t);
        }
    }
    let mut out = Vec::new();
    for seg in segs {
        let mut name: Option<String> = None;
        for t in seg {
            if is_punct_ch(src, toks, t, ":") {
                break;
            }
            match leaf_text(src, toks, t) {
                Some("mut") | Some("&") => continue,
                Some(s) if s.starts_with('\'') => continue,
                Some("self") => break,
                Some(s) if matches!(t, Tree::Leaf(ix) if toks[*ix].kind == TokKind::Ident) => {
                    name = Some(s.to_string());
                    break;
                }
                _ => break, // pattern parameter: no single name
            }
        }
        if let Some(n) = name {
            out.push(n);
        }
    }
    out
}

/// The `impl`/`trait` target type and the sibling index of its brace
/// body, starting from the keyword at `i`. For `impl Trait for Type` the
/// target is `Type`.
fn impl_target(src: &str, toks: &[Tok], trees: &[Tree], i: usize) -> Option<(String, usize)> {
    let mut ty: Option<String> = None;
    let mut after_for = false;
    let mut angle_depth = 0i32;
    for (j, t) in trees.iter().enumerate().skip(i + 1) {
        match t {
            Tree::Leaf(ix) => {
                let text = toks[*ix].text(src);
                match text {
                    "<" => angle_depth += 1,
                    ">" => angle_depth -= 1,
                    "for" => {
                        after_for = true;
                        ty = None;
                    }
                    ";" => return None, // `impl Trait for Type;` — no body
                    _ if toks[*ix].kind == TokKind::Ident
                        && angle_depth == 0
                        && (ty.is_none() || after_for) =>
                    {
                        ty = Some(text.to_string());
                        after_for = false;
                    }
                    _ => {}
                }
            }
            Tree::Group(g) if g.delim == Delim::Brace => {
                return ty.map(|ty| (ty, j));
            }
            Tree::Group(_) => {}
        }
    }
    None
}

/// The `LINT-ZONE:` tag from a comment within the three lines above
/// `fn_line`. Attribute and comment lines in between are allowed, but
/// any other code line ends the search — the anchor binds to the *next*
/// function only, never through a neighbour's definition.
fn zone_of(f: &SourceFile, fn_line: usize) -> Option<String> {
    let first = fn_line.saturating_sub(4).max(1);
    for n in (first..fn_line).rev() {
        let l = &f.lines[n - 1];
        if let Some(pos) = l.comment.find("LINT-ZONE:") {
            let tag = l.comment[pos + "LINT-ZONE:".len()..].trim();
            let tag: String = tag
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !tag.is_empty() {
                return Some(tag);
            }
        }
        let code = l.code.trim();
        if !code.is_empty() && !code.starts_with("#[") {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let ws = Workspace {
            files: files
                .iter()
                .map(|(rel, text)| SourceFile::scan(rel, text))
                .collect(),
            net_md: None,
            store_md: None,
        };
        build(&ws)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn free_calls_prefer_same_file_then_crate() {
        let g = graph(&[
            (
                "crates/net/src/a.rs",
                "fn helper() {} fn top() { helper(); }",
            ),
            ("crates/store/src/b.rs", "fn helper() {}"),
        ]);
        let top = node(&g, "top");
        let targets: Vec<&str> = g.edges[top]
            .iter()
            .map(|e| g.fns[e.callee].file.as_str())
            .collect();
        assert_eq!(targets, vec!["crates/net/src/a.rs"]);
    }

    #[test]
    fn impl_receivers_qualify_methods_and_self_calls_resolve() {
        let src = "struct M; impl M { fn commit(&self) { self.sync(); } fn sync(&self) {} }";
        let g = graph(&[("crates/store/src/m.rs", src)]);
        let commit = node(&g, "commit");
        assert_eq!(g.fns[commit].receiver.as_deref(), Some("M"));
        assert_eq!(g.edges[commit].len(), 1);
        assert_eq!(g.fns[g.edges[commit][0].callee].name, "sync");
    }

    #[test]
    fn method_calls_fan_out_by_name_and_path_calls_respect_the_type() {
        let src = "struct A; struct B;\n\
                   impl A { fn go(&self) {} }\n\
                   impl B { fn go(&self) {} }\n\
                   fn m(a: &A) { a.go(); }\n\
                   fn p() { A::go(&A); }";
        let g = graph(&[("crates/net/src/x.rs", src)]);
        let m = node(&g, "m");
        assert_eq!(g.edges[m].len(), 2, "may-call fans out to both impls");
        let p = node(&g, "p");
        assert_eq!(g.edges[p].len(), 1, "path call resolves on the type");
        assert_eq!(g.fns[g.edges[p][0].callee].receiver.as_deref(), Some("A"));
    }

    #[test]
    fn spawn_closures_are_separate_roots() {
        let src = "fn outer() { std::thread::spawn(move || { blocking(); }); }\n\
                   fn blocking() {}";
        let g = graph(&[("crates/net/src/x.rs", src)]);
        let outer = node(&g, "outer");
        assert!(
            g.edges[outer]
                .iter()
                .all(|e| g.fns[e.callee].name != "blocking"),
            "the spawned closure's calls must not be the spawner's"
        );
        let closure = g.fns.iter().position(|f| f.is_spawn_root).unwrap();
        assert!(g.fns[closure].name.starts_with("outer::spawn@"));
        assert_eq!(g.edges[closure].len(), 1);
    }

    #[test]
    fn zones_params_and_witnesses() {
        let src = "// LINT-ZONE: nonblocking\n\
                   fn root(deadline: u64) { mid(deadline); }\n\
                   fn mid(d: u64) { leaf(d); }\n\
                   fn leaf(d: u64) {}";
        let g = graph(&[("crates/net/src/x.rs", src)]);
        let root = node(&g, "root");
        assert_eq!(g.fns[root].zone.as_deref(), Some("nonblocking"));
        assert_eq!(g.fns[root].params, vec!["deadline"]);
        let leaf = node(&g, "leaf");
        let parent = g.bfs(root);
        assert!(parent.contains_key(&leaf));
        let w = g.witness(root, leaf, &parent, 4);
        assert_eq!(
            w,
            "crates/net/src/x.rs:2 → crates/net/src/x.rs:3 → crates/net/src/x.rs:4"
        );
    }

    #[test]
    fn test_functions_stay_out_of_the_graph() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { live(); }\n}";
        let g = graph(&[("crates/net/src/x.rs", src)]);
        assert_eq!(g.fns.len(), 1);
        assert_eq!(g.fns[0].name, "live");
    }
}
