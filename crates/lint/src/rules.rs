//! The rule set. Every rule has a stable ID (`KVS-L00x`) that diagnostics
//! carry and the waiver file references.
//!
//! | ID | Invariant |
//! |---|---|
//! | KVS-L001 | determinism guard: no ambient clock/RNG where runs must replay |
//! | KVS-L002 | protocol drift: frame constants vs the documented tables |
//! | KVS-L003 | no `let _ =` result drops in `net`/`cluster`/persistence hot paths |
//! | KVS-L004 | no `unwrap()`/`expect()` in `net`/`cluster`/persistence hot paths |
//! | KVS-L005 | every `unsafe` carries a `SAFETY:` comment |
//! | KVS-L006 | `std::sync::Mutex` forbidden where `parking_lot` is standard |
//! | KVS-L007 | no lock guard held across a blocking socket/channel call |
//! | KVS-L008 | comment contracts: send-seq monotonicity, Busy re-arm |
//! | KVS-L009 | lock-order: the acquired-while-held graph must be acyclic |
//! | KVS-L010 | channel topology: bounded channels, every sender drained |
//! | KVS-L011 | stage stamps: every stamps slot written exactly once |
//! | KVS-L012 | frame kinds: FrameKind matches handle every declared kind |
//! | KVS-L013 | store-format drift: WAL/SSTable constants vs documented tables |
//! | KVS-L014 | non-blocking zones must not transitively reach blocking ops |
//! | KVS-L015 | crash ordering: write → fsync → rename → dir-fsync, GC after commit |
//! | KVS-L016 | deadline propagation: v2 frames thread the incoming deadline |
//! | KVS-L017 | wire-input taint: untrusted lengths bounded before allocation/indexing |
//! | KVS-L018 | determinism escape: no wall-clock/RNG value flow into L001 zones |
//! | KVS-L019 | receipt accounting: every disk block read charges the ReadReceipt |
//!
//! KVS-L007 and KVS-L009 are interprocedural since PR 9: they resolve
//! calls through the workspace call graph ([`crate::callgraph`]) instead
//! of a per-file name index. L014–L016 are implemented in
//! [`crate::passes`] on top of the call graph and the per-function CFG
//! ([`crate::cfg`]). L017–L019 run on the gen/kill dataflow engine
//! ([`crate::dataflow`]): interprocedural taint with bottom-up function
//! summaries and must-reach obligation analysis.
//!
//! `KVS-L000` is reserved for the waiver machinery itself (a stale waiver
//! that matches nothing is an error — waivers must not outlive the code
//! they excuse).

use crate::scan::SourceFile;

/// One finding: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule ID (`KVS-L001` … `KVS-L019`, `KVS-L000` for waiver
    /// and baseline machinery errors).
    pub rule: &'static str,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Rule IDs with one-line summaries, for `kvs-lint rules` and the docs.
pub const RULES: &[(&str, &str)] = &[
    (
        "KVS-L001",
        "determinism guard: no SystemTime::now/Instant::now/ambient RNG in code that must replay",
    ),
    (
        "KVS-L002",
        "protocol drift: frame.rs constants must match the frame tables in frame.rs and docs/NET.md",
    ),
    (
        "KVS-L003",
        "error discipline: no `let _ =` result drops in net/cluster/persistence non-test code",
    ),
    (
        "KVS-L004",
        "error discipline: no .unwrap()/.expect() in net/cluster/persistence non-test code \
         without a waiver",
    ),
    (
        "KVS-L005",
        "every `unsafe` block needs a `// SAFETY:` comment on or directly above it",
    ),
    (
        "KVS-L006",
        "lock hygiene: std::sync::Mutex forbidden in crate code (use the parking_lot shim)",
    ),
    (
        "KVS-L007",
        "lock hygiene: no lock guard held across a blocking socket/channel call",
    ),
    (
        "KVS-L008",
        "comment contracts: send-seq monotonicity and the Busy re-arm contract stay documented",
    ),
    (
        "KVS-L009",
        "lock order: the acquired-while-held graph over net/cluster must be acyclic",
    ),
    (
        "KVS-L010",
        "channel topology: no unbounded channels without a waiver, no sends without a drain",
    ),
    (
        "KVS-L011",
        "stage stamps: every stamps[0..4] slot written exactly once, per the frame-kind contract",
    ),
    (
        "KVS-L012",
        "frame kinds: matches on FrameKind handle every declared kind or waive the wildcard",
    ),
    (
        "KVS-L013",
        "store-format drift: wal.rs/sst_file.rs constants must match their module-doc tables \
         and docs/STORE.md",
    ),
    (
        "KVS-L014",
        "blocking reachability: a `LINT-ZONE: nonblocking` function must not transitively \
         reach a blocking op (witnessed over the workspace call graph)",
    ),
    (
        "KVS-L015",
        "crash ordering: durable commit paths order write → fsync → rename → dir-fsync and \
         never GC before the manifest commit (docs/STORE.md contract, checked on the CFG)",
    ),
    (
        "KVS-L016",
        "deadline propagation: every forwarded v2 frame threads the incoming deadline — no \
         fresh 0/u64::MAX deadlines, checked across call sites",
    ),
    (
        "KVS-L017",
        "wire-input taint: values decoded from socket bytes must pass a validated bound \
         (MAX_PAYLOAD-style) before reaching an allocation, slice index or loop bound",
    ),
    (
        "KVS-L018",
        "determinism escape: wall-clock/RNG-derived values must not flow through returns or \
         arguments into the L001 determinism zones",
    ),
    (
        "KVS-L019",
        "receipt accounting: on durable read paths every CFG path performing a disk block \
         read charges the ReadReceipt before returning",
    ),
];

/// Everything the rules look at: scanned Rust sources plus the protocol
/// documentation the drift rule diffs against.
pub struct Workspace {
    /// All `.rs` files under `crates/` and `shims/` (fixtures and build
    /// output excluded).
    pub files: Vec<SourceFile>,
    /// `docs/NET.md`, when present: `(rel_path, lines)`.
    pub net_md: Option<(String, Vec<String>)>,
    /// `docs/STORE.md`, when present: `(rel_path, lines)` — the durable
    /// store's on-disk format documentation the L013 drift rule diffs
    /// against.
    pub store_md: Option<(String, Vec<String>)>,
}

impl Workspace {
    fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Runs every rule over the workspace and returns the findings, sorted by
/// path and line.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    run_all_timed(ws).0
}

/// [`run_all`] plus the wall-clock milliseconds the dataflow-engine
/// passes (KVS-L017 … KVS-L019, including summary construction) took —
/// the bench lane's `dataflow_ms` phase timing.
pub fn run_all_timed(ws: &Workspace) -> (Vec<Diagnostic>, f64) {
    let mut out = Vec::new();
    determinism_guard(ws, &mut out);
    protocol_drift(ws, &mut out);
    store_format_drift(ws, &mut out);
    result_drops(ws, &mut out);
    unwrap_discipline(ws, &mut out);
    unsafe_safety_comments(ws, &mut out);
    std_mutex_forbidden(ws, &mut out);
    lock_across_blocking(ws, &mut out);
    comment_contracts(ws, &mut out);
    let dataflow_ms = crate::passes::run(ws, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    (out, dataflow_ms)
}

/// The wall-clock portal: the only file allowed to call
/// `SystemTime::now()`.
const CLOCK_PORTAL: &str = "crates/net/src/clock.rs";

/// Crates (or single files) whose runs must be bit-reproducible: time
/// flows through `simcore::time`, randomness through seeded
/// `simcore::rng` streams. An ambient clock or RNG here silently breaks
/// the sim-vs-live cross-validation the methodology rests on.
const DETERMINISTIC_ZONES: &[&str] = &[
    "crates/simcore/src/",
    "crates/model/src/",
    "crates/balance/src/",
    "crates/stages/src/",
    "crates/store/src/",
    "crates/workloads/src/",
    "crates/core/src/",
    "crates/cluster/src/sim.rs",
    "crates/cluster/src/replication.rs",
];

pub(crate) fn in_deterministic_zone(rel: &str) -> bool {
    DETERMINISTIC_ZONES
        .iter()
        .any(|z| rel.starts_with(z) || rel == z.trim_end_matches('/'))
}

fn in_net_or_cluster_src(rel: &str) -> bool {
    rel.starts_with("crates/net/src/") || rel.starts_with("crates/cluster/src/")
}

/// The durable store's persistence modules: crash-safety code where a
/// silently dropped error or a panic can lose acknowledged writes, so the
/// error-discipline rules (L003/L004) apply with the same force as on the
/// net/cluster hot paths.
const PERSISTENCE_FILES: &[&str] = &[
    "crates/store/src/block.rs",
    "crates/store/src/wal.rs",
    "crates/store/src/sst_file.rs",
    "crates/store/src/manifest.rs",
    "crates/store/src/recovery.rs",
    "crates/store/src/durable.rs",
];

fn in_error_discipline_zone(rel: &str) -> bool {
    in_net_or_cluster_src(rel) || PERSISTENCE_FILES.contains(&rel)
}

/// KVS-L001.
fn determinism_guard(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // Ambient RNG constructors: banned workspace-wide. Every random draw
    // must trace back to a seed (`simcore::RngHub` streams or an explicit
    // `seed_from_u64`).
    const AMBIENT_RNG: &[&str] = &["thread_rng(", "from_entropy(", "rand::random("];
    for f in &ws.files {
        if !f.rel.starts_with("crates/") {
            continue;
        }
        let det = in_deterministic_zone(&f.rel);
        for (n, l) in f.numbered() {
            for tok in AMBIENT_RNG {
                if l.code.contains(tok) {
                    out.push(Diagnostic {
                        rule: "KVS-L001",
                        path: f.rel.clone(),
                        line: n,
                        message: format!(
                            "ambient RNG `{}` — derive a seeded stream from simcore::rng instead",
                            tok.trim_end_matches('(')
                        ),
                    });
                }
            }
            if l.code.contains("SystemTime::now") {
                let allowed = f.rel == CLOCK_PORTAL
                    || f.rel.starts_with("crates/bench/")
                    || (!det && !f.rel.contains("/src/"))
                    || (!det && l.in_test);
                if !allowed {
                    out.push(Diagnostic {
                        rule: "KVS-L001",
                        path: f.rel.clone(),
                        line: n,
                        message: "wall clock read outside the clock portal — route through \
                                  kvs_net::clock::wall_ns (live code) or simcore::time (sim code)"
                            .to_string(),
                    });
                }
            }
            if det && l.code.contains("Instant::now") {
                out.push(Diagnostic {
                    rule: "KVS-L001",
                    path: f.rel.clone(),
                    line: n,
                    message: "monotonic clock read in deterministic code — simulated components \
                              must take time from simcore::time, not the host"
                        .to_string(),
                });
            }
        }
    }
}

/// The frame header layout, as derived from `frame.rs` constants. Field
/// offsets follow from the fixed field order; `HEADER_LEN` pins the total.
struct FrameLayout {
    magic: u64,
    version: u64,
    version_v1: u64,
    header_len: u64,
    header_len_v1: u64,
    kinds: Vec<(String, u64)>,
}

impl FrameLayout {
    /// `(name, offset, size)` for every fixed header field. `payload` is
    /// reported with size 0 (its size is the `len` field).
    fn fields(&self) -> Vec<(&'static str, u64, u64)> {
        vec![
            ("magic", 0, 2),
            ("version", 2, 1),
            ("kind", 3, 1),
            ("flags", 4, 1),
            ("id", 5, 8),
            ("len", 13, 4),
            ("stamps", 17, 32),
            ("deadline", self.header_len - 12, 8),
            ("crc", self.header_len - 4, 4),
            ("payload", self.header_len, 0),
        ]
    }
}

fn parse_int(tok: &str) -> Option<u64> {
    let t = tok.trim().trim_end_matches(';').trim().replace('_', "");
    if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Extracts `pub const NAME: ty = value;` from the code view.
fn parse_const(f: &SourceFile, name: &str) -> Option<(u64, usize)> {
    let needle = format!("const {name}:");
    for (n, l) in f.numbered() {
        if let Some(pos) = l.code.find(&needle) {
            let rest = &l.code[pos..];
            let val = rest.split('=').nth(1)?;
            return parse_int(val).map(|v| (v, n));
        }
    }
    None
}

fn parse_frame_layout(f: &SourceFile, out: &mut Vec<Diagnostic>) -> Option<FrameLayout> {
    let mut get = |name: &str| -> Option<u64> {
        match parse_const(f, name) {
            Some((v, _)) => Some(v),
            None => {
                out.push(Diagnostic {
                    rule: "KVS-L002",
                    path: f.rel.clone(),
                    line: 1,
                    message: format!("could not parse `pub const {name}` — drift rule cannot run"),
                });
                None
            }
        }
    };
    let magic = get("MAGIC")?;
    let version = get("VERSION")?;
    let version_v1 = get("VERSION_V1")?;
    let header_len = get("HEADER_LEN")?;
    let header_len_v1 = get("HEADER_LEN_V1")?;
    let mut kinds = Vec::new();
    for (n, l) in f.numbered() {
        // `FrameKind::Request => 1,` — the to_byte arms. (from_byte's arms
        // are written value-first and don't match this shape.)
        let code = l.code.trim();
        if let Some(rest) = code.strip_prefix("FrameKind::") {
            if let Some((name, val)) = rest.split_once("=>") {
                let name = name.trim();
                if name.chars().all(|c| c.is_alphanumeric()) && !name.is_empty() {
                    if let Some(v) = parse_int(val.trim().trim_end_matches(',')) {
                        kinds.push((name.to_string(), v));
                    }
                }
            }
        }
        let _ = n;
    }
    if kinds.is_empty() {
        out.push(Diagnostic {
            rule: "KVS-L002",
            path: f.rel.clone(),
            line: 1,
            message: "could not parse FrameKind discriminants — drift rule cannot run".to_string(),
        });
        return None;
    }
    if header_len_v1 + 8 != header_len {
        out.push(Diagnostic {
            rule: "KVS-L002",
            path: f.rel.clone(),
            line: 1,
            message: format!(
                "HEADER_LEN ({header_len}) must be HEADER_LEN_V1 ({header_len_v1}) + 8 \
                 (the deadline field) — one of them drifted"
            ),
        });
    }
    Some(FrameLayout {
        magic,
        version,
        version_v1,
        header_len,
        header_len_v1,
        kinds,
    })
}

/// KVS-L002: the frame constants in `frame.rs` are the single source of
/// truth; the ASCII table in the `frame.rs` module docs and the markdown
/// table in `docs/NET.md` must agree with them byte for byte.
fn protocol_drift(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let Some(frame) = ws.file("crates/net/src/frame.rs") else {
        return; // fixture trees without a frame.rs skip the rule
    };
    let Some(layout) = parse_frame_layout(frame, out) else {
        return;
    };
    check_moduledoc_table(frame, &layout, out);
    if let Some((rel, lines)) = &ws.net_md {
        check_netmd_table(rel, lines, &layout, out);
    }
}

fn normalize_doc_name(name: &str) -> &str {
    match name {
        "checksum" | "crc" => "crc",
        s if s.starts_with("stamps") => "stamps",
        s => s,
    }
}

/// The ASCII table in frame.rs's own module docs: rows look like
/// `     0     2  magic        0x4B56 ("KV")`.
fn check_moduledoc_table(f: &SourceFile, layout: &FrameLayout, out: &mut Vec<Diagnostic>) {
    let expected = layout.fields();
    let mut seen = Vec::new();
    for (n, l) in f.numbered() {
        // Doc comments reach the comment view as `!      0     2  magic …`
        // (the `//` is consumed, the `!` or third `/` is not).
        let text = l
            .comment
            .trim_start()
            .trim_start_matches(['!', '/'])
            .trim_start();
        let toks: Vec<&str> = text.split_whitespace().collect();
        if toks.len() < 3 {
            continue;
        }
        let Some(offset) = parse_int(toks[0]) else {
            continue;
        };
        let size = parse_int(toks[1]);
        let name = normalize_doc_name(toks[2]).to_string();
        let Some(&(_, want_off, want_size)) = expected.iter().find(|(fname, _, _)| *fname == name)
        else {
            continue;
        };
        seen.push(name.clone());
        if offset != want_off {
            out.push(Diagnostic {
                rule: "KVS-L002",
                path: f.rel.clone(),
                line: n,
                message: format!(
                    "module-doc table: `{name}` at offset {offset}, but the constants put it \
                     at {want_off}"
                ),
            });
        }
        if name != "payload" && size != Some(want_size) {
            out.push(Diagnostic {
                rule: "KVS-L002",
                path: f.rel.clone(),
                line: n,
                message: format!(
                    "module-doc table: `{name}` sized {} bytes, but the constants say {want_size}",
                    toks[1]
                ),
            });
        }
    }
    for (name, _, _) in expected {
        if !seen.contains(&name.to_string()) {
            out.push(Diagnostic {
                rule: "KVS-L002",
                path: f.rel.clone(),
                line: 1,
                message: format!("module-doc table: field `{name}` is missing"),
            });
        }
    }
}

/// The markdown table in docs/NET.md: rows look like
/// `| 0 | 2 | magic | \`0x4B56\` (\`"KV"\`) |`.
fn check_netmd_table(rel: &str, lines: &[String], layout: &FrameLayout, out: &mut Vec<Diagnostic>) {
    let expected = layout.fields();
    let mut seen = Vec::new();
    let diag = |line: usize, message: String| Diagnostic {
        rule: "KVS-L002",
        path: rel.to_string(),
        line,
        message,
    };
    for (ix, raw) in lines.iter().enumerate() {
        let n = ix + 1;
        let plain = raw.replace('`', "");
        let cells: Vec<&str> = plain
            .trim()
            .trim_start_matches('|')
            .trim_end_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 4 {
            continue;
        }
        let Some(offset) = parse_int(cells[0]) else {
            continue;
        };
        let size = parse_int(cells[1]);
        let name = normalize_doc_name(cells[2]).to_string();
        let notes = cells[3];
        let Some(&(_, want_off, want_size)) = expected.iter().find(|(fname, _, _)| *fname == name)
        else {
            continue;
        };
        seen.push(name.clone());
        if offset != want_off {
            out.push(diag(
                n,
                format!(
                    "frame table: `{name}` documented at offset {offset}, but frame.rs puts it \
                     at {want_off}"
                ),
            ));
        }
        if name != "payload" && size != Some(want_size) {
            out.push(diag(
                n,
                format!(
                    "frame table: `{name}` documented as {} bytes, but frame.rs says {want_size}",
                    cells[1]
                ),
            ));
        }
        match name.as_str() {
            "magic" => {
                let want = format!("0x{:04X}", layout.magic);
                if !notes.contains(&want) {
                    out.push(diag(
                        n,
                        format!("frame table: magic notes must state {want}"),
                    ));
                }
            }
            "version"
                if !notes.contains(&layout.version.to_string())
                    || !notes.contains(&layout.version_v1.to_string()) =>
            {
                out.push(diag(
                    n,
                    format!(
                        "frame table: version notes must mention both v{} (current) and \
                         v{} (legacy)",
                        layout.version, layout.version_v1
                    ),
                ));
            }
            "kind" => {
                for (kname, kval) in &layout.kinds {
                    if !notes.contains(&format!("{kval} {kname}")) {
                        out.push(diag(
                            n,
                            format!(
                                "frame table: kind notes must map `{kval}` to `{kname}` \
                                 (frame.rs to_byte drifted from the docs)"
                            ),
                        ));
                    }
                }
            }
            "crc" => {
                let last_covered = layout.header_len - 5;
                if !notes.contains(&format!("0\u{2013}{last_covered}"))
                    && !notes.contains(&format!("0-{last_covered}"))
                {
                    out.push(diag(
                        n,
                        format!(
                            "frame table: crc notes must state coverage of header bytes \
                             0\u{2013}{last_covered} plus payload"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    for (name, _, _) in expected {
        if !seen.contains(&name.to_string()) {
            out.push(diag(1, format!("frame table: field `{name}` is missing")));
        }
    }
    let body = lines.join("\n");
    if !body.contains(&format!("{} bytes", layout.header_len)) {
        out.push(diag(
            1,
            format!(
                "prose must state the current header size ({} bytes)",
                layout.header_len
            ),
        ));
    }
    if !body.contains(&format!("{}-byte header", layout.header_len_v1)) {
        out.push(diag(
            1,
            format!(
                "prose must state the v{} header size ({}-byte header)",
                layout.version_v1, layout.header_len_v1
            ),
        ));
    }
}

/// One on-disk store layout pinned by KVS-L013: the source file its
/// constants come from, the field list those constants imply, and how the
/// documentation must restate it.
struct StoreLayout {
    /// `crates/store/src/…` file the constants live in.
    src: String,
    /// Lowercase substring identifying this layout's section heading in
    /// `docs/STORE.md` (rows outside a matching section are ignored, so
    /// the two tables' shared field names cannot cross-talk).
    heading: &'static str,
    magic: u64,
    version: u64,
    /// What the prose must call the structure, e.g. `72-byte footer`.
    prose: String,
    /// `(name, offset, size)`, offsets derived from the fixed field order.
    fields: Vec<(&'static str, u64, u64)>,
}

/// Derives one [`StoreLayout`] from a store source file, or reports why it
/// can't. `sizes` is the fixed field order; offsets follow from it and the
/// `len_const` constant pins the total, so a resized field that forgets to
/// bump the length constant is itself a finding.
fn parse_store_layout(
    f: &SourceFile,
    prefix: &str,
    len_const: &str,
    heading: &'static str,
    noun: &str,
    sizes: &[(&'static str, u64)],
    out: &mut Vec<Diagnostic>,
) -> Option<StoreLayout> {
    let mut get = |name: String| -> Option<u64> {
        match parse_const(f, &name) {
            Some((v, _)) => Some(v),
            None => {
                out.push(Diagnostic {
                    rule: "KVS-L013",
                    path: f.rel.clone(),
                    line: 1,
                    message: format!("could not parse `pub const {name}` — drift rule cannot run"),
                });
                None
            }
        }
    };
    let magic = get(format!("{prefix}_MAGIC"))?;
    let version = get(format!("{prefix}_VERSION"))?;
    let len = get(len_const.to_string())?;
    let mut fields = Vec::new();
    let mut offset = 0;
    for &(name, size) in sizes {
        fields.push((name, offset, size));
        offset += size;
    }
    if offset != len {
        out.push(Diagnostic {
            rule: "KVS-L013",
            path: f.rel.clone(),
            line: 1,
            message: format!(
                "{len_const} ({len}) disagrees with the sum of the fixed field sizes \
                 ({offset}) — a field was resized without bumping the length constant"
            ),
        });
    }
    Some(StoreLayout {
        src: f.rel.clone(),
        heading,
        magic,
        version,
        prose: format!("{len}-byte {noun}"),
        fields,
    })
}

/// The ASCII table in a store module's own docs: rows look like
/// `!      0    4 magic        0x4B57414C ("KWAL")`.
fn check_store_moduledoc_table(f: &SourceFile, layout: &StoreLayout, out: &mut Vec<Diagnostic>) {
    let mut seen = Vec::new();
    for (n, l) in f.numbered() {
        let text = l
            .comment
            .trim_start()
            .trim_start_matches(['!', '/'])
            .trim_start();
        let toks: Vec<&str> = text.split_whitespace().collect();
        if toks.len() < 3 {
            continue;
        }
        let Some(offset) = parse_int(toks[0]) else {
            continue;
        };
        let size = parse_int(toks[1]);
        let Some(&(name, want_off, want_size)) =
            layout.fields.iter().find(|(fname, _, _)| *fname == toks[2])
        else {
            continue;
        };
        seen.push(name);
        if offset != want_off {
            out.push(Diagnostic {
                rule: "KVS-L013",
                path: f.rel.clone(),
                line: n,
                message: format!(
                    "module-doc table: `{name}` at offset {offset}, but the constants put it \
                     at {want_off}"
                ),
            });
        }
        if size != Some(want_size) {
            out.push(Diagnostic {
                rule: "KVS-L013",
                path: f.rel.clone(),
                line: n,
                message: format!(
                    "module-doc table: `{name}` sized {} bytes, but the constants say {want_size}",
                    toks[1]
                ),
            });
        }
    }
    for &(name, _, _) in &layout.fields {
        if !seen.contains(&name) {
            out.push(Diagnostic {
                rule: "KVS-L013",
                path: f.rel.clone(),
                line: 1,
                message: format!("module-doc table: field `{name}` is missing"),
            });
        }
    }
}

/// The markdown tables in docs/STORE.md: each layout's rows sit under a
/// heading naming it (`### WAL segment header`, `### SSTable footer`);
/// rows look like `| 0 | 4 | magic | \`0x4B57414C\` (\`"KWAL"\`) |`.
fn check_store_md(rel: &str, lines: &[String], layouts: &[StoreLayout], out: &mut Vec<Diagnostic>) {
    let mut active: Option<usize> = None;
    let mut seen: Vec<Vec<&str>> = layouts.iter().map(|_| Vec::new()).collect();
    for (ix, raw) in lines.iter().enumerate() {
        let n = ix + 1;
        if raw.trim_start().starts_with('#') {
            let h = raw.to_ascii_lowercase();
            active = layouts.iter().position(|l| h.contains(l.heading));
            continue;
        }
        let Some(lix) = active else {
            continue;
        };
        let layout = &layouts[lix];
        let plain = raw.replace('`', "");
        let cells: Vec<&str> = plain
            .trim()
            .trim_start_matches('|')
            .trim_end_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 4 {
            continue;
        }
        let Some(offset) = parse_int(cells[0]) else {
            continue;
        };
        let size = parse_int(cells[1]);
        let notes = cells[3];
        let Some(&(name, want_off, want_size)) = layout
            .fields
            .iter()
            .find(|(fname, _, _)| *fname == cells[2])
        else {
            continue;
        };
        seen[lix].push(name);
        let diag = |line: usize, message: String| Diagnostic {
            rule: "KVS-L013",
            path: rel.to_string(),
            line,
            message,
        };
        if offset != want_off {
            out.push(diag(
                n,
                format!(
                    "{} table: `{name}` documented at offset {offset}, but {} puts it at \
                     {want_off}",
                    layout.heading, layout.src
                ),
            ));
        }
        if size != Some(want_size) {
            out.push(diag(
                n,
                format!(
                    "{} table: `{name}` documented as {} bytes, but {} says {want_size}",
                    layout.heading, cells[1], layout.src
                ),
            ));
        }
        match name {
            "magic" => {
                let want = format!("0x{:08X}", layout.magic);
                if !notes.contains(&want) {
                    out.push(diag(
                        n,
                        format!("{} table: magic notes must state {want}", layout.heading),
                    ));
                }
            }
            "version" if !notes.contains(&layout.version.to_string()) => {
                out.push(diag(
                    n,
                    format!(
                        "{} table: version notes must state {}",
                        layout.heading, layout.version
                    ),
                ));
            }
            _ => {}
        }
    }
    let body = lines.join("\n");
    for (lix, layout) in layouts.iter().enumerate() {
        for &(name, _, _) in &layout.fields {
            if !seen[lix].contains(&name) {
                out.push(Diagnostic {
                    rule: "KVS-L013",
                    path: rel.to_string(),
                    line: 1,
                    message: format!(
                        "{} table: field `{name}` is missing (or outside a `{}` section)",
                        layout.heading, layout.heading
                    ),
                });
            }
        }
        if !body.contains(&layout.prose) {
            out.push(Diagnostic {
                rule: "KVS-L013",
                path: rel.to_string(),
                line: 1,
                message: format!(
                    "prose must state the encoded size (`{}`) pinned by {}",
                    layout.prose, layout.src
                ),
            });
        }
    }
}

/// KVS-L013: the durable store's format constants in `wal.rs` and
/// `sst_file.rs` are the single source of truth; the ASCII tables in their
/// module docs and the markdown tables in `docs/STORE.md` must agree with
/// them byte for byte. Dormant in trees without the store sources.
fn store_format_drift(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    const WAL_SIZES: &[(&str, u64)] = &[
        ("magic", 4),
        ("version", 1),
        ("reserved", 3),
        ("segment_seq", 8),
    ];
    const SST_SIZES: &[(&str, u64)] = &[
        ("magic", 4),
        ("version", 1),
        ("reserved", 3),
        ("generation", 8),
        ("column_index_size", 8),
        ("index_off", 8),
        ("index_len", 8),
        ("bloom_off", 8),
        ("bloom_len", 8),
        ("meta_crc", 8),
        ("footer_crc", 8),
    ];
    let mut layouts = Vec::new();
    if let Some(f) = ws.file("crates/store/src/wal.rs") {
        if let Some(layout) = parse_store_layout(
            f,
            "WAL",
            "WAL_HEADER_LEN",
            "segment header",
            "header",
            WAL_SIZES,
            out,
        ) {
            check_store_moduledoc_table(f, &layout, out);
            layouts.push(layout);
        }
    }
    if let Some(f) = ws.file("crates/store/src/sst_file.rs") {
        if let Some(layout) = parse_store_layout(
            f,
            "SST",
            "SST_FOOTER_LEN",
            "footer",
            "footer",
            SST_SIZES,
            out,
        ) {
            check_store_moduledoc_table(f, &layout, out);
            layouts.push(layout);
        }
    }
    if layouts.is_empty() {
        return; // fixture trees without the store sources skip the rule
    }
    match &ws.store_md {
        Some((rel, lines)) => check_store_md(rel, lines, &layouts, out),
        None => {
            for layout in &layouts {
                out.push(Diagnostic {
                    rule: "KVS-L013",
                    path: layout.src.clone(),
                    line: 1,
                    message: "docs/STORE.md is missing — the on-disk format this file defines \
                              must be documented there"
                        .to_string(),
                });
            }
        }
    }
}

/// KVS-L003.
fn result_drops(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        if !in_error_discipline_zone(&f.rel) {
            continue;
        }
        for (n, l) in f.numbered() {
            if l.in_test {
                continue;
            }
            if l.code.contains("let _ =") || l.code.contains("let _=") {
                out.push(Diagnostic {
                    rule: "KVS-L003",
                    path: f.rel.clone(),
                    line: n,
                    message: "silently dropped result — handle the error, log the branch, or \
                              waive it with a justification"
                        .to_string(),
                });
            }
        }
    }
}

/// KVS-L004.
fn unwrap_discipline(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        if !in_error_discipline_zone(&f.rel) {
            continue;
        }
        for (n, l) in f.numbered() {
            if l.in_test {
                continue;
            }
            for tok in [".unwrap()", ".expect("] {
                if l.code.contains(tok) {
                    out.push(Diagnostic {
                        rule: "KVS-L004",
                        path: f.rel.clone(),
                        line: n,
                        message: format!(
                            "`{}` in a hot path — propagate the error or waive with the \
                             invariant that makes it unreachable",
                            tok.trim_end_matches('(')
                        ),
                    });
                }
            }
        }
    }
}

fn contains_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0
            || !code[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after_ok = !code[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// KVS-L005.
fn unsafe_safety_comments(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        for (n, l) in f.numbered() {
            if !contains_word(&l.code, "unsafe") {
                continue;
            }
            let covered = (n.saturating_sub(4)..n)
                .filter_map(|ix| f.lines.get(ix))
                .any(|li| li.comment.contains("SAFETY:"));
            if !covered {
                out.push(Diagnostic {
                    rule: "KVS-L005",
                    path: f.rel.clone(),
                    line: n,
                    message: "`unsafe` without a `// SAFETY:` comment on or directly above it"
                        .to_string(),
                });
            }
        }
    }
}

/// KVS-L006.
fn std_mutex_forbidden(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        let in_crate_src = f.rel.starts_with("crates/") && f.rel.contains("/src/");
        if !in_crate_src || f.rel.starts_with("crates/lint/") {
            continue;
        }
        for (n, l) in f.numbered() {
            if l.in_test {
                continue;
            }
            let qualified = l.code.contains("std::sync::Mutex") || l.code.contains("sync::Mutex");
            let imported = l.code.contains("use std::sync::") && contains_word(&l.code, "Mutex");
            if qualified || imported {
                out.push(Diagnostic {
                    rule: "KVS-L006",
                    path: f.rel.clone(),
                    line: n,
                    message: "std::sync::Mutex in crate code — the workspace standard is the \
                              parking_lot shim (poison-free lock())"
                        .to_string(),
                });
            }
        }
    }
}

/// Calls that can block on a peer or another thread. Holding a lock across
/// one of these turns backpressure into a pile-up behind the lock.
const BLOCKING_CALLS: &[&str] = &[
    ".write_all(",
    ".write_to(",
    ".read_exact(",
    "::read_from(",
    ".recv()",
    ".recv_timeout(",
    ".accept()",
    "thread::sleep(",
    ".join()",
];

fn blocking_call_in(code: &str) -> Option<&'static str> {
    BLOCKING_CALLS.iter().find(|t| code.contains(**t)).copied()
}

/// KVS-L007: two heuristics over `crates/net/src`:
///
/// 1. a statement that both takes a lock and makes a blocking call
///    (`frame.write_to(&mut *conn.lock())`);
/// 2. a `let guard = …lock();` binding whose enclosing block performs a
///    blocking call before the guard's scope closes.
fn lock_across_blocking(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for f in &ws.files {
        if !f.rel.starts_with("crates/net/src/") {
            continue;
        }
        let mut depth: i64 = 0;
        // Open guard scopes: (depth at binding, guard name).
        let mut guards: Vec<(i64, String)> = Vec::new();
        for (n, l) in f.numbered() {
            if l.in_test {
                continue;
            }
            let code = l.code.trim();
            if code.contains(".lock()") {
                if let Some(call) = blocking_call_in(code) {
                    out.push(Diagnostic {
                        rule: "KVS-L007",
                        path: f.rel.clone(),
                        line: n,
                        message: format!(
                            "lock taken and blocking call `{}` in one statement — the guard is \
                             held for the whole call",
                            call.trim_matches(|c| c == '.' || c == ':' || c == '(')
                        ),
                    });
                } else if code.starts_with("let ") && code.ends_with(".lock();") {
                    let name = code
                        .trim_start_matches("let ")
                        .trim_start_matches("mut ")
                        .split(['=', ':'])
                        .next()
                        .unwrap_or("")
                        .trim()
                        .to_string();
                    guards.push((depth, name));
                }
            } else if !guards.is_empty() {
                if let Some(call) = blocking_call_in(code) {
                    out.push(Diagnostic {
                        rule: "KVS-L007",
                        path: f.rel.clone(),
                        line: n,
                        message: format!(
                            "blocking call `{}` while lock guard `{}` from this scope is live",
                            call.trim_matches(|c| c == '.' || c == ':' || c == '('),
                            guards
                                .last()
                                .map(|(_, g)| g.as_str())
                                .unwrap_or("<unknown>")
                        ),
                    });
                }
                guards.retain(|(_, g)| !(code.contains("drop(") && code.contains(g.as_str())));
            }
            for c in l.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        guards.retain(|&(d, _)| d <= depth);
                    }
                    _ => {}
                }
            }
        }
    }
}

/// KVS-L008: the invariants PR 1–3 established by convention, pinned as
/// comment contracts so they cannot silently evaporate in a refactor.
fn comment_contracts(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    if let Some(f) = ws.file("crates/net/src/master.rs") {
        send_seq_monotonicity(f, out);
        busy_rearm_contract(f, out);
    }
    if let Some((rel, lines)) = &ws.net_md {
        let body = lines.join("\n");
        if !body.contains("flow control, never a failure") {
            out.push(Diagnostic {
                rule: "KVS-L008",
                path: rel.clone(),
                line: 1,
                message: "docs/NET.md must state the backpressure contract: \
                          \"Busy is flow control, never a failure\""
                    .to_string(),
            });
        }
    }
}

/// The request send sequence (`stamps[2]`) is what the chaos proxies audit
/// per connection; it must only ever move forward. Statically: every
/// mention of `send_seq` in master.rs must be its declaration, its zero
/// initialization, a read into `seq`, or a `+= 1` bump — any other
/// mutation (a reset, a decrement, arithmetic) breaks the audit.
fn send_seq_monotonicity(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let mut decl_line = None;
    for (n, l) in f.numbered() {
        if l.in_test || !l.code.contains("send_seq") {
            continue;
        }
        let code = l.code.trim();
        if code.contains("send_seq: u64") {
            decl_line = Some(n);
            continue;
        }
        let allowed = code.contains("send_seq += 1")
            || code.contains("let seq = self.send_seq")
            || code.contains("send_seq: 0");
        if !allowed {
            out.push(Diagnostic {
                rule: "KVS-L008",
                path: f.rel.clone(),
                line: n,
                message: "send_seq may only be read into `seq` or bumped with `+= 1` — any \
                          other use can regress the sequence the chaos proxies audit"
                    .to_string(),
            });
        }
    }
    match decl_line {
        None => out.push(Diagnostic {
            rule: "KVS-L008",
            path: f.rel.clone(),
            line: 1,
            message: "master.rs must declare the `send_seq: u64` monotone send counter".to_string(),
        }),
        Some(n) => {
            let documented = (n.saturating_sub(4)..n)
                .filter_map(|ix| f.lines.get(ix))
                .any(|li| li.comment.to_ascii_lowercase().contains("monotone"));
            if !documented {
                out.push(Diagnostic {
                    rule: "KVS-L008",
                    path: f.rel.clone(),
                    line: n,
                    message: "the send_seq field must document its monotone contract in the \
                              comment directly above it"
                        .to_string(),
                });
            }
        }
    }
}

/// The Busy allowance re-arm is behavior tests pin (`busy_budget.rs`); the
/// code site must keep saying so, or the next refactor will "simplify" it
/// away.
fn busy_rearm_contract(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    let arm = f
        .numbered()
        .find(|(_, l)| !l.in_test && l.code.contains("FrameKind::Busy =>"));
    let Some((arm_line, _)) = arm else {
        return; // no Busy handling in this (fixture) master.rs
    };
    let documented = (arm_line..arm_line + 30)
        .filter_map(|n| f.lines.get(n - 1))
        .any(|li| li.comment.contains("re-arm"));
    if !documented {
        out.push(Diagnostic {
            rule: "KVS-L008",
            path: f.rel.clone(),
            line: arm_line,
            message: "the Busy arm must carry the re-arm contract comment (Busy re-arms the \
                      wall-clock allowance; flow control is never a failure)"
                .to_string(),
        });
    }
    let mentions_pin = f
        .lines
        .iter()
        .any(|l| l.comment.contains("busy_budget") || l.code.contains("busy_budget"));
    if !mentions_pin {
        out.push(Diagnostic {
            rule: "KVS-L008",
            path: f.rel.clone(),
            line: arm_line,
            message: "master.rs must reference the pinning test (tests/busy_budget.rs) near \
                      the Busy contract"
                .to_string(),
        });
    }
}
