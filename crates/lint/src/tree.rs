//! Token trees: the brace/bracket/paren-matched view of a token stream.
//!
//! The semantic passes ([`crate::passes`]) walk these trees instead of raw
//! lines, so a lock acquired inside a nested block, a `stamps:` array
//! split over several lines, or a match arm with a block body all parse
//! the same way `rustfmt` may choose to lay them out.
//!
//! Whitespace and comment tokens are dropped here — the trees hold *code*
//! leaves only. Anything needing exact text (the round-trip invariant,
//! the scanner's per-line views) works on the token stream itself.

use crate::token::{Tok, TokKind};

/// Group delimiter kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// A delimited group of trees.
#[derive(Debug)]
pub struct Group {
    /// Delimiter kind.
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter; `None` when unterminated.
    pub close: Option<usize>,
    /// Children, in order.
    pub children: Vec<Tree>,
}

/// One node: a code token or a delimited group.
#[derive(Debug)]
pub enum Tree {
    /// A single code token (index into the token slice).
    Leaf(usize),
    /// A delimited group.
    Group(Group),
}

fn open_delim(c: char) -> Option<Delim> {
    match c {
        '(' => Some(Delim::Paren),
        '[' => Some(Delim::Bracket),
        '{' => Some(Delim::Brace),
        _ => None,
    }
}

fn close_delim(c: char) -> Option<Delim> {
    match c {
        ')' => Some(Delim::Paren),
        ']' => Some(Delim::Bracket),
        '}' => Some(Delim::Brace),
        _ => None,
    }
}

/// Builds the tree forest for a token stream. Tolerant of unbalanced
/// input: a stray closer becomes a leaf, an unclosed group is closed at
/// EOF with `close: None`.
pub fn build(src: &str, toks: &[Tok]) -> Vec<Tree> {
    let mut stack: Vec<(Delim, usize, Vec<Tree>)> = Vec::new();
    let mut cur: Vec<Tree> = Vec::new();
    for (ix, t) in toks.iter().enumerate() {
        if !t.kind.is_code() {
            continue;
        }
        let ch = if t.kind == TokKind::Punct {
            t.text(src).chars().next()
        } else {
            None
        };
        if let Some(d) = ch.and_then(open_delim) {
            stack.push((d, ix, std::mem::take(&mut cur)));
            continue;
        }
        if let Some(d) = ch.and_then(close_delim) {
            if stack.last().is_some_and(|&(sd, _, _)| sd == d) {
                let (delim, open, parent) = stack.pop().expect("checked non-empty");
                let children = std::mem::replace(&mut cur, parent);
                cur.push(Tree::Group(Group {
                    delim,
                    open,
                    close: Some(ix),
                    children,
                }));
                continue;
            }
            // Stray closer: keep it as a leaf so spans stay visible.
        }
        cur.push(Tree::Leaf(ix));
    }
    while let Some((delim, open, parent)) = stack.pop() {
        let children = std::mem::replace(&mut cur, parent);
        cur.push(Tree::Group(Group {
            delim,
            open,
            close: None,
            children,
        }));
    }
    cur
}

/// A function definition found in the forest: its name, the line of the
/// `fn` keyword, and the body group.
pub struct FnDef<'t> {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// The `{ … }` body.
    pub body: &'t Group,
}

/// Extracts every function with a body, at any nesting depth (free
/// functions, impl methods, functions inside `mod`s and other functions).
pub fn functions<'t>(src: &str, toks: &[Tok], trees: &'t [Tree]) -> Vec<FnDef<'t>> {
    let mut out = Vec::new();
    collect_fns(src, toks, trees, &mut out);
    out
}

fn collect_fns<'t>(src: &str, toks: &[Tok], trees: &'t [Tree], out: &mut Vec<FnDef<'t>>) {
    let mut i = 0;
    while i < trees.len() {
        if let Tree::Leaf(ix) = trees[i] {
            if toks[ix].kind == TokKind::Ident && toks[ix].text(src) == "fn" {
                if let Some((def, next)) = fn_at(src, toks, trees, i) {
                    collect_fns(src, toks, &def.body.children, out);
                    out.push(def);
                    i = next;
                    continue;
                }
            }
        }
        if let Tree::Group(g) = &trees[i] {
            collect_fns(src, toks, &g.children, out);
        }
        i += 1;
    }
}

/// Parses `fn name … { body }` starting at sibling index `i` (at the `fn`
/// leaf). Returns the definition and the sibling index just past the
/// body. Bodiless declarations (`fn f();` in traits) return `None`.
fn fn_at<'t>(src: &str, toks: &[Tok], trees: &'t [Tree], i: usize) -> Option<(FnDef<'t>, usize)> {
    let Tree::Leaf(fn_ix) = trees[i] else {
        return None;
    };
    let name = trees.get(i + 1).and_then(|t| match t {
        Tree::Leaf(ix) if toks[*ix].kind == TokKind::Ident => Some(toks[*ix].text(src).to_string()),
        _ => None,
    })?;
    for (j, t) in trees.iter().enumerate().skip(i + 2) {
        match t {
            Tree::Leaf(ix) => {
                let tk = &toks[*ix];
                if tk.kind == TokKind::Punct && tk.text(src) == ";" {
                    return None; // declaration without a body
                }
            }
            Tree::Group(g) if g.delim == Delim::Brace => {
                return Some((
                    FnDef {
                        name,
                        line: toks[fn_ix].line,
                        body: g,
                    },
                    j + 1,
                ));
            }
            Tree::Group(_) => {}
        }
    }
    None
}

/// Concatenated source text of a tree slice (code tokens only, no
/// whitespace): `job.frame.stamps[1]`, `wall_ns()`, …
pub fn text_of(src: &str, toks: &[Tok], trees: &[Tree]) -> String {
    let mut s = String::new();
    for t in trees {
        match t {
            Tree::Leaf(ix) => s.push_str(toks[*ix].text(src)),
            Tree::Group(g) => {
                let (open, close) = match g.delim {
                    Delim::Paren => ('(', ')'),
                    Delim::Bracket => ('[', ']'),
                    Delim::Brace => ('{', '}'),
                };
                s.push(open);
                s.push_str(&text_of(src, toks, &g.children));
                s.push(close);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn forest(src: &str) -> (Vec<Tok>, Vec<Tree>) {
        let toks = tokenize(src);
        let trees = build(src, &toks);
        (toks, trees)
    }

    #[test]
    fn groups_match_and_nest() {
        let src = "fn f(a: u32) -> u32 { if a > [1, 2][0] { a } else { 0 } }";
        let (toks, trees) = forest(src);
        let fns = functions(src, &toks, &trees);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
        assert_eq!(fns[0].line, 1);
        assert!(fns[0].body.close.is_some());
    }

    #[test]
    fn nested_and_trait_functions() {
        let src =
            "trait T { fn decl(&self); }\nimpl S {\n fn outer(&self) { fn inner() {} inner() } }";
        let (toks, trees) = forest(src);
        let mut names: Vec<String> = functions(src, &toks, &trees)
            .into_iter()
            .map(|f| f.name)
            .collect();
        names.sort();
        assert_eq!(names, vec!["inner", "outer"]);
    }

    #[test]
    fn tolerates_unbalanced_input() {
        let (_, trees) = forest("fn f() { let x = (1; }");
        assert!(!trees.is_empty());
        let (_, trees2) = forest(") } fn g() {}");
        assert!(!trees2.is_empty());
    }

    #[test]
    fn text_of_reconstructs_expressions() {
        let src = "stamps: [job.frame.stamps[1], wall_ns(), db_end, 0]";
        let (toks, trees) = forest(src);
        assert_eq!(
            text_of(src, &toks, &trees),
            "stamps:[job.frame.stamps[1],wall_ns(),db_end,0]"
        );
    }
}
