//! Minimal JSON support for the baseline file and machine output.
//!
//! kvs-lint is deliberately dependency-free (it guards the shims, so it
//! must build when every shim is broken), which rules out serde. This is
//! the smallest JSON layer the linter needs: a value type whose objects
//! preserve insertion order (so emitted files diff cleanly), a
//! recursive-descent parser for `lint.baseline.json`, and a serializer
//! for the `--format json|sarif` outputs. Numbers are kept as `f64` —
//! line numbers are the only numbers we round-trip.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (we only ever emit non-negative integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline, so the
    /// committed baseline diffs line-by-line.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry a byte offset and message.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "unsupported escape {:?}",
                                other.map(|b| b as char)
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().expect("checked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Shorthand for building an object.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Shorthand for a string value.
pub fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let src = r#"{"version": 1, "findings": [{"rule": "KVS-L010", "path": "a/b.rs", "contains": "tx.send(\"x\")"}], "ok": true, "none": null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("version").and_then(Value::as_num), Some(1.0));
        let f = &v.get("findings").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            f.get("contains").and_then(Value::as_str),
            Some("tx.send(\"x\")")
        );
        let re = parse(&v.to_pretty()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn pretty_output_is_stable_and_indented() {
        let v = obj(vec![
            ("version", Value::Num(1.0)),
            ("findings", Value::Arr(vec![])),
        ]);
        assert_eq!(
            v.to_pretty(),
            "{\n  \"version\": 1,\n  \"findings\": []\n}\n"
        );
    }
}
