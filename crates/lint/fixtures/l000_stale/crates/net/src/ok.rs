//! Fixture: clean file; the tree's waiver matches nothing and is stale.

pub fn add(a: u32, b: u32) -> u32 {
    a.wrapping_add(b)
}
