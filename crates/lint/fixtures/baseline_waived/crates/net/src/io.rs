//! Fixture: a finding covered by BOTH a waiver and a baseline entry.
//! The waiver outranks the ratchet, but the entry must not read stale.

pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}
