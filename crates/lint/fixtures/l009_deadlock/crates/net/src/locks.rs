//! Fixture: two functions acquire the same pair of locks in opposite
//! orders — the acquired-while-held graph has a cycle (KVS-L009).

use parking_lot::Mutex;

pub struct Shared {
    pub accounts: Mutex<u64>,
    pub journal: Mutex<u64>,
}

pub fn credit(s: &Shared) {
    let accounts = s.accounts.lock();
    let mut journal = s.journal.lock();
    *journal += *accounts;
    drop(journal);
    drop(accounts);
}

pub fn audit(s: &Shared) {
    let journal = s.journal.lock();
    let mut accounts = s.accounts.lock();
    *accounts += *journal;
    drop(accounts);
    drop(journal);
}
