//! Fixture: a `LINT-ZONE: nonblocking` function that reaches a blocking
//! op two hops away through the call graph.

use std::time::Duration;

// LINT-ZONE: nonblocking — readiness verdicts must never stall the loop.
pub fn classify(n: u64) -> u64 {
    throttle(n)
}

fn throttle(n: u64) -> u64 {
    backoff();
    n
}

fn backoff() {
    std::thread::sleep(Duration::from_millis(1));
}
