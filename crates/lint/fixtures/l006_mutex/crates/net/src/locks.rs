//! Fixture: std::sync::Mutex where parking_lot is the standard.

use std::sync::Mutex;

pub struct Registry {
    pub entries: Mutex<Vec<u32>>,
}
