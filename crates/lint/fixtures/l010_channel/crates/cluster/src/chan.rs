//! Fixture: channel-topology violations (KVS-L010) — one unbounded
//! construction, one bounded channel whose receiver is never drained.

pub fn unbounded_events() -> u64 {
    let (event_tx, event_rx) = crossbeam::channel::unbounded::<u64>();
    event_tx.send(7).ok();
    match event_rx.recv() {
        Ok(v) => v,
        Err(_) => 0,
    }
}

pub fn dead_letter() {
    let (job_tx, _job_rx) = crossbeam::channel::bounded::<u64>(8);
    job_tx.send(1).ok();
}
