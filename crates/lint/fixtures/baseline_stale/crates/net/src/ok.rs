//! Fixture: error discipline and lock hygiene done right (KVS-L003/L004/
//! L006/L007 pass).

use parking_lot::Mutex;

pub fn toggle(flag: &Mutex<bool>) {
    let mut guard = flag.lock();
    *guard = !*guard;
}

pub fn parse(s: &str) -> Option<u32> {
    s.parse().ok()
}
