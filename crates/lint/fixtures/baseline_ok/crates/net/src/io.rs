//! Fixture: an un-waived unwrap in a hot path.

pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}
