//! Fixture: v2 frames minting fresh deadlines — one directly in the
//! literal, one laundered through a parameter and caught at the call
//! site.

pub fn forward(node: u32, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Write,
        node,
        payload,
        deadline: u64::MAX,
    }
}

fn send_frame(node: u32, deadline: u64) -> Frame {
    Frame {
        kind: FrameKind::Replay,
        node,
        deadline,
    }
}

pub fn replay(node: u32) -> Frame {
    send_frame(node, 0)
}
