//! Fixture: a response frame drops the in-db stage stamp, and a write
//! frame stamps the slave-owned slot (both KVS-L011).

pub fn reply(first: u64, dequeued: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Response,
        id: 9,
        stamps: [first, dequeued, 0, wall_ns()],
        payload,
    }
}

pub fn send_write(issued: u64, sent: u64, seq: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Write,
        id: 11,
        stamps: [issued, sent, seq, wall_ns()],
        payload,
    }
}
