//! Fixture: a response frame drops the in-db stage stamp (KVS-L011).

pub fn reply(first: u64, dequeued: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Response,
        id: 9,
        stamps: [first, dequeued, 0, wall_ns()],
        payload,
    }
}
