//! Fixture: a live-side tick smuggles host wall-clock time into the
//! deterministic model instead of threading sim time through.

pub fn tick(model: &mut Model) {
    let host_now = wall_ns();
    advance(model, host_now);
}
