//! Fixture: the deterministic model — advancing takes the new time as
//! an explicit parameter, so callers choose the clock.

pub fn advance(model: &mut Model, now: u64) {
    model.t = now;
}
