//! Fixture: the `load_block` shape — the checksum early-return escapes
//! the function before the ReadReceipt charges land.

pub fn load_block(file: &mut File, meta: &BlockMeta, receipt: &mut ReadReceipt) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; meta.len];
    file.read_exact(&mut buf)?;
    if fnv64(&buf) != meta.checksum {
        return Err(corrupt(meta.offset));
    }
    receipt.disk_blocks_read += 1;
    receipt.disk_bytes_read += meta.len as u64;
    Ok(buf)
}
