//! Fixture: a wildcard arm swallows three frame kinds (KVS-L012).

pub struct Master {
    /// Monotone per-master send sequence; stamped into `stamps[2]` and
    /// audited per connection by the chaos proxy.
    send_seq: u64,
}

impl Master {
    pub fn new() -> Master {
        Master { send_seq: 0 }
    }

    pub fn next_seq(&mut self) -> u64 {
        let seq = self.send_seq;
        self.send_seq += 1;
        seq
    }

    pub fn on_frame(&mut self, kind: super::frame::FrameKind) {
        match kind {
            super::frame::FrameKind::Busy => {
                self.on_busy();
            }
            _ => {}
        }
    }

    fn on_busy(&mut self) {
        // Busy re-arms the wall-clock allowance; flow control is never a
        // failure (tests/busy_budget.rs pins the boundary).
    }
}
