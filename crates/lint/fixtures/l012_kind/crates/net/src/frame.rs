//! Fixture frame module: constants and doc table agree (KVS-L002 pass).
//!
//! ```text
//! offset  size  field
//!      0     2  magic        0x4B56 ("KV")
//!      2     1  version      2 (version 1 still decodes)
//!      3     1  kind         1 = request, 2 = response, 3 = busy,
//!                            4 = expired, 5 = write, 6 = write-ack,
//!                            7 = rmw
//!      4     1  flags        bit 0: compact codec
//!      5     8  id           request id
//!     13     4  len          payload length in bytes
//!     17    32  stamps[4]    wall-clock nanoseconds
//!     49     8  deadline     absolute deadline; 0 = none
//!     57     4  checksum     CRC-32 over bytes [0, 57) + payload
//!     61   len  payload      codec-encoded body
//! ```

pub const MAGIC: u16 = 0x4B56;
pub const VERSION: u8 = 2;
pub const VERSION_V1: u8 = 1;
pub const HEADER_LEN: usize = 61;
pub const HEADER_LEN_V1: usize = 53;

pub enum FrameKind {
    Request,
    Response,
    Busy,
    Expired,
    Write,
    WriteAck,
    Rmw,
}

impl FrameKind {
    pub fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Busy => 3,
            FrameKind::Expired => 4,
            FrameKind::Write => 5,
            FrameKind::WriteAck => 6,
            FrameKind::Rmw => 7,
        }
    }
}
