//! Fixture: the real flush shape — SST write, WAL rotation, manifest
//! commit, GC — with the CrashPoint-guarded GC step hoisted above the
//! commit. A crash between the two deletes the only durable copy.

fn write_sst(path: &str, data: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(data)?;
    file.sync_data()?;
    Ok(())
}

fn rotate_wal(wal: &mut WalWriter) -> std::io::Result<()> {
    wal.seal()?;
    Ok(())
}

pub fn flush(store: &mut Store, data: &[u8]) -> std::io::Result<()> {
    write_sst("001.sst", data)?;
    store.crash.fire(CrashPoint::AfterSstWrite);
    rotate_wal(&mut store.wal)?;
    store.crash.fire(CrashPoint::AfterWalRotate);
    std::fs::remove_file("000.sst")?;
    store.manifest.commit("001.sst")?;
    Ok(())
}
