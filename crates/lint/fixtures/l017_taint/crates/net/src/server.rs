//! Fixture: the `read_frame` shape — the wire-declared payload length
//! flows into the allocation and the fill with no bound check.

pub fn read_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 17];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes([prefix[13], prefix[14], prefix[15], prefix[16]]) as usize;
    let mut payload = Vec::with_capacity(len);
    payload.resize(len, 0);
    stream.read_exact(&mut payload)?;
    Ok(payload)
}
