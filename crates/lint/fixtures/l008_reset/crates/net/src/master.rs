//! Fixture: the send sequence is reset — the monotone contract breaks.

pub struct Master {
    /// Monotone per-master send sequence.
    send_seq: u64,
}

impl Master {
    pub fn new() -> Master {
        Master { send_seq: 0 }
    }

    pub fn next_seq(&mut self) -> u64 {
        let seq = self.send_seq;
        self.send_seq += 1;
        seq
    }

    pub fn reconnect(&mut self) {
        self.send_seq = 0;
    }
}
