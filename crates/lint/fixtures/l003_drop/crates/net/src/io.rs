//! Fixture: a silently dropped `Result`.

use std::io::Write;

pub fn send(mut w: impl Write) {
    let _ = w.write_all(b"ping");
}
