//! Fixture: the deterministic model — time arrives as an explicit
//! parameter, and `SimTime` offers the sanctioned `from_*` constructor
//! for wrapping measured values on the live side.

pub fn advance(model: &mut Model, now: u64) {
    model.t = now;
}

impl SimTime {
    pub fn from_nanos(n: u64) -> SimTime {
        SimTime(n)
    }
}
