//! Fixture: the flush path in the docs/STORE.md contract order —
//! write → fsync → rename → dir-fsync, and GC strictly after the
//! manifest commit.

fn write_sst(dir: &str, data: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create("001.sst.tmp")?;
    file.write_all(data)?;
    file.sync_data()?;
    std::fs::rename("001.sst.tmp", "001.sst")?;
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

pub fn flush(store: &mut Store, dir: &str, data: &[u8]) -> std::io::Result<()> {
    write_sst(dir, data)?;
    store.crash.fire(CrashPoint::AfterSstWrite);
    store.manifest.commit("001.sst")?;
    store.crash.fire(CrashPoint::AfterCommit);
    std::fs::remove_file("000.sst")?;
    Ok(())
}
