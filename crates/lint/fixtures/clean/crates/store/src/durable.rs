//! Fixture: the flush path in the docs/STORE.md contract order —
//! write → fsync → rename → dir-fsync, and GC strictly after the
//! manifest commit.

fn write_sst(dir: &str, data: &[u8]) -> std::io::Result<()> {
    let mut file = std::fs::File::create("001.sst.tmp")?;
    file.write_all(data)?;
    file.sync_data()?;
    std::fs::rename("001.sst.tmp", "001.sst")?;
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

pub fn flush(store: &mut Store, dir: &str, data: &[u8]) -> std::io::Result<()> {
    write_sst(dir, data)?;
    store.crash.fire(CrashPoint::AfterSstWrite);
    store.manifest.commit("001.sst")?;
    store.crash.fire(CrashPoint::AfterCommit);
    std::fs::remove_file("000.sst")?;
    Ok(())
}

/// The charges land right after the read, before the checksum branch,
/// so every path to the exit is accounted (KVS-L019 pass).
pub fn load_block(file: &mut File, meta: &BlockMeta, receipt: &mut ReadReceipt) -> std::io::Result<Vec<u8>> {
    let mut buf = vec![0u8; meta.len];
    file.read_exact(&mut buf)?;
    receipt.disk_blocks_read += 1;
    receipt.disk_bytes_read += meta.len as u64;
    if fnv64(&buf) != meta.checksum {
        return Err(corrupt(meta.offset));
    }
    Ok(buf)
}
