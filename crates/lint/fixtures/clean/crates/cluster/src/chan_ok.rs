//! Fixture: bounded channel with both endpoints living in one lifecycle
//! (KVS-L010 pass).

pub fn round_trip() -> u64 {
    let (job_tx, job_rx) = crossbeam::channel::bounded::<u64>(8);
    job_tx.send(41).ok();
    match job_rx.recv() {
        Ok(v) => v + 1,
        Err(_) => 0,
    }
}
