//! Fixture: response stamps written once, every slot distinct and
//! non-zero (KVS-L011 pass).

pub fn reply(first: u64, dequeued: u64, db_end: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Response,
        id: 9,
        stamps: [first, dequeued, db_end, wall_ns()],
        payload,
    }
}

pub fn refuse(kind: FrameKind, first: u64) -> Frame {
    Frame {
        kind,
        id: 9,
        stamps: [first, wall_ns(), 0, 0],
        payload: Vec::new(),
    }
}
