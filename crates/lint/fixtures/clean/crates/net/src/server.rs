//! Fixture: response stamps written once, every slot distinct and
//! non-zero (KVS-L011 pass).

pub fn reply(first: u64, dequeued: u64, db_end: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Response,
        id: 9,
        stamps: [first, dequeued, db_end, wall_ns()],
        payload,
    }
}

pub fn refuse(kind: FrameKind, first: u64) -> Frame {
    Frame {
        kind,
        id: 9,
        stamps: [first, wall_ns(), 0, 0],
        payload: Vec::new(),
    }
}

/// A write frame follows the request convention: the master owns the
/// first three slots, the fourth belongs to the slave (KVS-L011 pass).
pub fn send_write(issued: u64, sent: u64, seq: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Write,
        id: 11,
        stamps: [issued, sent, seq, 0],
        payload,
    }
}

/// A write-ack carries all four stage boundaries, distinct and non-zero,
/// exactly like a response (KVS-L011 pass).
pub fn ack_write(first: u64, dequeued: u64, db_end: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::WriteAck,
        id: 11,
        stamps: [first, dequeued, db_end, wall_ns()],
        payload,
    }
}
