//! Fixture: response stamps written once, every slot distinct and
//! non-zero (KVS-L011 pass).

pub fn reply(first: u64, dequeued: u64, db_end: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Response,
        id: 9,
        stamps: [first, dequeued, db_end, wall_ns()],
        payload,
    }
}

pub fn refuse(kind: FrameKind, first: u64) -> Frame {
    Frame {
        kind,
        id: 9,
        stamps: [first, wall_ns(), 0, 0],
        payload: Vec::new(),
    }
}

/// A write frame follows the request convention: the master owns the
/// first three slots, the fourth belongs to the slave (KVS-L011 pass).
pub fn send_write(issued: u64, sent: u64, seq: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::Write,
        id: 11,
        stamps: [issued, sent, seq, 0],
        payload,
    }
}

/// A write-ack carries all four stage boundaries, distinct and non-zero,
/// exactly like a response (KVS-L011 pass).
pub fn ack_write(first: u64, dequeued: u64, db_end: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind: FrameKind::WriteAck,
        id: 11,
        stamps: [first, dequeued, db_end, wall_ns()],
        payload,
    }
}

pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// The wire-declared length is compared against the cap before any byte
/// of it sizes an allocation (KVS-L017 pass — the bound check kills the
/// taint).
pub fn read_frame_checked(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 17];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes([prefix[13], prefix[14], prefix[15], prefix[16]]);
    if len > MAX_PAYLOAD {
        return Err(too_large(len));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}
