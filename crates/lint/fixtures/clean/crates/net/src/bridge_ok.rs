//! Fixture: the sanctioned live→sim bridge (KVS-L018 pass) — sim time
//! is threaded into the zone as a parameter, and the measured wall
//! value only reaches a `from_*` constructor, never zone behavior.

pub fn tick(model: &mut Model, sim_now: u64) {
    advance(model, sim_now);
    let wall = wall_ns();
    let _elapsed = SimTime::from_nanos(wall);
}
