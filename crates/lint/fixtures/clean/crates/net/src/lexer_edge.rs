//! Fixture: lexer edge cases that must NOT trip any rule — banned tokens
//! live only inside raw strings (any hash depth) and char literals, and
//! lifetimes must not be mistaken for char-literal openers.

pub fn templates<'a>(pick: &'a str) -> &'a str {
    let deep = r####"say "hi" unsafe { SystemTime::now() } thread_rng()"####;
    let nested = r#"a `let _ = x;` example with "quotes" inside"#;
    let tick = '\'';
    let letter = 'x';
    if pick.is_empty() || tick == letter {
        deep
    } else {
        nested
    }
}

pub fn lifetime_heavy<'s, 'q>(a: &'s str, b: &'q str) -> usize {
    a.len() + b.len()
}
