//! Fixture: a `LINT-ZONE: nonblocking` function whose whole reachable
//! call set stays non-blocking.

// LINT-ZONE: nonblocking — classification must never stall the loop.
pub fn classify_ready(n: u64) -> bool {
    scale(n) > 4
}

fn scale(n: u64) -> u64 {
    n.saturating_mul(2)
}
