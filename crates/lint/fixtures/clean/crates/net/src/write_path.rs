//! Fixture: v2 frames that thread the incoming deadline — directly, via
//! field shorthand through a parameter, and as a wall-clock budget.

pub fn forward(node: u32, deadline: u64) -> Frame {
    Frame {
        kind: FrameKind::Write,
        node,
        deadline,
    }
}

pub fn relay(node: u32, deadline: u64) -> Frame {
    forward(node, deadline)
}

pub fn probe(node: u32) -> Frame {
    Frame {
        kind: FrameKind::Ping,
        node,
        deadline: wall_ns().saturating_add(1_000_000),
    }
}
