//! Fixture: consistent lock order and statement temporaries (KVS-L009
//! pass) — every function that takes both locks takes `accounts` first.

use parking_lot::Mutex;

pub struct Shared {
    pub accounts: Mutex<u64>,
    pub journal: Mutex<u64>,
}

pub fn credit(s: &Shared) {
    let accounts = s.accounts.lock();
    let mut journal = s.journal.lock();
    *journal += *accounts;
    drop(journal);
    drop(accounts);
}

pub fn audit(s: &Shared) {
    let accounts = s.accounts.lock();
    let mut journal = s.journal.lock();
    *journal = *accounts;
    drop(journal);
    drop(accounts);
}

pub fn snapshot(s: &Shared) -> u64 {
    // Statement temporaries release before the next statement starts:
    // no held-state, no edges.
    let a = *s.accounts.lock();
    let j = *s.journal.lock();
    a + j
}
