//! Fixture: a violation excused by a matching waiver (waiver-used path).

pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}
