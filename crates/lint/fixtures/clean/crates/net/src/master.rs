//! Fixture master: send-seq and Busy comment contracts hold (KVS-L008
//! pass).

pub struct Master {
    /// Monotone per-master send sequence; stamped into `stamps[2]` and
    /// audited per connection by the chaos proxy.
    send_seq: u64,
}

impl Master {
    pub fn new() -> Master {
        Master { send_seq: 0 }
    }

    pub fn next_seq(&mut self) -> u64 {
        let seq = self.send_seq;
        self.send_seq += 1;
        seq
    }

    pub fn on_frame(&mut self, kind: super::frame::FrameKind) {
        // Every declared kind named (KVS-L012 pass): a new FrameKind
        // variant forces this match to be revisited.
        match kind {
            super::frame::FrameKind::Request => {}
            super::frame::FrameKind::Response => {}
            super::frame::FrameKind::Busy => {
                self.on_busy();
            }
            super::frame::FrameKind::Expired => {}
            super::frame::FrameKind::Write => {}
            super::frame::FrameKind::WriteAck => {}
            super::frame::FrameKind::Rmw => {}
        }
    }

    fn on_busy(&mut self) {
        // Busy re-arms the wall-clock allowance; flow control is never a
        // failure (tests/busy_budget.rs pins the boundary).
    }
}
