//! Fixture: lock guard held across a blocking socket write.

use parking_lot::Mutex;
use std::io::Write;
use std::net::TcpStream;

pub fn flush(conn: &Mutex<TcpStream>, bytes: &[u8]) -> std::io::Result<()> {
    let mut guard = conn.lock();
    guard.write_all(bytes)?;
    Ok(())
}
