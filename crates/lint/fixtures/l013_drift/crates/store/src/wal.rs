//! Fixture WAL module: constants and module-doc table agree (the drift
//! lives in this tree's docs/STORE.md).
//!
//! ```text
//! offset size field        notes
//!      0    4 magic        0x4B57414C ("KWAL")
//!      4    1 version      1
//!      5    3 reserved     zero
//!      8    8 segment_seq  must match the file name
//! ```

pub const WAL_MAGIC: u32 = 0x4B57_414C;
pub const WAL_VERSION: u8 = 1;
pub const WAL_HEADER_LEN: usize = 16;
