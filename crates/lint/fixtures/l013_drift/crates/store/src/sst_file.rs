//! Fixture SSTable module: constants and module-doc table agree (the
//! drift lives in this tree's docs/STORE.md).
//!
//! ```text
//! offset size field              notes
//!      0    4 magic              0x4B535354 ("KSST")
//!      4    1 version            1
//!      5    3 reserved           zero
//!      8    8 generation         newer wins merges
//!     16    8 column_index_size  threshold the run was built with
//!     24    8 index_off          partition index file offset
//!     32    8 index_len          partition index length
//!     40    8 bloom_off          bloom filter file offset
//!     48    8 bloom_len          bloom filter length
//!     56    8 meta_crc           fnv64 over index bytes, bloom bytes
//!     64    8 footer_crc         fnv64 over footer bytes 0..64
//! ```

pub const SST_MAGIC: u32 = 0x4B53_5354;
pub const SST_VERSION: u8 = 1;
pub const SST_FOOTER_LEN: usize = 72;
