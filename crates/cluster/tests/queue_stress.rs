//! Concurrent stress for [`kvs_cluster::queue`]: the bounded work queue
//! under ≥ 4 producer threads mixing `try_push` and `push_blocking`,
//! with consumers draining slowly enough to force both backpressure
//! paths.
//!
//! What must hold under contention:
//!
//! * **conservation** — every item accepted (`pushed`) is consumed
//!   exactly once; refused items (`busy_rejections`) are returned to the
//!   caller, never enqueued;
//! * **depth bound** — the observed high-water mark never exceeds the
//!   configured capacity;
//! * **counter consistency** — `pushed` equals the number of successful
//!   push calls, `busy_rejections` the number of `Err` returns from
//!   `try_push`, and the blocked/busy transition is actually exercised
//!   (the queue reports `saturated()`).

use kvs_cluster::queue::{work_queue, QueueStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const PRODUCERS: u64 = 6;
const ITEMS_PER_PRODUCER: u64 = 500;
const CAPACITY: usize = 8;
const CONSUMERS: usize = 2;

/// Tag items `(producer, sequence)` so the consumer side can prove each
/// accepted item arrived exactly once and in per-producer order.
type Item = (u64, u64);

#[test]
fn concurrent_producers_conserve_items_and_respect_capacity() {
    let (queue, source) = work_queue::<Item>(CAPACITY);
    let accepted = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let source = source.clone();
            thread::spawn(move || {
                let mut got: Vec<Item> = Vec::new();
                while let Some(item) = source.recv() {
                    // A slow consumer keeps the queue full so producers
                    // hit both the busy and the blocked path.
                    thread::sleep(Duration::from_micros(50));
                    got.push(item);
                }
                got
            })
        })
        .collect();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = queue.clone();
            let accepted = accepted.clone();
            let refused = refused.clone();
            thread::spawn(move || {
                for seq in 0..ITEMS_PER_PRODUCER {
                    // Even producers block (every item lands), odd
                    // producers offer (items may be refused — the wire
                    // `Busy` path).
                    if p % 2 == 0 {
                        queue.push_blocking((p, seq)).expect("consumers alive");
                        accepted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        match queue.try_push((p, seq)) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(item) => {
                                assert_eq!(item, (p, seq), "refused item comes back intact");
                                refused.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            })
        })
        .collect();

    for t in producers {
        t.join().expect("producer never panics");
    }
    let stats = queue.stats();
    drop(queue); // close the channel so consumers drain and exit
    drop(source);
    let per_consumer: Vec<Vec<Item>> = consumers
        .into_iter()
        .map(|c| c.join().expect("consumer never panics"))
        .collect();
    let consumed: Vec<Item> = per_consumer.iter().flatten().copied().collect();

    // Each consumer sees an order-preserving subsequence of the channel,
    // so a single producer's items must be increasing within any one
    // consumer's stream.
    for (ix, stream) in per_consumer.iter().enumerate() {
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        for (p, seq) in stream {
            if let Some(prev) = last.insert(*p, *seq) {
                assert!(
                    prev < *seq,
                    "consumer {ix} saw producer {p} out of order ({prev} then {seq})"
                );
            }
        }
    }

    let accepted = accepted.load(Ordering::Relaxed);
    let refused = refused.load(Ordering::Relaxed);

    // Conservation: accepted == pushed == consumed, refused == rejections.
    assert_eq!(stats.pushed, accepted, "pushed counter matches Ok returns");
    assert_eq!(
        consumed.len() as u64,
        accepted,
        "every accepted item consumed exactly once"
    );
    assert_eq!(
        stats.busy_rejections, refused,
        "busy counter matches Err returns"
    );
    assert_eq!(
        accepted + refused,
        PRODUCERS * ITEMS_PER_PRODUCER,
        "no item vanished without a verdict"
    );

    // Blocking producers always land every item.
    let mut by_producer: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (p, seq) in &consumed {
        by_producer.entry(*p).or_default().push(*seq);
    }
    for p in (0..PRODUCERS).filter(|p| p % 2 == 0) {
        let seqs = by_producer.get(&p).expect("blocking producer delivered");
        assert_eq!(seqs.len() as u64, ITEMS_PER_PRODUCER);
    }
    // No duplicates from anyone (offer path included).
    for (p, seqs) in &by_producer {
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seqs.len(), "producer {p} item duplicated");
    }

    // Depth bound and the blocked/busy transition.
    assert!(
        stats.max_depth <= CAPACITY,
        "high-water mark {} exceeds capacity {CAPACITY}",
        stats.max_depth
    );
    assert!(
        stats.saturated(),
        "stress run never saturated the queue: {stats:?}"
    );
    assert!(
        stats.blocked_pushes > 0,
        "blocking path never waited: {stats:?}"
    );
    assert!(
        stats.busy_rejections > 0,
        "offer path never refused: {stats:?}"
    );
}

/// A queue with no capacity can hold nothing and can serve nobody —
/// construction is the right place to fail, loudly.
#[test]
#[should_panic(expected = "capacity")]
fn zero_capacity_queue_is_refused_at_construction() {
    let _ = work_queue::<Item>(0);
}

/// Deadline pressure under contention: producers race items with mixed
/// deadlines into a tiny queue while a slow consumer keeps it full. What
/// must hold: every already-expired push is refused (never enqueued),
/// every accepted-then-evicted item is handed back exactly once, and
/// conservation covers all three outcomes — consumed + evicted accounted
/// against accepted, with nothing duplicated or lost.
#[test]
fn expired_pushes_and_evictions_conserve_items_under_contention() {
    use kvs_cluster::queue::{TimedPush, NO_DEADLINE};
    let (queue, source) = work_queue::<Item>(4);
    let consumed = {
        let source = source.clone();
        thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(item) = source.recv() {
                thread::sleep(Duration::from_micros(100));
                got.push(item);
            }
            got
        })
    };

    let accepted = Arc::new(AtomicU64::new(0));
    let refused_expired = Arc::new(AtomicU64::new(0));
    let evicted_back = Arc::new(AtomicU64::new(0));
    let full = Arc::new(AtomicU64::new(0));
    let producers: Vec<_> = (0..4u64)
        .map(|p| {
            let queue = queue.clone();
            let accepted = accepted.clone();
            let refused_expired = refused_expired.clone();
            let evicted_back = evicted_back.clone();
            let full = full.clone();
            thread::spawn(move || {
                for seq in 0..200u64 {
                    // Clock marches one tick per push; every third item is
                    // born with a deadline 2 ticks out, so queue dwell
                    // under the slow consumer routinely expires it.
                    let now = seq;
                    let (deadline, already_expired) = match seq % 3 {
                        0 => (NO_DEADLINE, false),
                        1 => (now + 2, false),
                        _ => (now.saturating_sub(1), true), // expired at push
                    };
                    match queue.try_push_timed((p, seq), deadline, now) {
                        TimedPush::Accepted { evicted } => {
                            assert!(!already_expired, "expired item accepted");
                            accepted.fetch_add(1, Ordering::Relaxed);
                            evicted_back.fetch_add(evicted.len() as u64, Ordering::Relaxed);
                        }
                        TimedPush::AlreadyExpired(item) => {
                            assert!(already_expired, "live item {item:?} refused as expired");
                            refused_expired.fetch_add(1, Ordering::Relaxed);
                        }
                        TimedPush::Full(_) => {
                            full.fetch_add(1, Ordering::Relaxed);
                        }
                        TimedPush::Disconnected(_) => panic!("consumer alive"),
                    }
                }
            })
        })
        .collect();
    for p in producers {
        p.join().expect("producer panicked");
    }
    drop(queue);
    let consumed = consumed.join().expect("consumer panicked");

    // Every push with a past deadline was refused: 4 producers × ⌈200/3⌉.
    assert_eq!(refused_expired.load(Ordering::Relaxed), 4 * 66);
    // Conservation: accepted items either reached the consumer or came
    // back out of an eviction.
    let accepted = accepted.load(Ordering::Relaxed);
    let evicted = evicted_back.load(Ordering::Relaxed);
    assert_eq!(
        consumed.len() as u64 + evicted,
        accepted,
        "items lost or duplicated (consumed {} evicted {evicted} accepted {accepted})",
        consumed.len()
    );
    let stats = queue_stats_of(&source);
    assert_eq!(stats.pushed, accepted);
    assert_eq!(
        stats.expired,
        refused_expired.load(Ordering::Relaxed) + evicted
    );
}

fn queue_stats_of(source: &kvs_cluster::queue::WorkSource<Item>) -> QueueStats {
    source.stats()
}

/// Producers hang up with items still queued: the consumer must drain
/// every accepted item before `recv` reports disconnection — shutdown
/// drops the *entrance*, never the work already admitted.
#[test]
fn consumer_drains_fully_after_producers_shut_down() {
    let (queue, source) = work_queue::<Item>(64);
    for seq in 0..40u64 {
        queue.try_push((0, seq)).expect("queue has room");
    }
    drop(queue); // all producers gone, 40 items stranded
    let mut got = Vec::new();
    while let Some(item) = source.recv() {
        got.push(item);
    }
    assert_eq!(got.len(), 40, "shutdown dropped queued work");
    assert!(got.iter().map(|&(_, s)| s).eq(0..40), "order lost in drain");
    assert!(source.recv().is_none(), "recv must stay disconnected");
    assert!(
        source.recv_timeout(Duration::from_millis(1)).is_none(),
        "recv_timeout must stay disconnected"
    );
}

/// Counter saturation: `merge` on stats far beyond any realistic run
/// keeps sums exact (u64 arithmetic, no silent wrap in practice) and
/// maxes the high-water mark.
#[test]
fn stats_merge_is_exact_at_large_magnitudes() {
    let mut total = QueueStats::default();
    let big = QueueStats {
        pushed: u64::MAX / 4,
        busy_rejections: u64::MAX / 8,
        blocked_pushes: u64::MAX / 8,
        expired: u64::MAX / 8,
        max_depth: usize::MAX / 2,
    };
    total.merge(&big);
    total.merge(&big);
    assert_eq!(total.pushed, (u64::MAX / 4) * 2);
    assert_eq!(total.busy_rejections, (u64::MAX / 8) * 2);
    assert_eq!(total.blocked_pushes, (u64::MAX / 8) * 2);
    assert_eq!(total.expired, (u64::MAX / 8) * 2);
    assert_eq!(total.max_depth, usize::MAX / 2);
    assert!(total.saturated());
}
