//! Concurrent stress for [`kvs_cluster::queue`]: the bounded work queue
//! under ≥ 4 producer threads mixing `try_push` and `push_blocking`,
//! with consumers draining slowly enough to force both backpressure
//! paths.
//!
//! What must hold under contention:
//!
//! * **conservation** — every item accepted (`pushed`) is consumed
//!   exactly once; refused items (`busy_rejections`) are returned to the
//!   caller, never enqueued;
//! * **depth bound** — the observed high-water mark never exceeds the
//!   configured capacity;
//! * **counter consistency** — `pushed` equals the number of successful
//!   push calls, `busy_rejections` the number of `Err` returns from
//!   `try_push`, and the blocked/busy transition is actually exercised
//!   (the queue reports `saturated()`).

use kvs_cluster::queue::{work_queue, QueueStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const PRODUCERS: u64 = 6;
const ITEMS_PER_PRODUCER: u64 = 500;
const CAPACITY: usize = 8;
const CONSUMERS: usize = 2;

/// Tag items `(producer, sequence)` so the consumer side can prove each
/// accepted item arrived exactly once and in per-producer order.
type Item = (u64, u64);

#[test]
fn concurrent_producers_conserve_items_and_respect_capacity() {
    let (queue, source) = work_queue::<Item>(CAPACITY);
    let accepted = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let source = source.clone();
            thread::spawn(move || {
                let mut got: Vec<Item> = Vec::new();
                while let Some(item) = source.recv() {
                    // A slow consumer keeps the queue full so producers
                    // hit both the busy and the blocked path.
                    thread::sleep(Duration::from_micros(50));
                    got.push(item);
                }
                got
            })
        })
        .collect();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = queue.clone();
            let accepted = accepted.clone();
            let refused = refused.clone();
            thread::spawn(move || {
                for seq in 0..ITEMS_PER_PRODUCER {
                    // Even producers block (every item lands), odd
                    // producers offer (items may be refused — the wire
                    // `Busy` path).
                    if p % 2 == 0 {
                        queue.push_blocking((p, seq)).expect("consumers alive");
                        accepted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        match queue.try_push((p, seq)) {
                            Ok(()) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(item) => {
                                assert_eq!(item, (p, seq), "refused item comes back intact");
                                refused.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            })
        })
        .collect();

    for t in producers {
        t.join().expect("producer never panics");
    }
    let stats = queue.stats();
    drop(queue); // close the channel so consumers drain and exit
    drop(source);
    let per_consumer: Vec<Vec<Item>> = consumers
        .into_iter()
        .map(|c| c.join().expect("consumer never panics"))
        .collect();
    let consumed: Vec<Item> = per_consumer.iter().flatten().copied().collect();

    // Each consumer sees an order-preserving subsequence of the channel,
    // so a single producer's items must be increasing within any one
    // consumer's stream.
    for (ix, stream) in per_consumer.iter().enumerate() {
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        for (p, seq) in stream {
            if let Some(prev) = last.insert(*p, *seq) {
                assert!(
                    prev < *seq,
                    "consumer {ix} saw producer {p} out of order ({prev} then {seq})"
                );
            }
        }
    }

    let accepted = accepted.load(Ordering::Relaxed);
    let refused = refused.load(Ordering::Relaxed);

    // Conservation: accepted == pushed == consumed, refused == rejections.
    assert_eq!(stats.pushed, accepted, "pushed counter matches Ok returns");
    assert_eq!(
        consumed.len() as u64,
        accepted,
        "every accepted item consumed exactly once"
    );
    assert_eq!(
        stats.busy_rejections, refused,
        "busy counter matches Err returns"
    );
    assert_eq!(
        accepted + refused,
        PRODUCERS * ITEMS_PER_PRODUCER,
        "no item vanished without a verdict"
    );

    // Blocking producers always land every item.
    let mut by_producer: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (p, seq) in &consumed {
        by_producer.entry(*p).or_default().push(*seq);
    }
    for p in (0..PRODUCERS).filter(|p| p % 2 == 0) {
        let seqs = by_producer.get(&p).expect("blocking producer delivered");
        assert_eq!(seqs.len() as u64, ITEMS_PER_PRODUCER);
    }
    // No duplicates from anyone (offer path included).
    for (p, seqs) in &by_producer {
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seqs.len(), "producer {p} item duplicated");
    }

    // Depth bound and the blocked/busy transition.
    assert!(
        stats.max_depth <= CAPACITY,
        "high-water mark {} exceeds capacity {CAPACITY}",
        stats.max_depth
    );
    assert!(
        stats.saturated(),
        "stress run never saturated the queue: {stats:?}"
    );
    assert!(
        stats.blocked_pushes > 0,
        "blocking path never waited: {stats:?}"
    );
    assert!(
        stats.busy_rejections > 0,
        "offer path never refused: {stats:?}"
    );
}

/// Counter saturation: `merge` on stats far beyond any realistic run
/// keeps sums exact (u64 arithmetic, no silent wrap in practice) and
/// maxes the high-water mark.
#[test]
fn stats_merge_is_exact_at_large_magnitudes() {
    let mut total = QueueStats::default();
    let big = QueueStats {
        pushed: u64::MAX / 4,
        busy_rejections: u64::MAX / 8,
        blocked_pushes: u64::MAX / 8,
        max_depth: usize::MAX / 2,
    };
    total.merge(&big);
    total.merge(&big);
    assert_eq!(total.pushed, (u64::MAX / 4) * 2);
    assert_eq!(total.busy_rejections, (u64::MAX / 8) * 2);
    assert_eq!(total.blocked_pushes, (u64::MAX / 8) * 2);
    assert_eq!(total.max_depth, usize::MAX / 2);
    assert!(total.saturated());
}
