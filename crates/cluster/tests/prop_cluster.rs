//! Property tests for the cluster layer: codecs and the USL interference
//! model.

use kvs_cluster::messages::{QueryRequest, QueryResponse};
use kvs_cluster::usl::{formula7_peak_speedup, params_for_cells, UslParams};
use kvs_cluster::Codec;
use kvs_store::PartitionKey;
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both codecs round-trip arbitrary requests.
    #[test]
    fn codecs_roundtrip_requests(id in any::<u64>(),
                                 key in proptest::collection::vec(any::<u8>(), 0..64)) {
        let req = QueryRequest {
            request_id: id,
            partition: PartitionKey::new(key),
        };
        for codec in [Codec::verbose(), Codec::compact()] {
            let bytes = codec.encode_request(&req);
            prop_assert_eq!(codec.decode_request(bytes).expect("roundtrip"), req.clone());
        }
    }

    /// Both codecs round-trip arbitrary responses (any kind→count map).
    #[test]
    fn codecs_roundtrip_responses(id in any::<u64>(),
                                  counts in proptest::collection::btree_map(any::<u8>(), 1u64..1_000_000, 0..32),
                                  version in any::<u64>()) {
        let cells = counts.values().sum();
        let resp = QueryResponse {
            request_id: id,
            counts: counts.clone() as BTreeMap<u8, u64>,
            cells,
            version,
        };
        for codec in [Codec::verbose(), Codec::compact()] {
            let bytes = codec.encode_response(&resp);
            prop_assert_eq!(codec.decode_response(bytes).expect("roundtrip"), resp.clone());
        }
    }

    /// The verbose codec is always the bigger wire format.
    #[test]
    fn verbose_never_smaller(id in any::<u64>(), key_len in 0usize..64) {
        let req = QueryRequest {
            request_id: id,
            partition: PartitionKey::new(vec![0xAA; key_len]),
        };
        let v = Codec::verbose().encode_request(&req).len();
        let c = Codec::compact().encode_request(&req).len();
        prop_assert!(v > c, "verbose {v} vs compact {c}");
    }

    /// Truncating any codec output never decodes successfully and never
    /// panics.
    #[test]
    fn truncation_is_safe(id in any::<u64>(), cut_frac in 0.0f64..0.999) {
        let req = QueryRequest {
            request_id: id,
            partition: PartitionKey::from_id(id),
        };
        for codec in [Codec::verbose(), Codec::compact()] {
            let bytes = codec.encode_request(&req);
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            prop_assert!(codec.decode_request(bytes.slice(..cut)).is_none());
        }
    }

    /// USL invariants hold for any solvable (peak speed-up, peak k) target:
    /// S(1)=1, S(k) ≤ k, inflation ≥ 1 and monotone, retrograde after k*.
    #[test]
    fn usl_invariants(k_star in 2.0f64..64.0, frac in 0.05f64..0.95) {
        // USL with σ ≥ 0 can only place a peak of up to k²/(2k−1) at k;
        // draw targets inside the representable region.
        let s_max = k_star * k_star / (2.0 * k_star - 1.0);
        let s_star = 1.0 + frac * (s_max - 1.0) * 0.98;
        let p = UslParams::solve(s_star, k_star);
        prop_assert!((p.speedup(1) - 1.0).abs() < 1e-9);
        let mut prev_inflation = 0.0;
        for k in 1..=128usize {
            let s = p.speedup(k);
            prop_assert!(s <= k as f64 + 1e-9, "superlinear at k={k}");
            prop_assert!(s > 0.0);
            let infl = p.inflation(k);
            prop_assert!(infl >= 1.0 - 1e-12);
            prop_assert!(infl >= prev_inflation - 1e-12, "inflation not monotone at k={k}");
            prev_inflation = infl;
        }
        // The solved peak is where it was asked to be (within discreteness).
        let k_round = k_star.round() as usize;
        prop_assert!((p.speedup(k_round) - s_star).abs() / s_star < 0.05);
        // Past ~2·k* throughput is at or below the peak.
        prop_assert!(p.speedup((2.0 * k_star).ceil() as usize) <= s_star + 1e-6);
    }

    /// The per-row-size USL parameters always yield sane service inflation
    /// and respect the Formula 7 ceiling.
    #[test]
    fn params_for_cells_sane(cells in 1u64..1_000_000, k in 1usize..128) {
        let p = params_for_cells(cells);
        let s = p.speedup(k);
        // Deep retrograde territory (k ≫ k*) may dip below 1× — genuine
        // thrashing — but must never collapse entirely.
        prop_assert!(s >= 0.5, "throughput collapsed: {s}");
        prop_assert!(s <= formula7_peak_speedup(cells) * 1.05 + 1e-9,
            "speed-up exceeds the Formula 7 ceiling: {s}");
        prop_assert!(p.inflation(k) >= 1.0);
    }
}
