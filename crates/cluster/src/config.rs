//! Cluster configuration and the paper's two hardware/software presets.

use crate::codec::Codec;
use crate::policy::ReplicaPolicy;
use kvs_simcore::SimDuration;
use kvs_store::CostModel;

/// Star-topology network model (every node hangs off one switch, as in the
/// paper's cluster).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
    /// Effective link bandwidth in bytes/second. The paper measured 7.5 MB
    /// crossing its GbE star in ≈ 7 ms — an effective ≈ 1.07 GB/s out of
    /// the master (offloaded/overlapped transmission), which we adopt.
    pub bandwidth_bytes_per_sec: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: SimDuration::from_micros(50),
            bandwidth_bytes_per_sec: 1.07e9,
        }
    }
}

impl NetworkConfig {
    /// Transit time for a message of `bytes` bytes.
    pub fn transit(&self, bytes: usize) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

/// JVM garbage-collector model (the paper's Figure 8 needed a GC
/// correction for the coarse-grained workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Master: a stop-the-world pause is charged every `master_msgs_per_pause`
    /// messages processed (allocation-driven young-gen collections).
    pub master_msgs_per_pause: u64,
    /// Master pause duration.
    pub master_pause: SimDuration,
    /// Slaves: large reads allocate proportionally to the cells they
    /// materialize; the extra GC time is quadratic in row size:
    /// `extra_ms = coeff · (cells/1000)²`. At 10 000 cells (coarse) this is
    /// ≈ 14 % of the read; at 1 000 cells (medium) it is negligible —
    /// matching the paper's "only correction … for policy coarse-grain".
    pub db_quadratic_ms_per_kcell_sq: f64,
    /// Master switch.
    pub enabled: bool,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            master_msgs_per_pause: 2_000,
            master_pause: SimDuration::from_millis(12),
            db_quadratic_ms_per_kcell_sq: 0.6,
            enabled: true,
        }
    }
}

impl GcConfig {
    /// GC disabled entirely (ablations, model-noise isolation).
    pub fn disabled() -> Self {
        GcConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// Extra database service time for a read of `cells` cells, ms.
    pub fn db_extra_ms(&self, cells: u64) -> f64 {
        if !self.enabled {
            return 0.0;
        }
        let kcells = cells as f64 / 1_000.0;
        self.db_quadratic_ms_per_kcell_sq * kcells * kcells
    }
}

/// Master-node cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterConfig {
    /// The serialization strategy (carries the per-message CPU costs).
    pub codec: Codec,
    /// Extra per-message CPU beyond serialization (logging, integrity
    /// checks — the second §V-B optimization), µs. Already included in the
    /// codec presets' totals, so 0 by default; exposed for ablations.
    pub extra_tx_us: f64,
}

/// Per-slave database execution model.
#[derive(Debug, Clone, PartialEq)]
pub struct DbConfig {
    /// Requests a slave admits into the database concurrently (the paper
    /// swept 1..64; its hardware had 16 threads).
    pub parallelism: usize,
    /// Receipt → milliseconds conversion.
    pub cost: CostModel,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            parallelism: 16,
            cost: CostModel::paper_cassandra(),
        }
    }
}

/// An injected node failure (failure-injection testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFailure {
    /// The node that fails.
    pub node: u32,
    /// When it fails, relative to query start. The node drains requests
    /// already accepted ("connection draining") but rejects new arrivals;
    /// the master times out and retries the next replica.
    pub at: SimDuration,
}

/// An injected straggler: a node whose responses are sometimes late (the
/// GC pause / slow-disk / noisy-neighbor tail the paper's Formula 4 makes
/// the whole query wait on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// The afflicted node.
    pub node: u32,
    /// Extra response-path delay when the straggle fires.
    pub extra: SimDuration,
    /// Per-response probability of the delay (seeded draw; deterministic
    /// for a fixed config seed).
    pub probability: f64,
}

/// Everything a simulated run needs besides the data and the key list.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of slave nodes.
    pub nodes: u32,
    /// Network model.
    pub network: NetworkConfig,
    /// Master cost model.
    pub master: MasterConfig,
    /// Database model.
    pub db: DbConfig,
    /// GC model.
    pub gc: GcConfig,
    /// How the master picks a replica for each sub-query.
    pub replica_policy: ReplicaPolicy,
    /// Number of coordinating masters the key space is sharded over
    /// (1 = the paper's prototype; >1 models the GFS-style multi-master
    /// evolution discussed in §VIII).
    pub master_shards: usize,
    /// Replication factor (1 = the paper's main experiments).
    pub replication_factor: usize,
    /// Injected node failures (empty = the paper's healthy-cluster runs).
    pub failures: Vec<NodeFailure>,
    /// How long the master waits before declaring a dead replica and
    /// retrying the next one.
    pub failure_timeout: SimDuration,
    /// Injected stragglers (empty = no artificial tail).
    pub stragglers: Vec<Straggler>,
    /// Hedged replica reads: when set, any request unanswered this long
    /// after dispatch is re-issued to the next live replica;
    /// first-response-wins. Mirrors `kvs-net`'s hedging so the chaos drill
    /// can cross-validate measured tail cuts against the model.
    pub hedge: Option<SimDuration>,
    /// Degraded mode: a sub-query whose every replica is dead completes as
    /// a recorded miss ([`crate::Coverage`]` < 1`) instead of panicking.
    pub degraded: bool,
    /// Master RNG seed (drives service noise and random policies).
    pub seed: u64,
}

impl ClusterConfig {
    /// The paper's original prototype (§V-A/Figure 1): default Java
    /// serialization, 150 µs per message.
    pub fn paper_slow_master(nodes: u32) -> Self {
        ClusterConfig {
            nodes,
            network: NetworkConfig::default(),
            master: MasterConfig {
                codec: Codec::verbose(),
                extra_tx_us: 0.0,
            },
            db: DbConfig::default(),
            gc: GcConfig::default(),
            replica_policy: ReplicaPolicy::Primary,
            master_shards: 1,
            replication_factor: 1,
            failures: Vec::new(),
            failure_timeout: SimDuration::from_millis(500),
            stragglers: Vec::new(),
            hedge: None,
            degraded: false,
            seed: 0x5EED,
        }
    }

    /// The optimized prototype (§V-B/Figure 5): Kryo-like codec, 19 µs per
    /// message.
    pub fn paper_optimized_master(nodes: u32) -> Self {
        ClusterConfig {
            master: MasterConfig {
                codec: Codec::compact(),
                extra_tx_us: 0.0,
            },
            ..Self::paper_slow_master(nodes)
        }
    }

    /// Removes all stochastic noise (unit tests, exact model validation).
    pub fn deterministic(mut self) -> Self {
        self.db.cost = self.db.cost.deterministic();
        self.gc.enabled = false;
        self
    }

    /// The calibration profile used by the Figure 6/7 procedures: keeps the
    /// log-normal measurement spread but strips the heavy-tail mixture and
    /// the GC surcharge. The paper's calibration runs "several repetitions"
    /// and fits the bulk of the scatter; rare 6× outliers and the
    /// (separately modelled, §VI-b) GC time would otherwise dominate the
    /// least-squares fits.
    pub fn calibration(mut self) -> Self {
        self.db.cost.tail_probability = 0.0;
        self.gc.enabled = false;
        self
    }

    /// Master CPU time to serialize and dispatch one request.
    pub fn master_tx_time(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.master.codec.tx_cpu_us + self.master.extra_tx_us)
    }

    /// Master CPU time to receive and deserialize one response.
    pub fn master_rx_time(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.master.codec.rx_cpu_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_transit_combines_latency_and_bandwidth() {
        let net = NetworkConfig::default();
        let small = net.transit(100);
        let large = net.transit(7_500_000);
        assert!(small >= net.latency);
        // The paper's measurement: 7.5 MB ≈ 7 ms.
        let ms = large.as_millis_f64();
        assert!((ms - 7.0).abs() < 0.5, "7.5 MB took {ms} ms");
    }

    #[test]
    fn paper_presets_differ_only_in_master() {
        let slow = ClusterConfig::paper_slow_master(16);
        let fast = ClusterConfig::paper_optimized_master(16);
        assert_eq!(slow.nodes, fast.nodes);
        assert_eq!(slow.db, fast.db);
        assert!(slow.master_tx_time() > fast.master_tx_time() * 7);
        // 10 000 messages: 1.5 s slow vs 190 ms fast (§V-B).
        let slow_total = slow.master_tx_time() * 10_000;
        let fast_total = fast.master_tx_time() * 10_000;
        assert!((slow_total.as_secs_f64() - 1.5).abs() < 0.01);
        assert!((fast_total.as_millis_f64() - 190.0).abs() < 5.0);
    }

    #[test]
    fn gc_is_quadratic_and_switchable() {
        let gc = GcConfig::default();
        let at_10k = gc.db_extra_ms(10_000);
        let at_1k = gc.db_extra_ms(1_000);
        assert!((at_10k / at_1k - 100.0).abs() < 1e-6, "not quadratic");
        // Coarse reads (~440 ms) get a noticeable but not dominant hit.
        assert!(at_10k > 20.0 && at_10k < 120.0, "{at_10k}");
        assert_eq!(GcConfig::disabled().db_extra_ms(10_000), 0.0);
    }

    #[test]
    fn deterministic_strips_noise() {
        let cfg = ClusterConfig::paper_slow_master(4).deterministic();
        assert_eq!(cfg.db.cost.service_cv, 0.0);
        assert!(!cfg.gc.enabled);
    }

    #[test]
    fn calibration_keeps_spread_drops_tails_and_gc() {
        let cfg = ClusterConfig::paper_optimized_master(4).calibration();
        assert!(cfg.db.cost.service_cv > 0.0, "spread must survive");
        assert_eq!(cfg.db.cost.tail_probability, 0.0);
        assert!(!cfg.gc.enabled);
    }
}
