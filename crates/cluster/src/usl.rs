//! The database interference model behind Figure 7.
//!
//! The paper measured that raising per-node request parallelism increases
//! throughput sub-linearly, that throughput eventually *degrades*, and that
//! the optimum parallelism shrinks with row size: "The small queries
//! perform best with 32 requests at a time, the medium with 16 while the
//! large ones with 8" (§VI-a). The max achievable speed-up follows the log
//! law of Formula 7: `12.562 − 1.084·ln(s)`.
//!
//! We model per-node throughput with Gunther's Universal Scalability Law,
//! `S(k) = k / (1 + σ(k−1) + κ·k(k−1))`, whose two coefficients we *solve*
//! per row size so that the peak speed-up matches Formula 7 and the peak
//! location matches the paper's 32/16/8 observation. The simulator then
//! inflates every request's service time by `k / S(k)`, which reproduces
//! both the speed-up curves and the queueing behaviour.

/// USL coefficients: contention (σ) and coherency (κ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UslParams {
    /// Serial-fraction contention coefficient.
    pub sigma: f64,
    /// Crosstalk / coherency coefficient (drives retrograde throughput).
    pub kappa: f64,
}

impl UslParams {
    /// Throughput speed-up over a single in-flight request when `k`
    /// requests run concurrently.
    pub fn speedup(&self, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let kf = k as f64;
        kf / (1.0 + self.sigma * (kf - 1.0) + self.kappa * kf * (kf - 1.0))
    }

    /// Service-time inflation factor at concurrency `k` (= `k / S(k)` ≥ 1).
    pub fn inflation(&self, k: usize) -> f64 {
        if k <= 1 {
            return 1.0;
        }
        (k as f64 / self.speedup(k)).max(1.0)
    }

    /// The concurrency that maximizes throughput: `k* = sqrt((1−σ)/κ)`.
    pub fn optimal_k(&self) -> f64 {
        if self.kappa <= 0.0 {
            return f64::INFINITY;
        }
        ((1.0 - self.sigma).max(0.0) / self.kappa).sqrt()
    }

    /// Solves (σ, κ) so that the peak speed-up is `peak_speedup` and is
    /// attained at concurrency `peak_k`.
    ///
    /// Derivation: with `A = k*/S* − 1`, the USL peak conditions give
    /// `σ = A·k*/(k*−1)² − 1/(k*−1)` and `κ = (1−σ)/k*²`.
    ///
    /// # Panics
    /// If `peak_k ≤ 1` or `peak_speedup` is not in `(1, peak_k]` — such
    /// targets have no USL representation.
    pub fn solve(peak_speedup: f64, peak_k: f64) -> UslParams {
        assert!(peak_k > 1.0, "peak concurrency must exceed 1");
        assert!(
            peak_speedup > 1.0 && peak_speedup <= peak_k,
            "peak speed-up must be in (1, k*]"
        );
        let a = peak_k / peak_speedup - 1.0;
        let sigma = (a * peak_k / ((peak_k - 1.0) * (peak_k - 1.0)) - 1.0 / (peak_k - 1.0))
            .clamp(0.0, 0.999);
        let kappa = (1.0 - sigma) / (peak_k * peak_k);
        UslParams { sigma, kappa }
    }
}

/// Formula 7: the max parallel speed-up the paper fit against row size,
/// clamped to ≥ 1 (a speed-up below 1 is meaningless).
pub fn formula7_peak_speedup(cells: u64) -> f64 {
    let s = (cells.max(1)) as f64;
    (12.562 - 1.084 * s.ln()).max(1.0)
}

/// The paper's observed optimal parallelism by row size: 32 for small
/// rows, 16 for medium, 8 for large (§VI-a).
pub fn paper_optimal_parallelism(cells: u64) -> f64 {
    if cells < 1_000 {
        32.0
    } else if cells < 4_000 {
        16.0
    } else {
        8.0
    }
}

/// The interference parameters for a request of `cells` cells, solved from
/// the two paper calibrations above. For very large rows Formula 7 clamps
/// at 1 and USL has no solution; we fall back to near-serial parameters.
pub fn params_for_cells(cells: u64) -> UslParams {
    let peak = formula7_peak_speedup(cells);
    let k = paper_optimal_parallelism(cells);
    if peak <= 1.0 + 1e-9 {
        // Effectively serial: heavy contention, mild coherency.
        return UslParams {
            sigma: 0.999,
            kappa: 1e-4,
        };
    }
    UslParams::solve(peak.min(k), k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_one_at_k1() {
        let p = UslParams::solve(6.0, 32.0);
        assert!((p.speedup(1) - 1.0).abs() < 1e-12);
        assert_eq!(p.inflation(1), 1.0);
        assert_eq!(p.speedup(0), 0.0);
    }

    #[test]
    fn solve_hits_peak_targets() {
        for &(s_star, k_star) in &[(7.5f64, 32.0f64), (4.3, 16.0), (2.6, 8.0)] {
            let p = UslParams::solve(s_star, k_star);
            let got = p.speedup(k_star.round() as usize);
            assert!(
                (got - s_star).abs() / s_star < 0.02,
                "target {s_star}@{k_star}: got {got}"
            );
            assert!(
                (p.optimal_k() - k_star).abs() / k_star < 0.05,
                "optimal k {} vs {}",
                p.optimal_k(),
                k_star
            );
        }
    }

    #[test]
    fn throughput_is_retrograde_past_peak() {
        let p = UslParams::solve(6.0, 16.0);
        assert!(p.speedup(16) > p.speedup(4));
        assert!(p.speedup(64) < p.speedup(16), "no retrograde region");
    }

    #[test]
    fn inflation_grows_with_concurrency() {
        let p = UslParams::solve(6.0, 16.0);
        let mut prev = 0.0;
        for k in 1..=64 {
            let inf = p.inflation(k);
            assert!(inf >= prev - 1e-12, "inflation not monotone at k={k}");
            assert!(inf >= 1.0);
            prev = inf;
        }
    }

    #[test]
    fn formula7_matches_paper_values() {
        // s=100: 12.562 − 1.084·ln(100) ≈ 7.57.
        assert!((formula7_peak_speedup(100) - 7.57).abs() < 0.01);
        // s=10 000: ≈ 2.58.
        assert!((formula7_peak_speedup(10_000) - 2.58).abs() < 0.01);
        // Clamped at 1 for absurdly large rows.
        assert_eq!(formula7_peak_speedup(1_000_000_000), 1.0);
        assert_eq!(formula7_peak_speedup(0), formula7_peak_speedup(1));
    }

    #[test]
    fn paper_parallelism_steps() {
        assert_eq!(paper_optimal_parallelism(100), 32.0);
        assert_eq!(paper_optimal_parallelism(2_000), 16.0);
        assert_eq!(paper_optimal_parallelism(10_000), 8.0);
    }

    #[test]
    fn params_for_cells_reproduce_figure7_trends() {
        // Small rows: high peak speed-up at high parallelism.
        let small = params_for_cells(200);
        // Large rows: low peak at low parallelism.
        let large = params_for_cells(9_000);
        let small_best = (1..=64).map(|k| small.speedup(k)).fold(0.0, f64::max);
        let large_best = (1..=64).map(|k| large.speedup(k)).fold(0.0, f64::max);
        assert!(small_best > 5.0, "small-row best {small_best}");
        assert!(large_best < 3.5, "large-row best {large_best}");
        assert!(small.optimal_k() > large.optimal_k());
    }

    #[test]
    fn degenerate_rows_do_not_panic() {
        let p = params_for_cells(u64::MAX >> 8);
        assert!(p.speedup(8) >= 0.9);
        assert!(p.inflation(32) >= 1.0);
    }

    #[test]
    #[should_panic(expected = "peak concurrency")]
    fn solve_rejects_k1() {
        let _ = UslParams::solve(1.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "peak speed-up")]
    fn solve_rejects_superlinear() {
        let _ = UslParams::solve(40.0, 32.0);
    }
}
