//! Replica-selection policies (paper §VIII and the Figure 11 discussion).
//!
//! With a replication factor above 1 the master can pick *which* replica
//! serves each sub-query. The paper discusses the trade-off: random
//! spreading balances load but defeats caches; least-loaded selection needs
//! load knowledge and master CPU; Cassandra's driver sticks to the primary
//! unless it is down.

use rand::Rng;

/// How the master chooses among a partition's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPolicy {
    /// Always the ring owner (Cassandra driver default).
    Primary,
    /// Uniformly random among replicas.
    Random,
    /// Rotate through replicas per request.
    RoundRobin,
    /// The replica whose database currently has the fewest queued +
    /// in-flight requests (the paper's "replica selection algorithm" whose
    /// master-side cost Figure 11 contrasts against random distribution).
    LeastLoaded,
}

impl ReplicaPolicy {
    /// Picks an index into `replicas` (`0` = primary).
    ///
    /// `loads[i]` is the current in-flight+queued depth of replica `i`;
    /// `counter` is a per-query monotonically increasing dispatch counter
    /// (drives round-robin).
    pub fn pick<R: Rng + ?Sized>(
        &self,
        replica_count: usize,
        loads: &[usize],
        counter: u64,
        rng: &mut R,
    ) -> usize {
        assert!(replica_count > 0, "no replicas to pick from");
        match self {
            ReplicaPolicy::Primary => 0,
            ReplicaPolicy::Random => rng.gen_range(0..replica_count),
            ReplicaPolicy::RoundRobin => (counter % replica_count as u64) as usize,
            ReplicaPolicy::LeastLoaded => loads
                .iter()
                .take(replica_count)
                .enumerate()
                .min_by_key(|(_, &l)| l)
                .map(|(i, _)| i)
                .unwrap_or(0),
        }
    }

    /// The master-side CPU overhead of running this policy per request, in
    /// microseconds, relative to fire-and-forget. Least-loaded has to
    /// consult load statistics — the cost §VII's back-of-envelope uses to
    /// show the master saturating near 32 nodes.
    pub fn master_overhead_us(&self) -> f64 {
        match self {
            ReplicaPolicy::Primary => 0.0,
            ReplicaPolicy::Random => 0.2,
            ReplicaPolicy::RoundRobin => 0.1,
            ReplicaPolicy::LeastLoaded => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn primary_always_zero() {
        let mut r = rng();
        for c in 0..10 {
            assert_eq!(ReplicaPolicy::Primary.pick(3, &[9, 0, 0], c, &mut r), 0);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = rng();
        let picks: Vec<usize> = (0..6)
            .map(|c| ReplicaPolicy::RoundRobin.pick(3, &[0, 0, 0], c, &mut r))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_picks_minimum() {
        let mut r = rng();
        assert_eq!(ReplicaPolicy::LeastLoaded.pick(3, &[5, 2, 9], 0, &mut r), 1);
        // Ties break toward the primary (stable min).
        assert_eq!(ReplicaPolicy::LeastLoaded.pick(3, &[2, 2, 9], 0, &mut r), 0);
    }

    #[test]
    fn random_covers_all_replicas() {
        let mut r = rng();
        let mut seen = [false; 3];
        for c in 0..100 {
            seen[ReplicaPolicy::Random.pick(3, &[0, 0, 0], c, &mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_replica_always_zero() {
        let mut r = rng();
        for p in [
            ReplicaPolicy::Primary,
            ReplicaPolicy::Random,
            ReplicaPolicy::RoundRobin,
            ReplicaPolicy::LeastLoaded,
        ] {
            assert_eq!(p.pick(1, &[3], 5, &mut r), 0);
        }
    }

    #[test]
    fn least_loaded_costs_most_master_cpu() {
        assert!(
            ReplicaPolicy::LeastLoaded.master_overhead_us()
                > ReplicaPolicy::Random.master_overhead_us()
        );
        assert_eq!(ReplicaPolicy::Primary.master_overhead_us(), 0.0);
    }

    #[test]
    #[should_panic(expected = "no replicas")]
    fn zero_replicas_rejected() {
        let mut r = rng();
        ReplicaPolicy::Primary.pick(0, &[], 0, &mut r);
    }
}
