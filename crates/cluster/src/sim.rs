//! The simulated master/slave distributed query (paper §V).
//!
//! One [`run_query`] call replays the paper's prototype on the virtual
//! cluster: the master — which "knows from the beginning which are all the
//! requests it has to issue" — serializes and dispatches one request per
//! partition key through a single-threaded send loop, each slave queues
//! requests into its database executor, and responses flow back through the
//! master's receive loop. Every request is traced through the four
//! methodology stages.
//!
//! Timing sources:
//! * master CPU per message — the codec model (150 µs verbose / 19 µs
//!   compact, §V-B), plus the replica-policy overhead;
//! * network — latency + bytes/bandwidth over the *actual encoded bytes*
//!   of each message;
//! * database — [`kvs_store::CostModel`] applied to the *actual read
//!   receipt* of the partition, inflated by the USL interference model at
//!   the node's current concurrency, plus the GC model, with log-normal
//!   noise and a heavy-tail mixture.

use crate::config::ClusterConfig;
use crate::data::ClusterData;
use crate::messages::{QueryRequest, QueryResponse};
use crate::result::{Coverage, RunResult};
use crate::usl;
use kvs_simcore::{Dist, Engine, Resource, RngHub, SimDuration, SimTime};
use kvs_stages::{analyze, Stage, TraceRecorder};
use kvs_store::PartitionKey;
use rand::rngs::StdRng;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Everything about one sub-query that is known before timing begins.
#[derive(Debug, Clone)]
struct Prepared {
    request_id: u64,
    replicas: Vec<u32>,
    cells: u64,
    /// Un-inflated mean database service (receipt → ms).
    base_service_ms: f64,
    response: QueryResponse,
    req_bytes: usize,
    resp_bytes: usize,
}

struct SharedState {
    recorder: TraceRecorder,
    pending: usize,
    counts: BTreeMap<u8, u64>,
    total_cells: u64,
    rng: StdRng,
    dispatch_counter: u64,
    msgs_sent: u64,
    failovers: u64,
    send_first: Option<SimTime>,
    send_last: SimTime,
    misses: Vec<u64>,
    hedges_sent: u64,
    hedges_won: u64,
    extra_bytes_to_slaves: u64,
}

/// True when `node` has failed by instant `at` under the injected failure
/// plan.
fn node_is_dead(cfg: &ClusterConfig, node: u32, at: SimTime) -> bool {
    cfg.failures
        .iter()
        .any(|f| f.node == node && at >= SimTime::ZERO + f.at)
}

/// Samples a noisy service time using the cost model's variance
/// parameters. `mean_ms` is the contention-inflated expectation; on the
/// rare slow path (cache miss / bloom false positive) the request pays an
/// *additive* penalty of `(tail_multiplier − 1) ×` the uninflated
/// single-request cost `base_ms` — re-reading the row from disk costs the
/// row's own time again, not a multiple of the time it spent contending.
fn sample_service_ms(cfg: &ClusterConfig, base_ms: f64, mean_ms: f64, rng: &mut StdRng) -> f64 {
    let cost = &cfg.db.cost;
    let body = Dist::lognormal(mean_ms, cost.service_cv);
    let dist = if cost.tail_probability > 0.0 {
        let tail_mean = mean_ms + base_ms * (cost.tail_multiplier - 1.0).max(0.0);
        body.with_tail(
            Dist::lognormal(tail_mean, cost.service_cv),
            cost.tail_probability,
        )
    } else {
        body
    };
    dist.sample(rng)
}

/// Everything one in-flight attempt (primary or hedge) of a sub-query
/// needs, shared between the closure hops of its lifecycle.
struct AttemptEnv {
    cfg: Rc<ClusterConfig>,
    st: Rc<RefCell<SharedState>>,
    dbs: Rc<Vec<Resource>>,
    master_rx: Rc<Vec<Resource>>,
    shard: usize,
    p: Rc<Prepared>,
    /// First-response-wins flag shared by the primary and its hedge.
    done: Rc<Cell<bool>>,
    /// When the master-to-slaves stage of this request began (t=0 for the
    /// batch query; the arrival instant for paced runs).
    issued_at: SimTime,
}

/// Plays out one attempt of a sub-query against `node`: request transit
/// (plus any failover `penalty`), database service, response transit
/// (straggler-inflated when one is injected on the node), master receive.
/// Only the first attempt of a request to complete records its trace and
/// its answer; the loser is dropped at the recording point, exactly as the
/// network master deduplicates a lost hedge's late response.
fn launch_attempt(
    eng: &mut Engine,
    env: Rc<AttemptEnv>,
    node: u32,
    penalty: SimDuration,
    is_hedge: bool,
) {
    let transit = env.cfg.network.transit(env.p.req_bytes) + penalty;
    let env0 = env.clone();
    eng.schedule_in(transit, move |eng| {
        let env = env0;
        if env.done.get() {
            return; // answered before this attempt even arrived
        }
        let arrival = eng.now();
        let db = env.dbs[node as usize].clone();
        let service = {
            let mut s = env.st.borrow_mut();
            let k = (db.busy() + db.queue_len() + 1).min(env.cfg.db.parallelism);
            let inflation = usl::params_for_cells(env.p.cells).inflation(k);
            let mean_ms = env.p.base_service_ms * inflation + env.cfg.gc.db_extra_ms(env.p.cells);
            SimDuration::from_millis_f64(sample_service_ms(
                &env.cfg,
                env.p.base_service_ms,
                mean_ms,
                &mut s.rng,
            ))
        };
        let env1 = env.clone();
        db.submit(eng, service, move |eng, job| {
            let env = env1;
            let mut transit_back = env.cfg.network.transit(env.p.resp_bytes);
            {
                let mut s = env.st.borrow_mut();
                for straggle in env.cfg.stragglers.iter().filter(|f| f.node == node) {
                    if rand::Rng::gen_bool(&mut s.rng, straggle.probability.clamp(0.0, 1.0)) {
                        transit_back += straggle.extra;
                    }
                }
            }
            let (enqueued_at, started_at, db_done) =
                (job.enqueued_at, job.started_at, job.completed_at);
            let env2 = env.clone();
            eng.schedule_in(transit_back, move |eng| {
                let env = env2;
                let rx_time = env.cfg.master_rx_time();
                let env3 = env.clone();
                env.master_rx[env.shard].submit(eng, rx_time, move |eng, _rx_job| {
                    let env = env3;
                    if env.done.replace(true) {
                        return; // lost the race; duplicate answer dropped
                    }
                    let mut s = env.st.borrow_mut();
                    let id = env.p.request_id;
                    s.recorder.begin(id, node, env.p.cells);
                    s.recorder
                        .record(id, Stage::MasterToSlave, env.issued_at, arrival);
                    s.recorder
                        .record(id, Stage::InQueue, enqueued_at, started_at);
                    s.recorder.record(id, Stage::InDb, started_at, db_done);
                    s.recorder
                        .record(id, Stage::SlaveToMaster, db_done, eng.now());
                    if is_hedge {
                        s.hedges_won += 1;
                    }
                    for (&kind, &count) in &env.p.response.counts {
                        *s.counts.entry(kind).or_insert(0) += count;
                    }
                    s.total_cells += env.p.response.cells;
                    s.pending -= 1;
                });
            });
        });
    });
}

/// Runs one distributed aggregation over `keys` and returns the full
/// result. Deterministic for a given `(config, data, keys)` triple.
///
/// ```
/// use kvs_cluster::data::uniform_partitions;
/// use kvs_cluster::{run_query, ClusterConfig, ClusterData};
/// use kvs_store::TableOptions;
///
/// let parts = uniform_partitions(20, 10, 4); // 20 partitions × 10 cells
/// let keys: Vec<_> = parts.iter().map(|(pk, _)| pk.clone()).collect();
/// let mut data = ClusterData::load(4, 1, TableOptions::default(), parts);
/// let cfg = ClusterConfig::paper_optimized_master(4);
/// let result = run_query(&cfg, &mut data, &keys);
/// assert_eq!(result.total_cells, 200);
/// assert_eq!(result.traces.len(), 20);
/// ```
///
/// # Panics
/// If any key was never loaded into `data`, or `config.nodes` disagrees
/// with `data` — both are experiment-harness bugs worth failing loudly on.
pub fn run_query(
    config: &ClusterConfig,
    data: &mut ClusterData,
    keys: &[PartitionKey],
) -> RunResult {
    run_query_inner(config, data, keys, None)
}

/// Like [`run_query`], but request `i` enters the master's send loop only
/// once `arrivals[i]` has elapsed from query start (open-loop pacing), and
/// its master-to-slaves stage is measured from that arrival instead of
/// t=0. The chaos drill uses this to replay a measured run's arrival
/// process through the model.
///
/// # Panics
/// Same contracts as [`run_query`], plus one arrival offset per key.
pub fn run_query_paced(
    config: &ClusterConfig,
    data: &mut ClusterData,
    keys: &[PartitionKey],
    arrivals: &[SimDuration],
) -> RunResult {
    assert_eq!(arrivals.len(), keys.len(), "one arrival offset per key");
    run_query_inner(config, data, keys, Some(arrivals))
}

fn run_query_inner(
    config: &ClusterConfig,
    data: &mut ClusterData,
    keys: &[PartitionKey],
    arrivals: Option<&[SimDuration]>,
) -> RunResult {
    assert_eq!(
        config.nodes,
        data.nodes(),
        "config/data disagree on cluster size"
    );
    let cfg = Rc::new(config.clone());
    let codec = cfg.master.codec;

    // ---- Phase 1: resolve every sub-query against the store. ----
    // The reads themselves are deterministic, so they run up front; the
    // engine then only plays out *time*.
    let mut prepared = Vec::with_capacity(keys.len());
    let mut bytes_to_slaves = 0u64;
    let mut bytes_to_master = 0u64;
    for (i, pk) in keys.iter().enumerate() {
        let replicas: Vec<u32> = data.replicas_of(pk).to_vec();
        assert!(!replicas.is_empty(), "query for unplaced partition {pk:?}");
        let (cells, receipt) = data.table_mut(replicas[0]).get(pk);
        let response = QueryResponse::from_kinds(i as u64, cells.iter().map(|c| c.kind));
        let request = QueryRequest {
            request_id: i as u64,
            partition: pk.clone(),
        };
        let req_bytes = codec.encode_request(&request).len();
        let resp_bytes = codec.encode_response(&response).len();
        bytes_to_slaves += req_bytes as u64;
        bytes_to_master += resp_bytes as u64;
        prepared.push(Prepared {
            request_id: i as u64,
            replicas,
            cells: cells.len() as u64,
            base_service_ms: cfg.db.cost.service_ms(&receipt),
            response,
            req_bytes,
            resp_bytes,
        });
    }

    // ---- Phase 2: the discrete-event replay. ----
    let mut eng = Engine::new();
    let hub = RngHub::new(cfg.seed);
    let state = Rc::new(RefCell::new(SharedState {
        recorder: TraceRecorder::new(),
        pending: prepared.len(),
        counts: BTreeMap::new(),
        total_cells: 0,
        rng: hub.stream("service-noise"),
        dispatch_counter: 0,
        msgs_sent: 0,
        failovers: 0,
        send_first: None,
        send_last: SimTime::ZERO,
        misses: Vec::new(),
        hedges_sent: 0,
        hedges_won: 0,
        extra_bytes_to_slaves: 0,
    }));
    let shards = cfg.master_shards.max(1);
    let master_tx: Vec<Resource> = (0..shards)
        .map(|i| Resource::new(format!("master-tx-{i}"), 1))
        .collect();
    let master_rx: Rc<Vec<Resource>> = Rc::new(
        (0..shards)
            .map(|i| Resource::new(format!("master-rx-{i}"), 1))
            .collect(),
    );
    let dbs: Rc<Vec<Resource>> = Rc::new(
        (0..cfg.nodes)
            .map(|n| Resource::new(format!("db-{n}"), cfg.db.parallelism))
            .collect(),
    );

    for (idx, p) in prepared.into_iter().enumerate() {
        let p = Rc::new(p);
        // Master send CPU: serialization + policy overhead (+ a GC pause
        // every N messages).
        let mut tx_service = cfg.master_tx_time()
            + SimDuration::from_micros_f64(cfg.replica_policy.master_overhead_us());
        {
            let mut st = state.borrow_mut();
            st.msgs_sent += 1;
            if cfg.gc.enabled && st.msgs_sent.is_multiple_of(cfg.gc.master_msgs_per_pause) {
                tx_service += cfg.gc.master_pause;
            }
        }

        // Key space sharded over the coordinating masters: each request is
        // issued by (and returns to) its key's home shard.
        let shard =
            (kvs_balance::hashing::hash_key(&p.request_id.to_le_bytes()) % shards as u64) as usize;
        let st = state.clone();
        let cfg = cfg.clone();
        let dbs = dbs.clone();
        let master_rx = master_rx.clone();
        let arrival_at = arrivals
            .map(|a| SimTime::ZERO + a[idx])
            .unwrap_or(SimTime::ZERO);
        let mtx = master_tx[shard].clone();
        let dispatch = move |eng: &mut Engine| {
            // The paper's master-to-slaves stage runs from issue (t=0 in
            // the batch query, where the master knows all keys up front;
            // the arrival instant in paced runs) to slave receipt.
            let issued_at = eng.now();
            mtx.submit(eng, tx_service, move |eng, tx_report| {
                // Replica choice happens at send time with live load info.
                let pick = {
                    let mut s = st.borrow_mut();
                    s.send_first.get_or_insert(tx_report.started_at);
                    s.send_last = s.send_last.max(tx_report.completed_at);
                    let loads: Vec<usize> = p
                        .replicas
                        .iter()
                        .map(|&n| dbs[n as usize].busy() + dbs[n as usize].queue_len())
                        .collect();
                    let counter = s.dispatch_counter;
                    s.dispatch_counter += 1;
                    cfg.replica_policy
                        .pick(p.replicas.len(), &loads, counter, &mut s.rng)
                };
                // Failure injection: a dead replica costs a timeout, then
                // the master walks the replica list for the next live one.
                let base_transit = cfg.network.transit(p.req_bytes);
                let mut attempt = pick;
                let mut penalty = SimDuration::ZERO;
                let mut tried = 0usize;
                while node_is_dead(
                    &cfg,
                    p.replicas[attempt],
                    eng.now() + base_transit + penalty,
                ) {
                    tried += 1;
                    if tried > p.replicas.len() {
                        // Out of replicas: a recorded miss in degraded
                        // mode, an experiment-harness failure otherwise.
                        if cfg.degraded {
                            let mut s = st.borrow_mut();
                            s.failovers += tried as u64 - 1;
                            s.misses.push(p.request_id);
                            s.pending -= 1;
                            return;
                        }
                        panic!(
                            "every replica of request {} is dead — unservable query",
                            p.request_id
                        );
                    }
                    penalty += cfg.failure_timeout;
                    attempt = (attempt + 1) % p.replicas.len();
                }
                if tried > 0 {
                    st.borrow_mut().failovers += tried as u64;
                }
                let node = p.replicas[attempt];
                let env = Rc::new(AttemptEnv {
                    cfg: cfg.clone(),
                    st: st.clone(),
                    dbs,
                    master_rx,
                    shard,
                    p: p.clone(),
                    done: Rc::new(Cell::new(false)),
                    issued_at,
                });
                launch_attempt(eng, env.clone(), node, penalty, false);
                // Hedge: if the request is still unanswered `delay` after
                // dispatch, re-issue it to the next live replica. The
                // duplicate bypasses the master-tx resource — a deliberate
                // approximation (the real master's hedge is sent from the
                // collect loop, off the issue path's critical resource).
                if let Some(delay) = cfg.hedge {
                    if p.replicas.len() > 1 {
                        let primary_ix = attempt;
                        eng.schedule_in(delay, move |eng| {
                            if env.done.get() {
                                return;
                            }
                            let n = env.p.replicas.len();
                            let target = (1..n)
                                .map(|step| env.p.replicas[(primary_ix + step) % n])
                                .find(|&cand| !node_is_dead(&env.cfg, cand, eng.now()));
                            let Some(hnode) = target else { return };
                            {
                                let mut s = env.st.borrow_mut();
                                s.hedges_sent += 1;
                                s.extra_bytes_to_slaves += env.p.req_bytes as u64;
                            }
                            launch_attempt(eng, env.clone(), hnode, SimDuration::ZERO, true);
                        });
                    }
                }
            });
        };
        if arrivals.is_some() {
            eng.schedule_at(arrival_at, dispatch);
        } else {
            dispatch(&mut eng);
        }
    }

    eng.run();

    let state = Rc::try_unwrap(state)
        .unwrap_or_else(|_| panic!("simulation closures leaked shared state"))
        .into_inner();
    assert_eq!(state.pending, 0, "requests never completed");
    let traces = state.recorder.into_traces();
    let report = analyze(&traces);
    let issue_span = match state.send_first {
        Some(first) => state.send_last - first,
        None => SimDuration::ZERO,
    };
    let mut misses = state.misses;
    misses.sort_unstable();
    misses.dedup();
    RunResult {
        makespan: report.makespan,
        report,
        traces,
        counts_by_kind: state.counts,
        total_cells: state.total_cells,
        messages: state.msgs_sent,
        bytes_to_slaves: bytes_to_slaves + state.extra_bytes_to_slaves,
        bytes_to_master,
        issue_span,
        failovers: state.failovers,
        coverage: Coverage {
            answered: keys.len() as u64 - misses.len() as u64,
            total: keys.len() as u64,
        },
        missed: misses,
        hedges_sent: state.hedges_sent,
        hedges_won: state.hedges_won,
        queue: None,
    }
}

/// One observation of the single-node database microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbSample {
    /// Row size in cells.
    pub cells: u64,
    /// Observed response time, ms.
    pub ms: f64,
}

/// Result of a closed-loop database microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchResult {
    /// Per-request observations.
    pub samples: Vec<DbSample>,
    /// Total wall time of the closed loop, ms.
    pub total_ms: f64,
    /// The client parallelism used.
    pub parallelism: usize,
}

/// Replays the paper's database calibration experiments (Figures 6 and 7):
/// a closed loop of `parallelism` clients reads `keys` from the data's
/// primary replicas, measuring each response and the total wall time.
///
/// `label` isolates this run's noise stream so sweeps over parallelism see
/// independent noise.
pub fn db_microbench(
    config: &ClusterConfig,
    data: &mut ClusterData,
    keys: &[PartitionKey],
    parallelism: usize,
    label: &str,
) -> MicrobenchResult {
    assert!(parallelism > 0, "parallelism must be positive");
    let hub = RngHub::new(config.seed);
    let mut rng = hub.stream(&format!("microbench-{label}-{parallelism}"));
    let mut samples = Vec::with_capacity(keys.len());
    // Greedy closed-loop schedule: next request goes to the earliest-free
    // worker.
    let mut worker_free_at = vec![0.0f64; parallelism];
    for pk in keys {
        let node = data
            .primary_of(pk)
            .unwrap_or_else(|| panic!("unplaced partition {pk:?}"));
        let (cells, receipt) = data.table_mut(node).get(pk);
        let cells = cells.len() as u64;
        let k = parallelism.min(keys.len());
        let inflation = usl::params_for_cells(cells).inflation(k);
        let base_ms = config.db.cost.service_ms(&receipt);
        let mean_ms = base_ms * inflation + config.gc.db_extra_ms(cells);
        let ms = sample_service_ms(config, base_ms, mean_ms, &mut rng);
        samples.push(DbSample { cells, ms });
        let (slot, free_at) =
            worker_free_at
                .iter()
                .copied()
                .enumerate()
                .fold(
                    (0, f64::INFINITY),
                    |acc, (i, t)| {
                        if t < acc.1 {
                            (i, t)
                        } else {
                            acc
                        }
                    },
                );
        worker_free_at[slot] = free_at + ms;
    }
    let total_ms = worker_free_at.iter().copied().fold(0.0f64, f64::max);
    MicrobenchResult {
        samples,
        total_ms,
        parallelism,
    }
}

/// Result of an open-loop (arrival-driven) run — the "real-time analytics"
/// serving mode of the paper's introduction, as opposed to the batch
/// "master knows all keys" mode of [`run_query`].
#[derive(Debug, Clone)]
pub struct OpenLoopResult {
    /// The offered Poisson arrival rate, requests/second.
    pub offered_rps: f64,
    /// Requests completed within the run.
    pub completed: usize,
    /// Achieved throughput over the measured horizon, requests/second.
    pub achieved_rps: f64,
    /// End-to-end latency summary (ms), `None` when nothing completed.
    pub latency_ms: Option<kvs_simcore::Summary>,
}

/// Drives the cluster with Poisson arrivals at `offered_rps` for
/// `duration`, each request reading one uniformly drawn key from `keys`.
/// All in-flight requests are allowed to drain, but only those *arriving*
/// inside the horizon are issued.
///
/// # Panics
/// Same contracts as [`run_query`], plus `offered_rps > 0` and a non-empty
/// key pool.
pub fn run_open_loop(
    config: &ClusterConfig,
    data: &mut ClusterData,
    keys: &[PartitionKey],
    offered_rps: f64,
    duration: SimDuration,
    label: &str,
) -> OpenLoopResult {
    assert!(offered_rps > 0.0, "need a positive arrival rate");
    assert!(!keys.is_empty(), "need a key pool");
    assert_eq!(
        config.nodes,
        data.nodes(),
        "config/data disagree on cluster size"
    );
    let cfg = Rc::new(config.clone());
    let codec = cfg.master.codec;

    // Resolve the key pool once.
    let mut prepared = Vec::with_capacity(keys.len());
    for (i, pk) in keys.iter().enumerate() {
        let replicas: Vec<u32> = data.replicas_of(pk).to_vec();
        assert!(!replicas.is_empty(), "query for unplaced partition {pk:?}");
        let (cells, receipt) = data.table_mut(replicas[0]).get(pk);
        let response = QueryResponse::from_kinds(i as u64, cells.iter().map(|c| c.kind));
        let request = QueryRequest {
            request_id: i as u64,
            partition: pk.clone(),
        };
        prepared.push(Prepared {
            request_id: i as u64,
            replicas,
            cells: cells.len() as u64,
            base_service_ms: cfg.db.cost.service_ms(&receipt),
            req_bytes: codec.encode_request(&request).len(),
            resp_bytes: codec.encode_response(&response).len(),
            response,
        });
    }
    let prepared = Rc::new(prepared);

    // Poisson arrivals over the horizon.
    let hub = RngHub::new(cfg.seed);
    let mut arrivals_rng = hub.stream(&format!("open-loop-arrivals-{label}"));
    let mut pick_rng = hub.stream(&format!("open-loop-keys-{label}"));
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    let horizon_s = duration.as_secs_f64();
    loop {
        t += kvs_simcore::Dist::Exponential {
            mean: 1.0 / offered_rps,
        }
        .sample(&mut arrivals_rng);
        if t >= horizon_s {
            break;
        }
        arrivals.push((t, rand::Rng::gen_range(&mut pick_rng, 0..prepared.len())));
    }

    let mut eng = Engine::new();
    let latencies: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    let noise: Rc<RefCell<StdRng>> = Rc::new(RefCell::new(
        hub.stream(&format!("open-loop-noise-{label}")),
    ));
    let master_tx = Resource::new("ol-master-tx", 1);
    let master_rx = Resource::new("ol-master-rx", 1);
    let dbs: Rc<Vec<Resource>> = Rc::new(
        (0..cfg.nodes)
            .map(|n| Resource::new(format!("ol-db-{n}"), cfg.db.parallelism))
            .collect(),
    );

    for (arrive_s, key_idx) in arrivals.iter().copied() {
        let cfg = cfg.clone();
        let prepared = prepared.clone();
        let dbs = dbs.clone();
        let master_tx = master_tx.clone();
        let master_rx = master_rx.clone();
        let latencies = latencies.clone();
        let noise = noise.clone();
        eng.schedule_at(
            SimTime::ZERO + SimDuration::from_secs_f64(arrive_s),
            move |eng| {
                let born = eng.now();
                let tx_service = cfg.master_tx_time();
                let cfg2 = cfg.clone();
                master_tx.submit(eng, tx_service, move |eng, _| {
                    let p = &prepared[key_idx];
                    let node = p.replicas[0];
                    let transit = cfg2.network.transit(p.req_bytes);
                    let cfg3 = cfg2.clone();
                    let prepared = prepared.clone();
                    let dbs = dbs.clone();
                    let master_rx = master_rx.clone();
                    let latencies = latencies.clone();
                    let noise = noise.clone();
                    eng.schedule_in(transit, move |eng| {
                        let p = &prepared[key_idx];
                        let db = dbs[node as usize].clone();
                        let k = (db.busy() + db.queue_len() + 1).min(cfg3.db.parallelism);
                        let inflation = usl::params_for_cells(p.cells).inflation(k);
                        let mean_ms = p.base_service_ms * inflation + cfg3.gc.db_extra_ms(p.cells);
                        let service = SimDuration::from_millis_f64(sample_service_ms(
                            &cfg3,
                            p.base_service_ms,
                            mean_ms,
                            &mut noise.borrow_mut(),
                        ));
                        let cfg4 = cfg3.clone();
                        let prepared = prepared.clone();
                        let master_rx = master_rx.clone();
                        let latencies = latencies.clone();
                        db.submit(eng, service, move |eng, _| {
                            let p = &prepared[key_idx];
                            let back = cfg4.network.transit(p.resp_bytes);
                            let rx_time = cfg4.master_rx_time();
                            let master_rx = master_rx.clone();
                            let latencies = latencies.clone();
                            eng.schedule_in(back, move |eng| {
                                master_rx.submit(eng, rx_time, move |eng, _| {
                                    latencies
                                        .borrow_mut()
                                        .push((eng.now() - born).as_millis_f64());
                                });
                            });
                        });
                    });
                });
            },
        );
    }

    let offered = arrivals.len();
    eng.run();
    let latencies = Rc::try_unwrap(latencies)
        .unwrap_or_else(|_| panic!("open-loop closures leaked state"))
        .into_inner();
    assert_eq!(latencies.len(), offered, "requests lost in flight");
    let achieved_rps = if eng.now().as_secs_f64() > 0.0 {
        latencies.len() as f64 / eng.now().as_secs_f64()
    } else {
        0.0
    };
    OpenLoopResult {
        offered_rps,
        completed: latencies.len(),
        achieved_rps,
        latency_ms: kvs_simcore::Summary::from_samples(&latencies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::uniform_partitions;
    use kvs_stages::Bottleneck;
    use kvs_store::TableOptions;

    fn small_cluster(nodes: u32, partitions: u64, cells: u64) -> (ClusterData, Vec<PartitionKey>) {
        let parts = uniform_partitions(partitions, cells, 4);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        let data = ClusterData::load(nodes, 1, TableOptions::default(), parts);
        (data, keys)
    }

    #[test]
    fn aggregation_is_correct() {
        let (mut data, keys) = small_cluster(4, 40, 12);
        let cfg = ClusterConfig::paper_optimized_master(4).deterministic();
        let result = run_query(&cfg, &mut data, &keys);
        // 40 partitions × 12 cells, kinds cycling 0..4 → 120 cells per kind.
        assert_eq!(result.total_cells, 480);
        for kind in 0..4u8 {
            assert_eq!(result.counts_by_kind[&kind], 120, "kind {kind}");
        }
        assert_eq!(result.messages, 40);
    }

    #[test]
    fn run_is_deterministic() {
        let (mut d1, keys) = small_cluster(4, 30, 10);
        let (mut d2, _) = small_cluster(4, 30, 10);
        let cfg = ClusterConfig::paper_slow_master(4);
        let a = run_query(&cfg, &mut d1, &keys);
        let b = run_query(&cfg, &mut d2, &keys);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.report.requests_per_node, b.report.requests_per_node);
    }

    #[test]
    fn different_seeds_change_timing_not_results() {
        let (mut d1, keys) = small_cluster(4, 30, 10);
        let (mut d2, _) = small_cluster(4, 30, 10);
        let mut cfg1 = ClusterConfig::paper_slow_master(4);
        cfg1.seed = 1;
        let mut cfg2 = cfg1.clone();
        cfg2.seed = 2;
        let a = run_query(&cfg1, &mut d1, &keys);
        let b = run_query(&cfg2, &mut d2, &keys);
        assert_eq!(a.counts_by_kind, b.counts_by_kind);
        assert_ne!(a.makespan, b.makespan);
    }

    #[test]
    fn traces_are_complete_and_causal() {
        let (mut data, keys) = small_cluster(2, 20, 8);
        let cfg = ClusterConfig::paper_optimized_master(2).deterministic();
        let result = run_query(&cfg, &mut data, &keys);
        assert_eq!(result.traces.len(), 20);
        for t in &result.traces {
            assert!(t.is_complete(), "incomplete trace {t:?}");
            let m2s = t.spans[Stage::MasterToSlave.index()].unwrap();
            let q = t.spans[Stage::InQueue.index()].unwrap();
            let db = t.spans[Stage::InDb.index()].unwrap();
            let s2m = t.spans[Stage::SlaveToMaster.index()].unwrap();
            assert!(m2s.end == q.start, "queue starts at arrival");
            assert!(q.end == db.start);
            assert!(db.end == s2m.start);
            assert!(s2m.end >= s2m.start);
        }
    }

    #[test]
    fn all_requests_respect_placement() {
        let (mut data, keys) = small_cluster(4, 50, 5);
        let expected: Vec<u32> = keys.iter().map(|k| data.primary_of(k).unwrap()).collect();
        let cfg = ClusterConfig::paper_optimized_master(4).deterministic();
        let result = run_query(&cfg, &mut data, &keys);
        for (t, &node) in result.traces.iter().zip(&expected) {
            assert_eq!(t.node, node, "request {} on wrong node", t.request_id);
        }
    }

    #[test]
    fn slow_master_many_keys_is_master_bound() {
        // 2 000 tiny partitions on 8 nodes, 150 µs per message: issuing
        // takes 300 ms while each DB burns through its ~250 requests in
        // ~80 ms of work — the Figure 4 fine-grained profile.
        let (mut data, keys) = small_cluster(8, 2_000, 2);
        let cfg = ClusterConfig::paper_slow_master(8).deterministic();
        let result = run_query(&cfg, &mut data, &keys);
        assert!(
            matches!(result.report.bottleneck, Bottleneck::MasterSend { .. }),
            "expected master-bound, got {:?}",
            result.report.bottleneck
        );
        // Issue span ≈ keys × 150 µs.
        let expect_ms = 2_000.0 * 0.150;
        assert!(
            (result.issue_span.as_millis_f64() - expect_ms).abs() / expect_ms < 0.15,
            "issue span {} vs {}",
            result.issue_span,
            expect_ms
        );
    }

    #[test]
    fn optimized_master_shifts_bottleneck_off_master() {
        // The paper's fine-grained shape: many 100-cell partitions. With
        // the slow master this profile is master-bound (Figure 4 top); the
        // optimized master moves the constraint into the database tier
        // (Figure 5's near-linear fine-grained line).
        let (mut data, keys) = small_cluster(8, 2_000, 100);
        let cfg = ClusterConfig::paper_optimized_master(8).deterministic();
        let result = run_query(&cfg, &mut data, &keys);
        assert!(
            !matches!(result.report.bottleneck, Bottleneck::MasterSend { .. }),
            "optimized master still the bottleneck: {:?}",
            result.report.bottleneck
        );
    }

    #[test]
    fn few_big_keys_show_imbalance() {
        // 30 keys on 8 nodes: Formula 1 predicts heavy imbalance.
        let (mut data, keys) = small_cluster(8, 30, 400);
        let cfg = ClusterConfig::paper_optimized_master(8).deterministic();
        let result = run_query(&cfg, &mut data, &keys);
        assert!(
            result.load_excess() > 0.2,
            "load excess {} suspiciously flat",
            result.load_excess()
        );
        assert!(result.balanced_time() < result.makespan);
    }

    #[test]
    fn replication_with_least_loaded_spreads_requests() {
        let parts = uniform_partitions(60, 10, 2);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        let mut data = ClusterData::load(4, 3, TableOptions::default(), parts);
        let mut cfg = ClusterConfig::paper_optimized_master(4).deterministic();
        cfg.replication_factor = 3;
        cfg.replica_policy = ReplicaPolicy::LeastLoaded;
        let result = run_query(&cfg, &mut data, &keys);
        // With rf=3 + least-loaded the excess should be small.
        assert!(
            result.load_excess() < 0.35,
            "least-loaded excess {}",
            result.load_excess()
        );
        assert_eq!(result.total_cells, 600);
    }

    use crate::policy::ReplicaPolicy;

    #[test]
    fn microbench_scales_with_parallelism_then_degrades() {
        let (mut data, keys) = small_cluster(1, 64, 500);
        let cfg = ClusterConfig::paper_optimized_master(1).deterministic();
        let t1 = db_microbench(&cfg, &mut data, &keys, 1, "t").total_ms;
        let t8 = db_microbench(&cfg, &mut data, &keys, 8, "t").total_ms;
        let t32 = db_microbench(&cfg, &mut data, &keys, 32, "t").total_ms;
        let t64 = db_microbench(&cfg, &mut data, &keys, 64, "t").total_ms;
        assert!(t8 < t1 * 0.5, "8-way {t8} vs serial {t1}");
        // 500-cell rows peak near 32 concurrent requests; 64 must be
        // retrograde (strictly worse than the peak).
        assert!(t32 < t8, "t32={t32} should beat t8={t8}");
        assert!(t64 > t32, "no retrograde: t64={t64} t32={t32}");
    }

    #[test]
    fn microbench_sample_times_match_formula6() {
        let (mut data, keys) = small_cluster(1, 10, 250);
        let cfg = ClusterConfig::paper_optimized_master(1).deterministic();
        let r = db_microbench(&cfg, &mut data, &keys, 1, "f6");
        for s in &r.samples {
            assert_eq!(s.cells, 250);
            // 1.163 + 0.0387·250 ≈ 10.84 ms, serial ⇒ no inflation.
            assert!((s.ms - 10.84).abs() < 0.05, "{}", s.ms);
        }
    }

    #[test]
    fn open_loop_latency_grows_with_load() {
        // 4 nodes serving 250-cell rows: capacity ≈ 4·S*(250)/10.84 ms ≈
        // 2 400 rps. Latency at 20 % load must be near the service floor;
        // at 120 % load the queues blow up.
        let (mut data, keys) = small_cluster(4, 200, 250);
        let cfg = ClusterConfig::paper_optimized_master(4).deterministic();
        let low = run_open_loop(
            &cfg,
            &mut data,
            &keys,
            400.0,
            SimDuration::from_secs(2),
            "low",
        );
        let high = run_open_loop(
            &cfg,
            &mut data,
            &keys,
            3_000.0,
            SimDuration::from_secs(2),
            "high",
        );
        let low_p50 = low.latency_ms.as_ref().expect("completions").p50;
        let high_p50 = high.latency_ms.as_ref().expect("completions").p50;
        assert!(low_p50 < 40.0, "low-load p50 {low_p50} too high");
        assert!(
            high_p50 > low_p50 * 3.0,
            "overload did not hurt: {high_p50} vs {low_p50}"
        );
        assert!(low.completed > 500);
        // Under overload the achieved rate saturates below the offer.
        assert!(high.achieved_rps < 3_000.0 * 0.95, "{}", high.achieved_rps);
    }

    #[test]
    fn open_loop_conserves_requests() {
        let (mut data, keys) = small_cluster(2, 50, 100);
        let cfg = ClusterConfig::paper_optimized_master(2);
        let r = run_open_loop(
            &cfg,
            &mut data,
            &keys,
            200.0,
            SimDuration::from_millis(500),
            "conserve",
        );
        assert_eq!(
            r.completed,
            r.latency_ms.as_ref().map(|s| s.count).unwrap_or(0)
        );
        assert!(r.offered_rps == 200.0);
    }

    #[test]
    fn failover_retries_dead_replicas_and_preserves_answers() {
        use crate::config::NodeFailure;
        let parts = uniform_partitions(60, 10, 4);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        let mut healthy_data = ClusterData::load(4, 2, TableOptions::default(), parts.clone());
        let mut failing_data = ClusterData::load(4, 2, TableOptions::default(), parts);
        let mut cfg = ClusterConfig::paper_optimized_master(4).deterministic();
        cfg.replication_factor = 2;
        let healthy = run_query(&cfg, &mut healthy_data, &keys);
        let mut failing_cfg = cfg.clone();
        failing_cfg.failures = vec![NodeFailure {
            node: 0,
            at: SimDuration::ZERO, // dead from the start
        }];
        failing_cfg.failure_timeout = SimDuration::from_millis(100);
        let failed = run_query(&failing_cfg, &mut failing_data, &keys);
        // Answers identical: every partition has a surviving replica.
        assert_eq!(healthy.counts_by_kind, failed.counts_by_kind);
        assert_eq!(healthy.total_cells, failed.total_cells);
        // Node 0 served nothing; its keys failed over.
        assert!(failed.failovers > 0, "no failovers recorded");
        assert!(
            !failed.report.requests_per_node.contains_key(&0),
            "dead node served requests: {:?}",
            failed.report.requests_per_node
        );
        // The timeouts cost real time.
        assert!(failed.makespan >= healthy.makespan);
        assert_eq!(healthy.failovers, 0);
    }

    #[test]
    #[should_panic(expected = "unservable")]
    fn losing_every_replica_is_loud() {
        use crate::config::NodeFailure;
        let (mut data, keys) = small_cluster(2, 10, 5); // rf = 1
        let mut cfg = ClusterConfig::paper_optimized_master(2).deterministic();
        cfg.failures = (0..2)
            .map(|node| NodeFailure {
                node,
                at: SimDuration::ZERO,
            })
            .collect();
        let _ = run_query(&cfg, &mut data, &keys);
    }

    #[test]
    fn late_failure_only_affects_requests_after_it() {
        use crate::config::NodeFailure;
        let parts = uniform_partitions(40, 2_000, 4);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        let mut data = ClusterData::load(4, 2, TableOptions::default(), parts);
        let mut cfg = ClusterConfig::paper_optimized_master(4).deterministic();
        cfg.replication_factor = 2;
        // Fail node 1 late enough that the dispatch wave (40 × 19 µs ≈
        // 0.8 ms) has already fully landed — no retries should occur.
        cfg.failures = vec![NodeFailure {
            node: 1,
            at: SimDuration::from_millis(50),
        }];
        let result = run_query(&cfg, &mut data, &keys);
        assert_eq!(result.failovers, 0, "late failure caused failovers");
        assert_eq!(result.total_cells, 40 * 2_000);
    }

    #[test]
    fn sharded_masters_relieve_a_bound_master() {
        // Fine-grained-style workload on a slow master: issue time
        // dominates. Sharding the master over 4 coordinators must cut the
        // makespan while answering identically.
        let (mut d1, keys) = small_cluster(8, 2_000, 20);
        let (mut d2, _) = small_cluster(8, 2_000, 20);
        let single_cfg = ClusterConfig::paper_slow_master(8).deterministic();
        let mut sharded_cfg = single_cfg.clone();
        sharded_cfg.master_shards = 4;
        let single = run_query(&single_cfg, &mut d1, &keys);
        let sharded = run_query(&sharded_cfg, &mut d2, &keys);
        assert_eq!(single.counts_by_kind, sharded.counts_by_kind);
        assert!(
            sharded.makespan.as_millis_f64() < single.makespan.as_millis_f64() * 0.7,
            "sharding bought too little: {} vs {}",
            sharded.makespan,
            single.makespan
        );
        // The dispatch span itself shrinks roughly by the shard count
        // (modulo the hash split's own imbalance).
        assert!(sharded.issue_span.as_millis_f64() < single.issue_span.as_millis_f64() * 0.45);
    }

    #[test]
    #[should_panic(expected = "unplaced partition")]
    fn querying_unknown_key_panics() {
        let (mut data, _) = small_cluster(2, 5, 5);
        let cfg = ClusterConfig::paper_optimized_master(2);
        let bogus = vec![PartitionKey::from_id(999_999)];
        let _ = run_query(&cfg, &mut data, &bogus);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn config_data_mismatch_panics() {
        let (mut data, keys) = small_cluster(2, 5, 5);
        let cfg = ClusterConfig::paper_optimized_master(4);
        let _ = run_query(&cfg, &mut data, &keys);
    }
}
