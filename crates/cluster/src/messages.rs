//! The wire protocol between master and slaves.
//!
//! The paper's prototype runs a "count by type" aggregation: the master
//! sends one [`QueryRequest`] per partition key, each slave reads the
//! partition locally and answers with a [`QueryResponse`] holding the
//! per-kind counts.
//!
//! The replicated write path adds two more message bodies:
//! [`WriteRequest`] carries a batch of cells plus a last-write-wins
//! timestamp, and [`WriteAck`] reports whether the replica applied it and
//! which version the partition holds afterwards. Read-modify-write rides
//! the same bodies (frame kind `Rmw`, payload `WriteRequest`): the slave
//! reads the partition pre-image before applying, preserving sequential
//! semantics on the replica.

use kvs_store::{Cell, PartitionKey};
use std::collections::BTreeMap;

/// A sub-query: "aggregate this partition".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Unique id within the distributed query.
    pub request_id: u64,
    /// The partition to aggregate.
    pub partition: PartitionKey,
}

/// A partial result: per-kind cell counts for one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// Echoes the request id.
    pub request_id: u64,
    /// kind byte → number of cells of that kind.
    pub counts: BTreeMap<u8, u64>,
    /// Total cells aggregated (Σ counts, precomputed for convenience).
    pub cells: u64,
    /// Last-write-wins version of the partition at read time (the
    /// version cell's timestamp), `0` when the partition has never been
    /// written through the replicated write path. The coordinator uses
    /// this for read-repair and staleness accounting.
    pub version: u64,
}

impl QueryResponse {
    /// Builds a response from raw cell kinds.
    pub fn from_kinds(request_id: u64, kinds: impl IntoIterator<Item = u8>) -> Self {
        let mut counts: BTreeMap<u8, u64> = BTreeMap::new();
        let mut cells = 0;
        for kind in kinds {
            *counts.entry(kind).or_insert(0) += 1;
            cells += 1;
        }
        QueryResponse {
            request_id,
            counts,
            cells,
            version: 0,
        }
    }

    /// Sets the partition's LWW version (builder style).
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self
    }

    /// Merges another partial result into this one (the master's reduce).
    pub fn merge(&mut self, other: &QueryResponse) {
        for (&kind, &count) in &other.counts {
            *self.counts.entry(kind).or_insert(0) += count;
        }
        self.cells += other.cells;
        self.version = self.version.max(other.version);
    }

    /// An empty accumulator for the master's reduce.
    pub fn empty() -> Self {
        QueryResponse {
            request_id: 0,
            counts: BTreeMap::new(),
            cells: 0,
            version: 0,
        }
    }
}

/// A replicated write: apply `cells` to `partition` iff `timestamp` is
/// newer than the partition's current version (last-write-wins; ties
/// keep the incumbent, so replaying a hint is idempotent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRequest {
    /// Unique id within the distributed operation.
    pub request_id: u64,
    /// The partition to write.
    pub partition: PartitionKey,
    /// LWW timestamp, wall-clock nanoseconds drawn at the coordinator.
    pub timestamp: u64,
    /// The cells to apply.
    pub cells: Vec<Cell>,
}

/// A replica's answer to a [`WriteRequest`] (or an RMW).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteAck {
    /// Echoes the request id.
    pub request_id: u64,
    /// Whether the write was applied (`false`: a newer version already
    /// held the partition, or the store refused the write).
    pub applied: bool,
    /// The partition's LWW version after the decision. The coordinator
    /// counts an ack toward the consistency level iff
    /// `version >= timestamp` — the replica provably holds data at least
    /// as new as this write.
    pub version: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_kinds_counts_correctly() {
        let r = QueryResponse::from_kinds(1, [0u8, 1, 1, 2, 2, 2]);
        assert_eq!(r.cells, 6);
        assert_eq!(r.counts[&0], 1);
        assert_eq!(r.counts[&1], 2);
        assert_eq!(r.counts[&2], 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut acc = QueryResponse::empty();
        acc.merge(&QueryResponse::from_kinds(1, [0u8, 1]));
        acc.merge(&QueryResponse::from_kinds(2, [1u8, 2]));
        assert_eq!(acc.cells, 4);
        assert_eq!(acc.counts[&0], 1);
        assert_eq!(acc.counts[&1], 2);
        assert_eq!(acc.counts[&2], 1);
    }

    #[test]
    fn empty_kinds() {
        let r = QueryResponse::from_kinds(9, std::iter::empty());
        assert_eq!(r.cells, 0);
        assert!(r.counts.is_empty());
        assert_eq!(r.version, 0);
    }

    #[test]
    fn merge_keeps_max_version() {
        let mut acc = QueryResponse::empty();
        acc.merge(&QueryResponse::from_kinds(1, [0u8]).with_version(7));
        acc.merge(&QueryResponse::from_kinds(2, [1u8]).with_version(3));
        assert_eq!(acc.version, 7);
    }
}
