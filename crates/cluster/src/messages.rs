//! The wire protocol between master and slaves.
//!
//! The paper's prototype runs a "count by type" aggregation: the master
//! sends one [`QueryRequest`] per partition key, each slave reads the
//! partition locally and answers with a [`QueryResponse`] holding the
//! per-kind counts.

use kvs_store::PartitionKey;
use std::collections::BTreeMap;

/// A sub-query: "aggregate this partition".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Unique id within the distributed query.
    pub request_id: u64,
    /// The partition to aggregate.
    pub partition: PartitionKey,
}

/// A partial result: per-kind cell counts for one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResponse {
    /// Echoes the request id.
    pub request_id: u64,
    /// kind byte → number of cells of that kind.
    pub counts: BTreeMap<u8, u64>,
    /// Total cells aggregated (Σ counts, precomputed for convenience).
    pub cells: u64,
}

impl QueryResponse {
    /// Builds a response from raw cell kinds.
    pub fn from_kinds(request_id: u64, kinds: impl IntoIterator<Item = u8>) -> Self {
        let mut counts: BTreeMap<u8, u64> = BTreeMap::new();
        let mut cells = 0;
        for kind in kinds {
            *counts.entry(kind).or_insert(0) += 1;
            cells += 1;
        }
        QueryResponse {
            request_id,
            counts,
            cells,
        }
    }

    /// Merges another partial result into this one (the master's reduce).
    pub fn merge(&mut self, other: &QueryResponse) {
        for (&kind, &count) in &other.counts {
            *self.counts.entry(kind).or_insert(0) += count;
        }
        self.cells += other.cells;
    }

    /// An empty accumulator for the master's reduce.
    pub fn empty() -> Self {
        QueryResponse {
            request_id: 0,
            counts: BTreeMap::new(),
            cells: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_kinds_counts_correctly() {
        let r = QueryResponse::from_kinds(1, [0u8, 1, 1, 2, 2, 2]);
        assert_eq!(r.cells, 6);
        assert_eq!(r.counts[&0], 1);
        assert_eq!(r.counts[&1], 2);
        assert_eq!(r.counts[&2], 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut acc = QueryResponse::empty();
        acc.merge(&QueryResponse::from_kinds(1, [0u8, 1]));
        acc.merge(&QueryResponse::from_kinds(2, [1u8, 2]));
        assert_eq!(acc.cells, 4);
        assert_eq!(acc.counts[&0], 1);
        assert_eq!(acc.counts[&1], 2);
        assert_eq!(acc.counts[&2], 1);
    }

    #[test]
    fn empty_kinds() {
        let r = QueryResponse::from_kinds(9, std::iter::empty());
        assert_eq!(r.cells, 0);
        assert!(r.counts.is_empty());
    }
}
