//! DHT data placement: partitions → hash ring → per-node tables.

use kvs_balance::HashRing;
use kvs_store::{Cell, PartitionKey, Table, TableOptions};
use std::collections::BTreeMap;

/// The cluster's data: one [`Table`] per node, plus the ring and a
/// partition directory.
pub struct ClusterData {
    ring: HashRing,
    tables: Vec<Table>,
    /// partition → replica node indexes (primary first).
    placement: BTreeMap<PartitionKey, Vec<u32>>,
    /// partition → cell count (what the planner and the master "know").
    partition_cells: BTreeMap<PartitionKey, u64>,
    replication_factor: usize,
}

impl ClusterData {
    /// Distributes `partitions` over `nodes` nodes with the given
    /// replication factor, bulk-loading each replica's table and flushing
    /// so reads hit SSTables (the steady state the paper measures).
    ///
    /// # Panics
    /// If `nodes == 0` or `replication_factor == 0`.
    pub fn load(
        nodes: u32,
        replication_factor: usize,
        table_opts: TableOptions,
        partitions: Vec<(PartitionKey, Vec<Cell>)>,
    ) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(replication_factor > 0, "need rf ≥ 1");
        let ring = HashRing::with_nodes(nodes, 128);
        let mut tables: Vec<Table> = (0..nodes).map(|_| Table::new(table_opts.clone())).collect();
        let mut placement = BTreeMap::new();
        let mut partition_cells = BTreeMap::new();
        for (pk, cells) in partitions {
            let replicas = ring.replicas_for_key(pk.as_bytes(), replication_factor);
            let nodes_idx: Vec<u32> = replicas.iter().map(|n| n.0).collect();
            partition_cells.insert(pk.clone(), cells.len() as u64);
            for &node in &nodes_idx {
                for cell in &cells {
                    tables[node as usize].put(pk.clone(), cell.clone());
                }
            }
            placement.insert(pk, nodes_idx);
        }
        for t in &mut tables {
            t.flush();
        }
        ClusterData {
            ring,
            tables,
            placement,
            partition_cells,
            replication_factor,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.tables.len() as u32
    }

    /// The configured replication factor.
    pub fn replication_factor(&self) -> usize {
        self.replication_factor
    }

    /// The replica node indexes of a partition (primary first). Empty for
    /// unknown partitions.
    pub fn replicas_of(&self, pk: &PartitionKey) -> &[u32] {
        self.placement.get(pk).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The primary node of a partition.
    pub fn primary_of(&self, pk: &PartitionKey) -> Option<u32> {
        self.replicas_of(pk).first().copied()
    }

    /// The cell count the directory records for a partition.
    pub fn cells_of(&self, pk: &PartitionKey) -> u64 {
        self.partition_cells.get(pk).copied().unwrap_or(0)
    }

    /// All partitions, in key order.
    pub fn partitions(&self) -> impl Iterator<Item = (&PartitionKey, u64)> + '_ {
        self.partition_cells.iter().map(|(pk, &c)| (pk, c))
    }

    /// Number of partitions loaded.
    pub fn partition_count(&self) -> usize {
        self.partition_cells.len()
    }

    /// Mutable access to a node's table (the slave read path).
    pub fn table_mut(&mut self, node: u32) -> &mut Table {
        &mut self.tables[node as usize]
    }

    /// Immutable access to a node's table.
    pub fn table(&self, node: u32) -> &Table {
        &self.tables[node as usize]
    }

    /// Per-node partition counts — the figure-2 style load histogram.
    pub fn partitions_per_node(&self) -> BTreeMap<u32, u64> {
        let mut out: BTreeMap<u32, u64> = (0..self.nodes()).map(|n| (n, 0)).collect();
        for replicas in self.placement.values() {
            if let Some(&primary) = replicas.first() {
                *out.get_mut(&primary).expect("node exists") += 1;
            }
        }
        out
    }

    /// The underlying ring (for placement diagnostics).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Consumes the cluster, handing each node's table to the caller (the
    /// live executor moves them into worker threads).
    pub fn into_tables(self) -> Vec<Table> {
        self.tables
    }
}

/// Convenience: evenly sized synthetic partitions — `partitions` partitions
/// of `cells_each` cells, kinds cycling 0..kinds.
pub fn uniform_partitions(
    partitions: u64,
    cells_each: u64,
    kinds: u8,
) -> Vec<(PartitionKey, Vec<Cell>)> {
    (0..partitions)
        .map(|p| {
            let cells = (0..cells_each)
                .map(|c| Cell::synthetic(c, (c % kinds.max(1) as u64) as u8))
                .collect();
            (PartitionKey::from_id(p), cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_places_every_partition() {
        let data = ClusterData::load(
            4,
            1,
            TableOptions::default(),
            uniform_partitions(100, 10, 4),
        );
        assert_eq!(data.partition_count(), 100);
        assert_eq!(data.nodes(), 4);
        let per_node = data.partitions_per_node();
        assert_eq!(per_node.values().sum::<u64>(), 100);
        // Every node should own something at this scale.
        assert!(per_node.values().all(|&c| c > 0), "{per_node:?}");
    }

    #[test]
    fn placement_follows_ring() {
        let data = ClusterData::load(8, 1, TableOptions::default(), uniform_partitions(50, 5, 2));
        for (pk, _) in data.partitions() {
            let expected = data.ring().node_for_key(pk.as_bytes());
            assert_eq!(data.primary_of(pk), Some(expected.0));
        }
    }

    #[test]
    fn replicas_are_loaded_on_all_their_nodes() {
        let mut data =
            ClusterData::load(5, 3, TableOptions::default(), uniform_partitions(20, 8, 2));
        let pk = PartitionKey::from_id(7);
        let replicas: Vec<u32> = data.replicas_of(&pk).to_vec();
        assert_eq!(replicas.len(), 3);
        for node in replicas {
            let (cells, _) = data.table_mut(node).get(&pk);
            assert_eq!(cells.len(), 8, "replica on node {node} missing data");
        }
        assert_eq!(data.replication_factor(), 3);
    }

    #[test]
    fn reads_come_from_sstables_after_load() {
        let mut data =
            ClusterData::load(2, 1, TableOptions::default(), uniform_partitions(10, 20, 4));
        let pk = PartitionKey::from_id(3);
        let node = data.primary_of(&pk).unwrap();
        let (cells, receipt) = data.table_mut(node).get(&pk);
        assert_eq!(cells.len(), 20);
        assert!(!receipt.memtable_hit, "load() must flush");
        assert_eq!(receipt.sstables_read, 1);
    }

    #[test]
    fn directory_knows_cell_counts() {
        let data = ClusterData::load(
            2,
            1,
            TableOptions::default(),
            vec![
                (PartitionKey::from_id(0), vec![Cell::synthetic(0, 0)]),
                (
                    PartitionKey::from_id(1),
                    (0..5).map(|c| Cell::synthetic(c, 0)).collect(),
                ),
            ],
        );
        assert_eq!(data.cells_of(&PartitionKey::from_id(0)), 1);
        assert_eq!(data.cells_of(&PartitionKey::from_id(1)), 5);
        assert_eq!(data.cells_of(&PartitionKey::from_id(9)), 0);
        assert!(data.replicas_of(&PartitionKey::from_id(9)).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterData::load(0, 1, TableOptions::default(), Vec::new());
    }
}
