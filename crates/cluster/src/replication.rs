//! Deterministic, seeded mirror of the replicated write path.
//!
//! `kvs-net`'s write coordinator (`crates/net/src/write_path.rs`) fans a
//! write out to the replica set, acks at a per-request consistency level
//! (ONE/QUORUM/ALL), read-repairs divergent read responses, and buffers
//! hinted handoff for suspected-dead replicas. This module replays the
//! same mechanism as a pure function of its inputs — no clocks, no
//! ambient RNG (KVS-L001 deterministic zone) — so chaos measurements over
//! real sockets can be cross-validated against a replayable prediction,
//! exactly like `sim::run_query` does for the read path.
//!
//! The PCAP framing (Rahman et al., PAPERS.md) drives the outcome shape:
//! per consistency level we report latency samples *and* the staleness
//! fraction — the probability that a read misses the newest acknowledged
//! write — as a function of replication factor and fault rate.
//!
//! Time is simulated milliseconds. Per-leg latency is resampled from an
//! empirical sample set (typically harvested from a healthy passthrough
//! socket run), so the sim inherits the measured baseline distribution
//! and only the fault schedule and replication mechanics are modelled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-request consistency level: how many replica acknowledgements a
/// write (or read responses a read) needs before the coordinator answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// One replica suffices — fastest, weakest.
    One,
    /// A majority of the replica set (`rf/2 + 1`).
    Quorum,
    /// Every replica — slowest, strongest.
    All,
}

impl Consistency {
    /// Acknowledgements required at replication factor `rf`.
    pub fn required(self, rf: usize) -> usize {
        match self {
            Consistency::One => 1,
            Consistency::Quorum => rf / 2 + 1,
            Consistency::All => rf,
        }
        .min(rf.max(1))
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Consistency::One => "one",
            Consistency::Quorum => "quorum",
            Consistency::All => "all",
        }
    }
}

/// A replica that is dark for a window of simulated time: legs sent to it
/// inside the window are hinted, and the hints replay when it returns.
#[derive(Debug, Clone)]
pub struct FaultWindow {
    /// The dark node.
    pub node: usize,
    /// Window start, inclusive (ms).
    pub from_ms: f64,
    /// Window end, exclusive (ms); hints replay at this instant.
    pub until_ms: f64,
}

/// Random per-leg extra delay, the sim twin of a chaos `delay` rule.
#[derive(Debug, Clone, Copy)]
pub struct DelayFault {
    /// Probability a leg is delayed.
    pub probability: f64,
    /// The extra latency a delayed leg pays (ms).
    pub extra_ms: f64,
}

/// Configuration for one replicated-write-path replay.
#[derive(Debug, Clone)]
pub struct ReplicationSimConfig {
    /// Cluster size.
    pub nodes: usize,
    /// Replication factor (each partition lives on `rf` nodes).
    pub rf: usize,
    /// Seed for every random draw in the replay.
    pub seed: u64,
    /// Empirical one-leg round-trip samples (ms), resampled per leg.
    pub leg_latency_ms: Vec<f64>,
    /// Optional random delay fault applied to every leg.
    pub delay: Option<DelayFault>,
    /// Dark-replica windows (hinted handoff exercises).
    pub down: Vec<FaultWindow>,
    /// Bound on each node's hint queue; overflow drops the hint (and the
    /// dropped write can be lost on that replica — the metric shows it).
    pub hint_queue_cap: usize,
}

/// One operation in the replay schedule.
#[derive(Debug, Clone)]
pub struct SimOp {
    /// Issue time (ms).
    pub at_ms: f64,
    /// Partition id; replicas are `(id % nodes) + k` for `k < rf`.
    pub partition: u64,
    /// Read, write, or read-modify-write.
    pub kind: SimOpKind,
    /// The consistency level this operation runs at.
    pub consistency: Consistency,
}

/// The operation kinds the write path distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOpKind {
    /// Quorum read with staleness accounting.
    Read,
    /// LWW write.
    Write,
    /// Read pre-image, then write — one coordinator op, two leg rounds.
    Rmw,
}

/// Counters and samples from one replay; mirrors the socket coordinator's
/// `MixedOutcome` so the drill can diff the two worlds field by field.
#[derive(Debug, Clone, Default)]
pub struct ReplicationOutcome {
    /// Per-completed-op latency (ms), write ops only.
    pub write_latency_ms: Vec<f64>,
    /// Per-completed-op latency (ms), read + RMW ops.
    pub read_latency_ms: Vec<f64>,
    /// Completed reads.
    pub reads: u64,
    /// Reads whose observed version trailed the newest acked write.
    pub stale_reads: u64,
    /// Writes that reached their consistency level.
    pub writes_acked: u64,
    /// Writes that could not reach their consistency level.
    pub writes_failed: u64,
    /// Hints buffered for dark replicas.
    pub hints_queued: u64,
    /// Hints dropped at the queue bound.
    pub hints_dropped: u64,
    /// Hints replayed when their replica returned.
    pub hints_replayed: u64,
    /// Reads whose replica responses disagreed on version.
    pub divergent_reads: u64,
    /// Repair writes the coordinator issued for divergent reads.
    pub read_repairs: u64,
    /// Acked writes missing from every replica at the end of the replay —
    /// the invariant the hinted-handoff machinery exists to keep at zero.
    pub lost_acked_writes: u64,
}

/// Per-replica applied state: (partition, version applied, time applied).
type Applied = Vec<(u64, u64, f64)>;

struct Replay<'a> {
    cfg: &'a ReplicationSimConfig,
    rng: StdRng,
    /// What each node has durably applied.
    applied: Vec<Applied>,
    /// Hints per node: (partition, version).
    hints: Vec<Vec<(u64, u64)>>,
    /// Acked writes: (partition, version, coordinator ack time).
    acked: Vec<(u64, u64, f64)>,
    out: ReplicationOutcome,
}

impl Replay<'_> {
    fn replicas(&self, partition: u64) -> Vec<usize> {
        let n = self.cfg.nodes.max(1);
        let rf = self.cfg.rf.clamp(1, n);
        (0..rf).map(|k| ((partition as usize) + k) % n).collect()
    }

    fn is_down(&self, node: usize, at_ms: f64) -> bool {
        self.cfg
            .down
            .iter()
            .any(|w| w.node == node && at_ms >= w.from_ms && at_ms < w.until_ms)
    }

    fn leg_ms(&mut self) -> f64 {
        let samples = &self.cfg.leg_latency_ms;
        let base = if samples.is_empty() {
            1.0
        } else {
            samples[self.rng.gen_range(0..samples.len())]
        };
        let extra = match self.cfg.delay {
            Some(d) if self.rng.gen_bool(d.probability.clamp(0.0, 1.0)) => d.extra_ms,
            _ => 0.0,
        };
        base + extra
    }

    /// Records that `node` applied `version` of `partition` at `at_ms`.
    /// The log is append-only: [`Replay::version_at`] filters by probe
    /// time, so an older-but-already-visible version must stay on record
    /// while a newer write is still in flight. LWW (strictly newer wins,
    /// ties keep the incumbent — idempotent hint replay) falls out of
    /// taking the max over visible entries.
    fn apply(&mut self, node: usize, partition: u64, version: u64, at_ms: f64) {
        self.applied[node].push((partition, version, at_ms));
    }

    /// The version `node` would report for `partition` if asked at `at_ms`
    /// (only writes applied strictly before the probe are visible).
    fn version_at(&self, node: usize, partition: u64, at_ms: f64) -> u64 {
        self.applied[node]
            .iter()
            .filter(|(p, _, t)| *p == partition && *t <= at_ms)
            .map(|(_, v, _)| *v)
            .max()
            .unwrap_or(0)
    }

    /// Newest version acked by the coordinator before `at_ms`.
    fn latest_acked(&self, partition: u64, at_ms: f64) -> u64 {
        self.acked
            .iter()
            .filter(|(p, _, t)| *p == partition && *t <= at_ms)
            .map(|(_, v, _)| *v)
            .max()
            .unwrap_or(0)
    }

    fn hint(&mut self, node: usize, partition: u64, version: u64) {
        if self.hints[node].len() >= self.cfg.hint_queue_cap {
            self.out.hints_dropped += 1;
        } else {
            self.hints[node].push((partition, version));
            self.out.hints_queued += 1;
        }
    }

    /// One write round: fan out, hint dark replicas, return the
    /// completion time if `need` acks arrived, else `None`.
    fn write_round(
        &mut self,
        partition: u64,
        version: u64,
        at_ms: f64,
        need: usize,
    ) -> Option<f64> {
        let mut ack_times = Vec::new();
        for node in self.replicas(partition) {
            if self.is_down(node, at_ms) {
                self.hint(node, partition, version);
                continue;
            }
            let leg = self.leg_ms();
            // The replica applies mid-flight and the ack completes the
            // round trip — same halving the stage decomposition uses.
            self.apply(node, partition, version, at_ms + leg / 2.0);
            ack_times.push(at_ms + leg);
        }
        ack_times.sort_by(f64::total_cmp);
        let done = *ack_times.get(need.saturating_sub(1))?;
        self.acked.push((partition, version, done));
        Some(done)
    }

    /// One read round at `need` replicas: returns (completion time,
    /// observed max version) or `None` when too few replicas are up.
    fn read_round(&mut self, partition: u64, at_ms: f64, need: usize) -> Option<(f64, u64)> {
        let live: Vec<usize> = self
            .replicas(partition)
            .into_iter()
            .filter(|&n| !self.is_down(n, at_ms))
            .collect();
        if live.len() < need {
            return None;
        }
        let mut done = at_ms;
        let mut versions = Vec::new();
        for &node in live.iter().take(need) {
            let leg = self.leg_ms();
            versions.push((node, self.version_at(node, partition, at_ms + leg / 2.0)));
            done = done.max(at_ms + leg);
        }
        let max_v = versions.iter().map(|(_, v)| *v).max().unwrap_or(0);
        let min_v = versions.iter().map(|(_, v)| *v).min().unwrap_or(0);
        if max_v != min_v {
            self.out.divergent_reads += 1;
            // Read repair: the coordinator rewrites the winning version to
            // every stale replica it just heard from.
            for (node, v) in versions {
                if v < max_v {
                    self.out.read_repairs += 1;
                    let leg = self.leg_ms();
                    self.apply(node, partition, max_v, done + leg / 2.0);
                }
            }
        }
        Some((done, max_v))
    }

    /// Replays hints whose fault windows closed at or before `at_ms`.
    fn replay_due_hints(&mut self, at_ms: f64) {
        for w in self.cfg.down.clone() {
            if w.until_ms > at_ms {
                continue;
            }
            let due = std::mem::take(&mut self.hints[w.node]);
            for (partition, version) in due {
                let leg = self.leg_ms();
                self.apply(w.node, partition, version, w.until_ms + leg / 2.0);
                self.out.hints_replayed += 1;
            }
        }
    }
}

/// Replays an operation schedule through the simulated write path.
/// `ops` must be sorted by `at_ms`; versions are assigned in issue order,
/// mirroring the coordinator's monotone wall-clock timestamps.
pub fn run_replicated(cfg: &ReplicationSimConfig, ops: &[SimOp]) -> ReplicationOutcome {
    let mut r = Replay {
        cfg,
        rng: StdRng::seed_from_u64(cfg.seed ^ 0x5EED_4E90),
        applied: vec![Vec::new(); cfg.nodes.max(1)],
        hints: vec![Vec::new(); cfg.nodes.max(1)],
        acked: Vec::new(),
        out: ReplicationOutcome::default(),
    };
    let rf = cfg.rf.clamp(1, cfg.nodes.max(1));
    for (ix, op) in ops.iter().enumerate() {
        r.replay_due_hints(op.at_ms);
        let need = op.consistency.required(rf);
        let version = ix as u64 + 1;
        match op.kind {
            SimOpKind::Write => match r.write_round(op.partition, version, op.at_ms, need) {
                Some(done) => {
                    r.out.writes_acked += 1;
                    r.out.write_latency_ms.push(done - op.at_ms);
                }
                None => r.out.writes_failed += 1,
            },
            SimOpKind::Read => {
                if let Some((done, observed)) = r.read_round(op.partition, op.at_ms, need) {
                    r.out.reads += 1;
                    if observed < r.latest_acked(op.partition, op.at_ms) {
                        r.out.stale_reads += 1;
                    }
                    r.out.read_latency_ms.push(done - op.at_ms);
                }
            }
            SimOpKind::Rmw => {
                // Sequential read-then-write; the pre-image read runs at
                // the same consistency level as the write leg.
                if let Some((mid, _)) = r.read_round(op.partition, op.at_ms, need) {
                    match r.write_round(op.partition, version, mid, need) {
                        Some(done) => {
                            r.out.writes_acked += 1;
                            r.out.read_latency_ms.push(done - op.at_ms);
                        }
                        None => r.out.writes_failed += 1,
                    }
                }
            }
        }
    }
    // Close out every fault window, then audit acked-write durability.
    r.replay_due_hints(f64::INFINITY);
    let acked = r.acked.clone();
    for (partition, version, _) in acked {
        let held = r
            .replicas(partition)
            .into_iter()
            .any(|n| r.version_at(n, partition, f64::INFINITY) >= version);
        if !held {
            r.out.lost_acked_writes += 1;
        }
    }
    r.out
}

/// Convenience: the newest version a `(partition, version)` sample set
/// holds for `partition` — used by tests comparing sim and socket worlds.
pub fn final_version(outcome_versions: &[(u64, u64)], partition: u64) -> u64 {
    outcome_versions
        .iter()
        .filter(|(p, _)| *p == partition)
        .map(|(_, v)| *v)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ReplicationSimConfig {
        ReplicationSimConfig {
            nodes: 3,
            rf: 3,
            seed: 7,
            leg_latency_ms: vec![1.0, 1.2, 1.5, 2.0],
            delay: None,
            down: Vec::new(),
            hint_queue_cap: 64,
        }
    }

    fn write(at_ms: f64, partition: u64, consistency: Consistency) -> SimOp {
        SimOp {
            at_ms,
            partition,
            kind: SimOpKind::Write,
            consistency,
        }
    }

    fn read(at_ms: f64, partition: u64, consistency: Consistency) -> SimOp {
        SimOp {
            at_ms,
            partition,
            kind: SimOpKind::Read,
            consistency,
        }
    }

    #[test]
    fn required_acks_per_level() {
        assert_eq!(Consistency::One.required(3), 1);
        assert_eq!(Consistency::Quorum.required(3), 2);
        assert_eq!(Consistency::Quorum.required(2), 2);
        assert_eq!(Consistency::All.required(3), 3);
        assert_eq!(Consistency::All.required(1), 1);
    }

    #[test]
    fn same_seed_replays_identically() {
        let cfg = ReplicationSimConfig {
            delay: Some(DelayFault {
                probability: 0.2,
                extra_ms: 20.0,
            }),
            ..base_cfg()
        };
        let ops: Vec<SimOp> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    read(i as f64, (i % 16) as u64, Consistency::Quorum)
                } else {
                    write(i as f64, (i % 16) as u64, Consistency::Quorum)
                }
            })
            .collect();
        let a = run_replicated(&cfg, &ops);
        let b = run_replicated(&cfg, &ops);
        assert_eq!(a.write_latency_ms, b.write_latency_ms);
        assert_eq!(a.stale_reads, b.stale_reads);
    }

    #[test]
    fn quorum_overlap_is_never_stale() {
        // R + W > N: a quorum read always intersects the last quorum
        // write, so staleness must be exactly zero without faults.
        let mut ops = Vec::new();
        for i in 0..100 {
            ops.push(write(i as f64 * 10.0, (i % 8) as u64, Consistency::Quorum));
            ops.push(read(
                i as f64 * 10.0 + 5.0,
                (i % 8) as u64,
                Consistency::Quorum,
            ));
        }
        let out = run_replicated(&base_cfg(), &ops);
        assert_eq!(out.stale_reads, 0, "{out:?}");
        assert_eq!(out.writes_failed, 0);
        assert_eq!(out.lost_acked_writes, 0);
    }

    #[test]
    fn one_reads_can_be_stale_under_delay() {
        let cfg = ReplicationSimConfig {
            delay: Some(DelayFault {
                probability: 0.3,
                extra_ms: 50.0,
            }),
            ..base_cfg()
        };
        let mut ops = Vec::new();
        for i in 0..300 {
            ops.push(write(i as f64 * 4.0, (i % 4) as u64, Consistency::One));
            // Read shortly after the write completes at ONE: lagging
            // replicas may not have applied yet.
            ops.push(read(i as f64 * 4.0 + 2.0, (i % 4) as u64, Consistency::One));
        }
        let out = run_replicated(&cfg, &ops);
        assert!(out.stale_reads > 0, "{out:?}");
    }

    #[test]
    fn dark_replica_hints_queue_and_replay() {
        let cfg = ReplicationSimConfig {
            down: vec![FaultWindow {
                node: 2,
                from_ms: 0.0,
                until_ms: 500.0,
            }],
            ..base_cfg()
        };
        let ops: Vec<SimOp> = (0..50)
            .map(|i| write(i as f64, 1, Consistency::Quorum))
            .collect();
        let out = run_replicated(&cfg, &ops);
        // Partition 1 at rf=3/n=3 includes node 2: every write hints it.
        assert_eq!(out.hints_queued, 50, "{out:?}");
        assert_eq!(out.hints_replayed, 50);
        assert_eq!(out.writes_acked, 50);
        assert_eq!(out.lost_acked_writes, 0);
    }

    #[test]
    fn hint_queue_bound_drops_overflow() {
        let cfg = ReplicationSimConfig {
            hint_queue_cap: 10,
            down: vec![FaultWindow {
                node: 2,
                from_ms: 0.0,
                until_ms: 500.0,
            }],
            ..base_cfg()
        };
        let ops: Vec<SimOp> = (0..50)
            .map(|i| write(i as f64, 1, Consistency::Quorum))
            .collect();
        let out = run_replicated(&cfg, &ops);
        assert_eq!(out.hints_queued, 10);
        assert_eq!(out.hints_dropped, 40);
        // QUORUM still acked through the two live replicas, so nothing
        // acknowledged is lost even though hints overflowed.
        assert_eq!(out.lost_acked_writes, 0);
    }

    #[test]
    fn all_writes_fail_when_a_replica_is_dark() {
        let cfg = ReplicationSimConfig {
            down: vec![FaultWindow {
                node: 2,
                from_ms: 0.0,
                until_ms: 500.0,
            }],
            ..base_cfg()
        };
        let ops: Vec<SimOp> = (0..10)
            .map(|i| write(i as f64, 1, Consistency::All))
            .collect();
        let out = run_replicated(&cfg, &ops);
        assert_eq!(out.writes_acked, 0);
        assert_eq!(out.writes_failed, 10);
    }

    #[test]
    fn divergence_triggers_read_repair() {
        let cfg = ReplicationSimConfig {
            delay: Some(DelayFault {
                probability: 0.5,
                extra_ms: 100.0,
            }),
            ..base_cfg()
        };
        let mut ops = Vec::new();
        for i in 0..200 {
            ops.push(write(i as f64 * 3.0, 1, Consistency::One));
            ops.push(read(i as f64 * 3.0 + 1.0, 1, Consistency::Quorum));
        }
        let out = run_replicated(&cfg, &ops);
        assert!(out.divergent_reads > 0, "{out:?}");
        assert!(out.read_repairs >= out.divergent_reads);
    }

    #[test]
    fn rmw_costs_two_rounds() {
        let cfg = base_cfg();
        let writes: Vec<SimOp> = (0..100)
            .map(|i| write(i as f64 * 10.0, 1, Consistency::All))
            .collect();
        let rmws: Vec<SimOp> = (0..100)
            .map(|i| SimOp {
                kind: SimOpKind::Rmw,
                ..write(i as f64 * 10.0, 1, Consistency::All)
            })
            .collect();
        let w = run_replicated(&cfg, &writes);
        let r = run_replicated(&cfg, &rmws);
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&r.read_latency_ms) > 1.5 * mean(&w.write_latency_ms),
            "RMW should pay roughly two leg rounds: {} vs {}",
            mean(&r.read_latency_ms),
            mean(&w.write_latency_ms)
        );
    }
}
