//! Message serialization: the optimization that turned Figure 1 into
//! Figure 5.
//!
//! The paper's prototype originally used the JVM's default serialization —
//! "it allows serializing at runtime any object, at the cost of adding
//! extra meta-data into each object's byte representation" — and measured
//! ≈ 150 µs of master CPU per message, 7.5 MB for 15 000 packets. Switching
//! to Kryo (explicit class registration, compact varints) brought this to
//! ≈ 19 µs per message and ≈ 900 KB total (§V-B).
//!
//! Both codecs here are *real*: they produce and parse actual bytes.
//! [`CodecKind::Verbose`] embeds class-name and field-name metadata in every
//! message like Java's `ObjectOutputStream`; [`CodecKind::Compact`] writes a
//! registered one-byte class id and varint fields like Kryo. The CPU cost
//! of encoding on the paper's hardware is *modelled* (we are not running a
//! 2010 JVM), with the paper's measured per-message constants — and, so
//! that *live* runs (`cluster::live`, `kvs-net`) also observe the gap, the
//! verbose paths additionally perform the real per-message work the paper
//! attributes to that stack: field-by-field debug-log formatting and a
//! redundant integrity pass over every message (`verbose_stack_overhead`
//! below).

use crate::messages::{QueryRequest, QueryResponse, WriteAck, WriteRequest};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use kvs_store::{Cell, PartitionKey};
use std::collections::BTreeMap;

/// Which serialization strategy a cluster uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// Java-default-like: self-describing, metadata-heavy, slow.
    Verbose,
    /// Kryo-like: registered classes, varints, fast.
    Compact,
}

/// A message codec with a CPU cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Codec {
    /// The wire strategy.
    pub kind: CodecKind,
    /// Modelled master CPU to serialize + dispatch one request, µs
    /// (the paper's 150 µs → 19 µs).
    pub tx_cpu_us: f64,
    /// Modelled master CPU to receive + deserialize one response, µs.
    pub rx_cpu_us: f64,
}

impl Codec {
    /// The paper's original configuration (§V-B): JVM default
    /// serialization at ≈ 150 µs per message.
    pub fn verbose() -> Self {
        Codec {
            kind: CodecKind::Verbose,
            tx_cpu_us: 150.0,
            rx_cpu_us: 30.0,
        }
    }

    /// The paper's optimized configuration: Kryo + logging/integrity-check
    /// reductions, ≈ 19 µs per message.
    pub fn compact() -> Self {
        Codec {
            kind: CodecKind::Compact,
            tx_cpu_us: 19.0,
            rx_cpu_us: 6.0,
        }
    }

    /// Encodes a request to wire bytes.
    pub fn encode_request(&self, req: &QueryRequest) -> Bytes {
        let mut buf = BytesMut::new();
        match self.kind {
            CodecKind::Verbose => {
                put_str(&mut buf, "org.kvscale.proto.QueryRequest");
                put_str(&mut buf, "serialVersionUID");
                buf.put_u64(0x1CE1_CE1C_E1CE_1CE1);
                put_str(&mut buf, "requestId");
                buf.put_u64(req.request_id);
                put_str(&mut buf, "partition");
                put_bytes_field(&mut buf, req.partition.as_bytes());
                verbose_stack_overhead(&buf, "tx-req");
            }
            CodecKind::Compact => {
                buf.put_u8(CLASS_REQUEST);
                put_varint(&mut buf, req.request_id);
                put_varint(&mut buf, req.partition.len() as u64);
                buf.put_slice(req.partition.as_bytes());
            }
        }
        buf.freeze()
    }

    /// Decodes a request; `None` on malformed input.
    pub fn decode_request(&self, mut bytes: Bytes) -> Option<QueryRequest> {
        match self.kind {
            CodecKind::Verbose => {
                verbose_stack_overhead(&bytes, "rx-req");
                expect_str(&mut bytes, "org.kvscale.proto.QueryRequest")?;
                expect_str(&mut bytes, "serialVersionUID")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                bytes.get_u64();
                expect_str(&mut bytes, "requestId")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                let request_id = bytes.get_u64();
                expect_str(&mut bytes, "partition")?;
                let pk = get_bytes_field(&mut bytes)?;
                Some(QueryRequest {
                    request_id,
                    partition: PartitionKey::new(pk),
                })
            }
            CodecKind::Compact => {
                if bytes.remaining() < 1 || bytes.get_u8() != CLASS_REQUEST {
                    return None;
                }
                let request_id = get_varint(&mut bytes)?;
                let len = get_varint(&mut bytes)? as usize;
                if bytes.remaining() < len {
                    return None;
                }
                let pk = bytes.split_to(len).to_vec();
                Some(QueryRequest {
                    request_id,
                    partition: PartitionKey::new(pk),
                })
            }
        }
    }

    /// Encodes a response to wire bytes.
    pub fn encode_response(&self, resp: &QueryResponse) -> Bytes {
        let mut buf = BytesMut::new();
        match self.kind {
            CodecKind::Verbose => {
                put_str(&mut buf, "org.kvscale.proto.QueryResponse");
                put_str(&mut buf, "serialVersionUID");
                buf.put_u64(0x2CE2_CE2C_E2CE_2CE2);
                put_str(&mut buf, "requestId");
                buf.put_u64(resp.request_id);
                put_str(&mut buf, "cells");
                buf.put_u64(resp.cells);
                put_str(&mut buf, "counts");
                put_str(&mut buf, "java.util.TreeMap");
                buf.put_u32(resp.counts.len() as u32);
                for (&kind, &count) in &resp.counts {
                    put_str(&mut buf, "java.lang.Byte");
                    buf.put_u8(kind);
                    put_str(&mut buf, "java.lang.Long");
                    buf.put_u64(count);
                }
                put_str(&mut buf, "version");
                buf.put_u64(resp.version);
                verbose_stack_overhead(&buf, "tx-resp");
            }
            CodecKind::Compact => {
                buf.put_u8(CLASS_RESPONSE);
                put_varint(&mut buf, resp.request_id);
                put_varint(&mut buf, resp.cells);
                put_varint(&mut buf, resp.counts.len() as u64);
                for (&kind, &count) in &resp.counts {
                    buf.put_u8(kind);
                    put_varint(&mut buf, count);
                }
                put_varint(&mut buf, resp.version);
            }
        }
        buf.freeze()
    }

    /// Decodes a response; `None` on malformed input.
    pub fn decode_response(&self, mut bytes: Bytes) -> Option<QueryResponse> {
        match self.kind {
            CodecKind::Verbose => {
                verbose_stack_overhead(&bytes, "rx-resp");
                expect_str(&mut bytes, "org.kvscale.proto.QueryResponse")?;
                expect_str(&mut bytes, "serialVersionUID")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                bytes.get_u64();
                expect_str(&mut bytes, "requestId")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                let request_id = bytes.get_u64();
                expect_str(&mut bytes, "cells")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                let cells = bytes.get_u64();
                expect_str(&mut bytes, "counts")?;
                expect_str(&mut bytes, "java.util.TreeMap")?;
                if bytes.remaining() < 4 {
                    return None;
                }
                let n = bytes.get_u32() as usize;
                let mut counts = BTreeMap::new();
                for _ in 0..n {
                    expect_str(&mut bytes, "java.lang.Byte")?;
                    if bytes.remaining() < 1 {
                        return None;
                    }
                    let kind = bytes.get_u8();
                    expect_str(&mut bytes, "java.lang.Long")?;
                    if bytes.remaining() < 8 {
                        return None;
                    }
                    counts.insert(kind, bytes.get_u64());
                }
                expect_str(&mut bytes, "version")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                let version = bytes.get_u64();
                Some(QueryResponse {
                    request_id,
                    counts,
                    cells,
                    version,
                })
            }
            CodecKind::Compact => {
                if bytes.remaining() < 1 || bytes.get_u8() != CLASS_RESPONSE {
                    return None;
                }
                let request_id = get_varint(&mut bytes)?;
                let cells = get_varint(&mut bytes)?;
                let n = get_varint(&mut bytes)? as usize;
                let mut counts = BTreeMap::new();
                for _ in 0..n {
                    if bytes.remaining() < 1 {
                        return None;
                    }
                    let kind = bytes.get_u8();
                    counts.insert(kind, get_varint(&mut bytes)?);
                }
                let version = get_varint(&mut bytes)?;
                Some(QueryResponse {
                    request_id,
                    counts,
                    cells,
                    version,
                })
            }
        }
    }

    /// Encodes a write request (also the RMW body) to wire bytes.
    pub fn encode_write(&self, req: &WriteRequest) -> Bytes {
        let mut buf = BytesMut::new();
        match self.kind {
            CodecKind::Verbose => {
                put_str(&mut buf, "org.kvscale.proto.WriteRequest");
                put_str(&mut buf, "serialVersionUID");
                buf.put_u64(0x3CE3_CE3C_E3CE_3CE3);
                put_str(&mut buf, "requestId");
                buf.put_u64(req.request_id);
                put_str(&mut buf, "partition");
                put_bytes_field(&mut buf, req.partition.as_bytes());
                put_str(&mut buf, "timestamp");
                buf.put_u64(req.timestamp);
                put_str(&mut buf, "cells");
                put_str(&mut buf, "java.util.ArrayList");
                buf.put_u32(req.cells.len() as u32);
                for cell in &req.cells {
                    put_str(&mut buf, "org.kvscale.proto.Cell");
                    buf.put_u64(cell.clustering);
                    buf.put_u8(cell.kind);
                    put_bytes_field(&mut buf, &cell.payload);
                }
                verbose_stack_overhead(&buf, "tx-write");
            }
            CodecKind::Compact => {
                buf.put_u8(CLASS_WRITE);
                put_varint(&mut buf, req.request_id);
                put_varint(&mut buf, req.partition.len() as u64);
                buf.put_slice(req.partition.as_bytes());
                put_varint(&mut buf, req.timestamp);
                put_varint(&mut buf, req.cells.len() as u64);
                for cell in &req.cells {
                    put_varint(&mut buf, cell.clustering);
                    buf.put_u8(cell.kind);
                    put_varint(&mut buf, cell.payload.len() as u64);
                    buf.put_slice(&cell.payload);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a write request; `None` on malformed input.
    pub fn decode_write(&self, mut bytes: Bytes) -> Option<WriteRequest> {
        match self.kind {
            CodecKind::Verbose => {
                verbose_stack_overhead(&bytes, "rx-write");
                expect_str(&mut bytes, "org.kvscale.proto.WriteRequest")?;
                expect_str(&mut bytes, "serialVersionUID")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                bytes.get_u64();
                expect_str(&mut bytes, "requestId")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                let request_id = bytes.get_u64();
                expect_str(&mut bytes, "partition")?;
                let pk = get_bytes_field(&mut bytes)?;
                expect_str(&mut bytes, "timestamp")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                let timestamp = bytes.get_u64();
                expect_str(&mut bytes, "cells")?;
                expect_str(&mut bytes, "java.util.ArrayList")?;
                if bytes.remaining() < 4 {
                    return None;
                }
                let n = bytes.get_u32() as usize;
                let mut cells = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    expect_str(&mut bytes, "org.kvscale.proto.Cell")?;
                    if bytes.remaining() < 9 {
                        return None;
                    }
                    let clustering = bytes.get_u64();
                    let kind = bytes.get_u8();
                    let payload = get_bytes_field(&mut bytes)?;
                    cells.push(Cell::new(clustering, kind, payload));
                }
                Some(WriteRequest {
                    request_id,
                    partition: PartitionKey::new(pk),
                    timestamp,
                    cells,
                })
            }
            CodecKind::Compact => {
                if bytes.remaining() < 1 || bytes.get_u8() != CLASS_WRITE {
                    return None;
                }
                let request_id = get_varint(&mut bytes)?;
                let len = get_varint(&mut bytes)? as usize;
                if bytes.remaining() < len {
                    return None;
                }
                let pk = bytes.split_to(len).to_vec();
                let timestamp = get_varint(&mut bytes)?;
                let n = get_varint(&mut bytes)? as usize;
                let mut cells = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let clustering = get_varint(&mut bytes)?;
                    if bytes.remaining() < 1 {
                        return None;
                    }
                    let kind = bytes.get_u8();
                    let plen = get_varint(&mut bytes)? as usize;
                    if bytes.remaining() < plen {
                        return None;
                    }
                    let payload = bytes.split_to(plen);
                    cells.push(Cell::new(clustering, kind, payload));
                }
                Some(WriteRequest {
                    request_id,
                    partition: PartitionKey::new(pk),
                    timestamp,
                    cells,
                })
            }
        }
    }

    /// Encodes a write acknowledgement to wire bytes.
    pub fn encode_write_ack(&self, ack: &WriteAck) -> Bytes {
        let mut buf = BytesMut::new();
        match self.kind {
            CodecKind::Verbose => {
                put_str(&mut buf, "org.kvscale.proto.WriteAck");
                put_str(&mut buf, "serialVersionUID");
                buf.put_u64(0x4CE4_CE4C_E4CE_4CE4);
                put_str(&mut buf, "requestId");
                buf.put_u64(ack.request_id);
                put_str(&mut buf, "applied");
                buf.put_u8(ack.applied as u8);
                put_str(&mut buf, "version");
                buf.put_u64(ack.version);
                verbose_stack_overhead(&buf, "tx-ack");
            }
            CodecKind::Compact => {
                buf.put_u8(CLASS_WRITE_ACK);
                put_varint(&mut buf, ack.request_id);
                buf.put_u8(ack.applied as u8);
                put_varint(&mut buf, ack.version);
            }
        }
        buf.freeze()
    }

    /// Decodes a write acknowledgement; `None` on malformed input.
    pub fn decode_write_ack(&self, mut bytes: Bytes) -> Option<WriteAck> {
        match self.kind {
            CodecKind::Verbose => {
                verbose_stack_overhead(&bytes, "rx-ack");
                expect_str(&mut bytes, "org.kvscale.proto.WriteAck")?;
                expect_str(&mut bytes, "serialVersionUID")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                bytes.get_u64();
                expect_str(&mut bytes, "requestId")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                let request_id = bytes.get_u64();
                expect_str(&mut bytes, "applied")?;
                if bytes.remaining() < 1 {
                    return None;
                }
                let applied = bytes.get_u8() != 0;
                expect_str(&mut bytes, "version")?;
                if bytes.remaining() < 8 {
                    return None;
                }
                let version = bytes.get_u64();
                Some(WriteAck {
                    request_id,
                    applied,
                    version,
                })
            }
            CodecKind::Compact => {
                if bytes.remaining() < 1 || bytes.get_u8() != CLASS_WRITE_ACK {
                    return None;
                }
                let request_id = get_varint(&mut bytes)?;
                if bytes.remaining() < 1 {
                    return None;
                }
                let applied = bytes.get_u8() != 0;
                let version = get_varint(&mut bytes)?;
                Some(WriteAck {
                    request_id,
                    applied,
                    version,
                })
            }
        }
    }
}

const CLASS_REQUEST: u8 = 0x01;
const CLASS_RESPONSE: u8 = 0x02;
const CLASS_WRITE: u8 = 0x03;
const CLASS_WRITE_ACK: u8 = 0x04;

/// How many per-message passes the verbose stack makes over each message:
/// serializer field logging, transport trace logging, an integrity
/// checksum on send, and a redundant re-verification (§V-B blames exactly
/// this combination — "logging messages" and "integrity checks" — for the
/// 150 µs verbose cost).
const VERBOSE_STACK_PASSES: usize = 4;

/// The real per-message CPU work of the paper's verbose stack, performed
/// so that live and socket-path runs *measure* a higher `t_msg` for
/// [`CodecKind::Verbose`] instead of merely modelling one: each pass
/// formats a field-by-field debug-log record (log4j-style) and folds every
/// byte into an FNV integrity checksum. The output is kept out of the wire
/// format — only the CPU cost is observable.
fn verbose_stack_overhead(payload: &[u8], op: &str) {
    use std::fmt::Write as _;
    for pass in 0..VERBOSE_STACK_PASSES {
        let mut log = String::with_capacity(payload.len() * 3 + 64);
        let mut check: u64 = 0xcbf2_9ce4_8422_2325;
        for (i, chunk) in payload.chunks(8).enumerate() {
            let mut word = 0u64;
            for &b in chunk {
                word = (word << 8) | b as u64;
                check = (check ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            let _ = write!(log, "{op} pass={pass} field[{i}]={word:016x} ");
        }
        std::hint::black_box((log, check));
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn expect_str(bytes: &mut Bytes, expected: &str) -> Option<()> {
    if bytes.remaining() < 2 {
        return None;
    }
    let len = bytes.get_u16() as usize;
    if bytes.remaining() < len {
        return None;
    }
    let s = bytes.split_to(len);
    (s.as_ref() == expected.as_bytes()).then_some(())
}

fn put_bytes_field(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes_field(bytes: &mut Bytes) -> Option<Vec<u8>> {
    if bytes.remaining() < 4 {
        return None;
    }
    let len = bytes.get_u32() as usize;
    if bytes.remaining() < len {
        return None;
    }
    Some(bytes.split_to(len).to_vec())
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(bytes: &mut Bytes) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if bytes.remaining() < 1 {
            return None;
        }
        let byte = bytes.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> QueryRequest {
        QueryRequest {
            request_id: 123_456,
            partition: PartitionKey::from_id(42),
        }
    }

    fn sample_response() -> QueryResponse {
        QueryResponse::from_kinds(123_456, (0..100u32).map(|i| (i % 4) as u8))
    }

    #[test]
    fn both_codecs_roundtrip_requests() {
        for codec in [Codec::verbose(), Codec::compact()] {
            let req = sample_request();
            let bytes = codec.encode_request(&req);
            assert_eq!(
                codec.decode_request(bytes).unwrap(),
                req,
                "{:?}",
                codec.kind
            );
        }
    }

    #[test]
    fn both_codecs_roundtrip_responses() {
        for codec in [Codec::verbose(), Codec::compact()] {
            let resp = sample_response();
            let bytes = codec.encode_response(&resp);
            assert_eq!(
                codec.decode_response(bytes).unwrap(),
                resp,
                "{:?}",
                codec.kind
            );
        }
    }

    #[test]
    fn verbose_messages_are_much_larger() {
        let req = sample_request();
        let v = Codec::verbose().encode_request(&req).len();
        let c = Codec::compact().encode_request(&req).len();
        assert!(
            v as f64 / c as f64 > 4.0,
            "verbose {v} B vs compact {c} B — metadata overhead missing"
        );
        // Sanity against the paper's totals: ~500 B vs ~90 B per message.
        assert!(v > 80, "verbose request only {v} B");
        assert!(c < 30, "compact request {c} B");
    }

    #[test]
    fn paper_cpu_constants() {
        assert_eq!(Codec::verbose().tx_cpu_us, 150.0);
        assert_eq!(Codec::compact().tx_cpu_us, 19.0);
        // "almost one order of magnitude of difference" (§V-B).
        let ratio = Codec::verbose().tx_cpu_us / Codec::compact().tx_cpu_us;
        assert!(ratio > 7.0);
    }

    #[test]
    fn cross_codec_decode_fails_cleanly() {
        let req = sample_request();
        let verbose_bytes = Codec::verbose().encode_request(&req);
        assert!(Codec::compact().decode_request(verbose_bytes).is_none());
        let compact_bytes = Codec::compact().encode_request(&req);
        assert!(Codec::verbose().decode_request(compact_bytes).is_none());
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        for codec in [Codec::verbose(), Codec::compact()] {
            let bytes = codec.encode_response(&sample_response());
            for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    codec.decode_response(bytes.slice(..cut)).is_none(),
                    "{:?} decoded a truncation at {cut}",
                    codec.kind
                );
            }
        }
    }

    #[test]
    fn varint_roundtrip_extremes() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut b = buf.clone().freeze();
            assert_eq!(get_varint(&mut b), Some(v));
        }
    }

    #[test]
    fn empty_response_roundtrips() {
        for codec in [Codec::verbose(), Codec::compact()] {
            let resp = QueryResponse::empty();
            let bytes = codec.encode_response(&resp);
            assert_eq!(codec.decode_response(bytes).unwrap(), resp);
        }
    }

    fn sample_write() -> WriteRequest {
        WriteRequest {
            request_id: 77,
            partition: PartitionKey::from_id(9),
            timestamp: 1_234_567_890,
            cells: vec![Cell::synthetic(0, 1), Cell::synthetic(1, 3)],
        }
    }

    #[test]
    fn both_codecs_roundtrip_writes_and_acks() {
        for codec in [Codec::verbose(), Codec::compact()] {
            let w = sample_write();
            assert_eq!(
                codec.decode_write(codec.encode_write(&w)).unwrap(),
                w,
                "{:?}",
                codec.kind
            );
            let ack = WriteAck {
                request_id: 77,
                applied: true,
                version: 1_234_567_890,
            };
            assert_eq!(
                codec
                    .decode_write_ack(codec.encode_write_ack(&ack))
                    .unwrap(),
                ack,
                "{:?}",
                codec.kind
            );
        }
    }

    #[test]
    fn response_version_survives_both_codecs() {
        for codec in [Codec::verbose(), Codec::compact()] {
            let resp = sample_response().with_version(42);
            let back = codec.decode_response(codec.encode_response(&resp)).unwrap();
            assert_eq!(back.version, 42, "{:?}", codec.kind);
        }
    }

    #[test]
    fn truncated_write_fails_cleanly() {
        for codec in [Codec::verbose(), Codec::compact()] {
            let bytes = codec.encode_write(&sample_write());
            for cut in [0, 1, 5, bytes.len() / 2, bytes.len() - 1] {
                assert!(
                    codec.decode_write(bytes.slice(..cut)).is_none(),
                    "{:?} decoded a truncated write at {cut}",
                    codec.kind
                );
            }
        }
    }

    #[test]
    fn write_and_ack_reject_wrong_class() {
        let codec = Codec::compact();
        let w = codec.encode_write(&sample_write());
        assert!(codec.decode_write_ack(w.clone()).is_none());
        assert!(codec.decode_request(w).is_none());
    }
}
