//! The outcome of one distributed query run.

use kvs_simcore::SimDuration;
use kvs_stages::{RequestTrace, StageReport};
use std::collections::BTreeMap;

/// How much of a query was actually answered. A healthy run answers every
/// sub-query (`answered == total`); a degraded-mode run with dead
/// partitions completes with `answered < total` instead of erroring, and
/// the caller reads the gap here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coverage {
    /// Sub-queries that produced an answer.
    pub answered: u64,
    /// Sub-queries issued.
    pub total: u64,
}

impl Coverage {
    /// Full coverage over `total` sub-queries.
    pub fn complete(total: u64) -> Coverage {
        Coverage {
            answered: total,
            total,
        }
    }

    /// Answered fraction in `[0, 1]` (an empty query counts as complete).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.answered as f64 / self.total as f64
        }
    }

    /// True when every sub-query was answered.
    pub fn is_complete(&self) -> bool {
        self.answered == self.total
    }
}

/// Everything a run produces: correctness output, traces, and the derived
/// quantities the paper's figures plot.
#[derive(Debug)]
pub struct RunResult {
    /// Per-request stage traces (input to Figures 2 and 4).
    pub traces: Vec<RequestTrace>,
    /// First issue → last response processed.
    pub makespan: SimDuration,
    /// The condensed stage report (bottleneck classification included).
    pub report: StageReport,
    /// The aggregation answer: kind → count (correctness check).
    pub counts_by_kind: BTreeMap<u8, u64>,
    /// Total cells aggregated.
    pub total_cells: u64,
    /// Requests sent (== partitions queried).
    pub messages: u64,
    /// Wire bytes master → slaves.
    pub bytes_to_slaves: u64,
    /// Wire bytes slaves → master.
    pub bytes_to_master: u64,
    /// Time the master spent issuing (first send start → last send end).
    pub issue_span: SimDuration,
    /// Failover retries performed (failure-injection runs; 0 when healthy).
    pub failovers: u64,
    /// Answered vs issued sub-queries. Complete except in degraded-mode
    /// runs that lost partitions.
    pub coverage: Coverage,
    /// Request ids of unanswered sub-queries, sorted (empty when
    /// `coverage.is_complete()`).
    pub missed: Vec<u64>,
    /// Hedged (duplicate) requests issued to a second replica; 0 when
    /// hedging is off.
    pub hedges_sent: u64,
    /// Hedged requests whose duplicate answered first.
    pub hedges_won: u64,
    /// Slave work-queue backpressure counters, merged over all nodes.
    /// `None` for the simulator, whose queueing is modelled analytically.
    pub queue: Option<crate::queue::QueueStats>,
}

impl RunResult {
    /// Requests served per node.
    pub fn requests_per_node(&self) -> &BTreeMap<u32, u64> {
        &self.report.requests_per_node
    }

    /// The relative excess of the most loaded node:
    /// `(max requests / mean requests) − 1`.
    pub fn load_excess(&self) -> f64 {
        let per_node = self.requests_per_node();
        if per_node.is_empty() {
            return 0.0;
        }
        let max = per_node.values().copied().max().unwrap_or(0) as f64;
        let mean = per_node.values().sum::<u64>() as f64 / per_node.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean - 1.0
        }
    }

    /// The paper's Figure 1 "balanced" line: the time the query would have
    /// taken had the observed load been spread uniformly — computed, as in
    /// the paper, by scaling the observed time by mean/max node load.
    pub fn balanced_time(&self) -> SimDuration {
        let excess = self.load_excess();
        self.makespan.div_f64(1.0 + excess)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvs_stages::analyze;

    fn result_with_loads(loads: &[(u32, u64)]) -> RunResult {
        let report = {
            let mut r = analyze(&[]);
            r.requests_per_node = loads.iter().copied().collect();
            r
        };
        RunResult {
            traces: Vec::new(),
            makespan: SimDuration::from_millis(300),
            report,
            counts_by_kind: BTreeMap::new(),
            total_cells: 0,
            messages: 0,
            bytes_to_slaves: 0,
            bytes_to_master: 0,
            issue_span: SimDuration::ZERO,
            failovers: 0,
            coverage: Coverage::complete(0),
            missed: Vec::new(),
            hedges_sent: 0,
            hedges_won: 0,
            queue: None,
        }
    }

    #[test]
    fn load_excess_matches_paper_arithmetic() {
        // Figure 2's situation: most loaded node has 10 of 100 keys on 16
        // nodes; mean = 6.25 → excess = 0.6.
        let loads: Vec<(u32, u64)> = (0..16).map(|n| (n, if n == 0 { 10 } else { 6 })).collect();
        let r = result_with_loads(&loads);
        let mean = (10.0 + 15.0 * 6.0) / 16.0;
        assert!((r.load_excess() - (10.0 / mean - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn balanced_time_rescales_by_excess() {
        let r = result_with_loads(&[(0, 20), (1, 10)]);
        // mean 15, max 20 → excess = 1/3 → balanced = 300 / (4/3) = 225 ms.
        assert!((r.balanced_time().as_millis_f64() - 225.0).abs() < 1e-6);
    }

    #[test]
    fn empty_run_is_safe() {
        let r = result_with_loads(&[]);
        assert_eq!(r.load_excess(), 0.0);
        assert_eq!(r.balanced_time(), r.makespan);
    }
}
