//! The live executor: the same master/slave query on real OS threads.
//!
//! Where [`crate::sim`] replays the paper's hardware, this module runs the
//! prototype *for real*: each slave node is a pool of worker threads owning
//! a [`kvs_store::Table`] behind a mutex, bounded work queues
//! ([`crate::queue`]) play the network, and the four methodology stages are
//! measured with wall-clock timestamps. It demonstrates that the methodology (stage tracing →
//! bottleneck classification → model fitting) is not tied to the simulator;
//! the `live_cluster` example and the integration tests drive it.
//!
//! Stage mapping on real hardware:
//! * `master-to-slaves` — request creation (the master knows all keys at
//!   t=0) until the master finished serializing + dispatching it. This is
//!   where a slow codec shows up, exactly as in §V-B.
//! * `in-queue` — dispatch until a slave worker picked the request up.
//! * `in-db` — the actual store read.
//! * `slaves-to-master` — store completion until the master has
//!   deserialized the response.

use crate::codec::Codec;
use crate::data::ClusterData;
use crate::messages::{QueryRequest, QueryResponse};
use crate::queue::{work_queue, QueueStats};
use crate::result::{Coverage, RunResult};
use bytes::Bytes;
use kvs_simcore::{SimDuration, SimTime};
use kvs_stages::{analyze, Stage, TraceRecorder};
use kvs_store::PartitionKey;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Live-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Serialization strategy (real encode/decode work happens).
    pub codec: Codec,
    /// Worker threads per slave node (the database executor width).
    pub workers_per_node: usize,
    /// Per-node work-queue capacity. A full queue makes the master's
    /// dispatch block (counted in [`QueueStats::blocked_pushes`]), so
    /// in-queue saturation is observable instead of silently absorbed.
    pub queue_depth: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            codec: Codec::compact(),
            workers_per_node: 4,
            queue_depth: 64,
        }
    }
}

struct WireRequest {
    bytes: Bytes,
    issued_at: Instant,
    sent_at: Instant,
}

struct WireResponse {
    bytes: Bytes,
    node: u32,
    issued_at: Instant,
    sent_at: Instant,
    db_start: Instant,
    db_end: Instant,
}

/// Runs the distributed aggregation on real threads. Consumes the data
/// (worker threads take ownership of the tables).
///
/// # Panics
/// If a key is unplaced, or a worker thread panics.
pub fn run_query_live(data: ClusterData, keys: &[PartitionKey], cfg: LiveConfig) -> RunResult {
    let nodes = data.nodes();
    // Resolve routing before tables move into the workers.
    let routes: Vec<u32> = keys
        .iter()
        .map(|pk| {
            data.primary_of(pk)
                .unwrap_or_else(|| panic!("unplaced partition {pk:?}"))
        })
        .collect();
    let tables = data.into_tables();

    // The response path is unbounded on purpose: the master issues every
    // request before collecting, so a bounded response channel would
    // deadlock against a full request queue. Backpressure lives on the
    // request path, where in-queue saturation is the quantity of interest.
    let (resp_tx, resp_rx) = crossbeam::channel::unbounded::<WireResponse>();
    let mut req_queues = Vec::with_capacity(nodes as usize);
    let mut handles = Vec::new();
    for (node, table) in tables.into_iter().enumerate() {
        let (queue, source) = work_queue::<WireRequest>(cfg.queue_depth.max(1));
        req_queues.push(queue);
        let table = Arc::new(Mutex::new(table));
        for _ in 0..cfg.workers_per_node.max(1) {
            let source = source.clone();
            let resp_tx = resp_tx.clone();
            let table = table.clone();
            let codec = cfg.codec;
            let node = node as u32;
            handles.push(std::thread::spawn(move || {
                while let Some(wire) = source.recv() {
                    let db_start = Instant::now();
                    let req = codec
                        .decode_request(wire.bytes)
                        .expect("malformed request on the wire");
                    let (cells, _receipt) = table.lock().get(&req.partition);
                    let response =
                        QueryResponse::from_kinds(req.request_id, cells.iter().map(|c| c.kind));
                    let db_end = Instant::now();
                    let bytes = codec.encode_response(&response);
                    // Ignore send failure: the master may already have all
                    // it needs and dropped the receiver.
                    let _ = resp_tx.send(WireResponse {
                        bytes,
                        node,
                        issued_at: wire.issued_at,
                        sent_at: wire.sent_at,
                        db_start,
                        db_end,
                    });
                }
            }));
        }
    }
    drop(resp_tx);

    // ---- Master: issue every request. ----
    let origin = Instant::now();
    let to_sim = |t: Instant| -> SimTime {
        SimTime::from_nanos(t.saturating_duration_since(origin).as_nanos() as u64)
    };
    let mut bytes_to_slaves = 0u64;
    let mut send_last = origin;
    for (i, pk) in keys.iter().enumerate() {
        let request = QueryRequest {
            request_id: i as u64,
            partition: pk.clone(),
        };
        let bytes = cfg.codec.encode_request(&request);
        bytes_to_slaves += bytes.len() as u64;
        let sent_at = Instant::now();
        send_last = sent_at;
        req_queues[routes[i] as usize]
            .push_blocking(WireRequest {
                bytes,
                issued_at: origin,
                sent_at,
            })
            .unwrap_or_else(|_| panic!("slave hung up before the query finished"));
    }

    // ---- Master: collect every response. ----
    let mut recorder = TraceRecorder::new();
    let mut counts = std::collections::BTreeMap::new();
    let mut total_cells = 0u64;
    let mut bytes_to_master = 0u64;
    for _ in 0..keys.len() {
        let wire = resp_rx.recv().expect("workers died before finishing");
        bytes_to_master += wire.bytes.len() as u64;
        let response = cfg
            .codec
            .decode_response(wire.bytes)
            .expect("malformed response on the wire");
        let rx_done = Instant::now();
        let id = response.request_id;
        recorder.begin(id, wire.node, response.cells);
        recorder.record(
            id,
            Stage::MasterToSlave,
            to_sim(wire.issued_at),
            to_sim(wire.sent_at),
        );
        recorder.record(
            id,
            Stage::InQueue,
            to_sim(wire.sent_at),
            to_sim(wire.db_start),
        );
        recorder.record(id, Stage::InDb, to_sim(wire.db_start), to_sim(wire.db_end));
        recorder.record(
            id,
            Stage::SlaveToMaster,
            to_sim(wire.db_end),
            to_sim(rx_done),
        );
        for (&kind, &count) in &response.counts {
            *counts.entry(kind).or_insert(0u64) += count;
        }
        total_cells += response.cells;
    }

    // Closing the request queues ends the worker loops.
    let mut queue_stats = QueueStats::default();
    for q in &req_queues {
        queue_stats.merge(&q.stats());
    }
    drop(req_queues);
    for h in handles {
        h.join().expect("worker thread panicked");
    }

    let traces = recorder.into_traces();
    let report = analyze(&traces);
    RunResult {
        makespan: report.makespan,
        report,
        traces,
        counts_by_kind: counts,
        total_cells,
        messages: keys.len() as u64,
        bytes_to_slaves,
        bytes_to_master,
        issue_span: SimDuration::from_nanos(
            send_last.saturating_duration_since(origin).as_nanos() as u64
        ),
        failovers: 0,
        coverage: Coverage::complete(keys.len() as u64),
        missed: Vec::new(),
        hedges_sent: 0,
        hedges_won: 0,
        queue: Some(queue_stats),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::uniform_partitions;
    use kvs_store::TableOptions;

    fn live_data(nodes: u32, partitions: u64, cells: u64) -> (ClusterData, Vec<PartitionKey>) {
        let parts = uniform_partitions(partitions, cells, 4);
        let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
        let data = ClusterData::load(nodes, 1, TableOptions::default(), parts);
        (data, keys)
    }

    #[test]
    fn live_aggregation_is_correct() {
        let (data, keys) = live_data(3, 24, 8);
        let result = run_query_live(data, &keys, LiveConfig::default());
        assert_eq!(result.total_cells, 24 * 8);
        assert_eq!(result.counts_by_kind.values().sum::<u64>(), 24 * 8);
        assert_eq!(result.messages, 24);
        assert_eq!(result.traces.len(), 24);
    }

    #[test]
    fn live_traces_are_complete() {
        let (data, keys) = live_data(2, 10, 4);
        let result = run_query_live(data, &keys, LiveConfig::default());
        for t in &result.traces {
            assert!(t.is_complete(), "incomplete live trace {t:?}");
        }
        assert!(result.makespan > SimDuration::ZERO);
    }

    #[test]
    fn live_matches_sim_aggregation() {
        // Same data, both executors: identical answers.
        let (data, keys) = live_data(2, 16, 6);
        let (mut sim_data, _) = live_data(2, 16, 6);
        let live = run_query_live(data, &keys, LiveConfig::default());
        let cfg = crate::config::ClusterConfig::paper_optimized_master(2).deterministic();
        let sim = crate::sim::run_query(&cfg, &mut sim_data, &keys);
        assert_eq!(live.counts_by_kind, sim.counts_by_kind);
        assert_eq!(live.total_cells, sim.total_cells);
    }

    #[test]
    fn verbose_codec_costs_more_wire_bytes_live() {
        let (d1, keys) = live_data(2, 20, 4);
        let (d2, _) = live_data(2, 20, 4);
        let v = run_query_live(
            d1,
            &keys,
            LiveConfig {
                codec: Codec::verbose(),
                workers_per_node: 2,
                queue_depth: 64,
            },
        );
        let c = run_query_live(
            d2,
            &keys,
            LiveConfig {
                codec: Codec::compact(),
                workers_per_node: 2,
                queue_depth: 64,
            },
        );
        assert!(v.bytes_to_slaves > c.bytes_to_slaves * 4);
        assert_eq!(v.counts_by_kind, c.counts_by_kind);
    }

    #[test]
    fn queue_stats_reported() {
        let (data, keys) = live_data(2, 30, 4);
        let result = run_query_live(data, &keys, LiveConfig::default());
        let q = result.queue.expect("live runs report queue stats");
        assert_eq!(q.pushed, 30);
        assert_eq!(q.busy_rejections, 0, "push_blocking never rejects");
    }

    #[test]
    fn tiny_queue_makes_saturation_observable() {
        // One worker per node and a depth-1 queue: the master must outpace
        // the slaves, so some dispatches block and the counters show it.
        let (data, keys) = live_data(1, 64, 32);
        let result = run_query_live(
            data,
            &keys,
            LiveConfig {
                codec: Codec::verbose(),
                workers_per_node: 1,
                queue_depth: 1,
            },
        );
        let q = result.queue.expect("live runs report queue stats");
        assert_eq!(q.pushed, 64);
        assert!(q.saturated(), "depth-1 queue never filled: {q:?}");
        assert_eq!(result.total_cells, 64 * 32);
    }
}
