#![warn(missing_docs)]

//! # kvs-cluster
//!
//! The distributed prototype of the paper (§V): a master/slave aggregation
//! engine over a DHT-partitioned wide-column store, runnable in two modes:
//!
//! * [`sim`] — a deterministic discrete-event replay of the paper's 16-node
//!   cluster. Per-message master CPU, network transit, slave queueing and
//!   database service (with cross-request interference) are first-class
//!   simulated quantities calibrated to the constants the paper reports.
//! * [`live`] — a real multi-threaded executor (one OS thread per slave,
//!   crossbeam channels as the network) for demonstrating the methodology
//!   on actual hardware.
//!
//! Both record the four methodology stages through `kvs-stages` and return
//! a [`RunResult`].
//!
//! Sub-modules:
//! * [`messages`] — the wire protocol (query / response).
//! * [`codec`] — `Verbose` (Java-default-like) vs `Compact` (Kryo-like)
//!   serialization with measured byte sizes and modelled CPU cost; the
//!   §V-B optimization that turned Figure 1 into Figure 5.
//! * [`usl`] — the database interference model (Universal Scalability Law)
//!   that reproduces Figure 7's parallelism speed-ups.
//! * [`config`] — cluster/hardware presets (`paper_slow_master`,
//!   `paper_optimized_master`).
//! * [`data`] — DHT data placement: partitions → ring → per-node tables.
//! * [`policy`] — replica-selection policies (primary-only, random,
//!   round-robin, least-loaded).
//! * [`queue`] — bounded work queues with observable backpressure, shared
//!   by the live executor and the `kvs-net` TCP slaves.
//! * [`replication`] — deterministic mirror of the replicated write path:
//!   ONE/QUORUM/ALL consistency, LWW versions, read-repair, bounded
//!   hinted handoff, and PCAP-style staleness accounting.
//! * [`sim`], [`result`], [`live`].

pub mod codec;
pub mod config;
pub mod data;
pub mod live;
pub mod messages;
pub mod policy;
pub mod queue;
pub mod replication;
pub mod result;
pub mod sim;
pub mod usl;

pub use codec::{Codec, CodecKind};
pub use config::{
    ClusterConfig, DbConfig, GcConfig, MasterConfig, NetworkConfig, NodeFailure, Straggler,
};
pub use data::ClusterData;
pub use messages::{QueryRequest, QueryResponse, WriteAck, WriteRequest};
pub use policy::ReplicaPolicy;
pub use queue::QueueStats;
pub use replication::{
    Consistency, DelayFault, FaultWindow, ReplicationOutcome, ReplicationSimConfig, SimOp,
    SimOpKind,
};
pub use result::{Coverage, RunResult};
pub use sim::{db_microbench, run_open_loop, run_query, run_query_paced, OpenLoopResult};
