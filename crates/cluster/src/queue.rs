//! Bounded work queues with *observable* backpressure.
//!
//! The paper's methodology hinges on the `in-queue` stage being a real,
//! measurable quantity. An unbounded channel hides saturation: requests
//! pile up silently and the only symptom is a growing in-queue time. A
//! bounded queue makes the pressure explicit — producers either block
//! (and the block is counted) or are refused outright (a `Busy` reply on
//! the wire). Both the in-process [`crate::live`] executor and the TCP
//! `kvs-net` slave servers run their worker pools behind this type, so
//! the two executors report saturation identically.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Counters shared by all handles of one queue.
#[derive(Debug, Default)]
struct Counters {
    pushed: AtomicU64,
    busy_rejections: AtomicU64,
    blocked_pushes: AtomicU64,
    max_depth: AtomicUsize,
}

/// A point-in-time snapshot of a queue's backpressure counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Items accepted into the queue.
    pub pushed: u64,
    /// Offers refused because the queue was full ([`WorkQueue::try_push`]).
    pub busy_rejections: u64,
    /// Blocking pushes that found the queue full and had to wait
    /// ([`WorkQueue::push_blocking`]).
    pub blocked_pushes: u64,
    /// High-water mark of the queue depth, observed at push time.
    pub max_depth: usize,
}

impl QueueStats {
    /// Folds another queue's counters into this one (sum counts, max the
    /// high-water mark) — for per-node queues reported as one figure.
    pub fn merge(&mut self, other: &QueueStats) {
        self.pushed += other.pushed;
        self.busy_rejections += other.busy_rejections;
        self.blocked_pushes += other.blocked_pushes;
        self.max_depth = self.max_depth.max(other.max_depth);
    }

    /// True when the queue ever refused or delayed a producer.
    pub fn saturated(&self) -> bool {
        self.busy_rejections > 0 || self.blocked_pushes > 0
    }
}

/// Producer handle of a bounded work queue.
pub struct WorkQueue<T> {
    tx: Sender<T>,
    counters: Arc<Counters>,
    capacity: usize,
}

/// Consumer handle of a bounded work queue.
pub struct WorkSource<T> {
    rx: Receiver<T>,
    counters: Arc<Counters>,
}

/// Creates a bounded queue of at most `capacity` in-flight items.
///
/// # Panics
/// If `capacity == 0`.
pub fn work_queue<T>(capacity: usize) -> (WorkQueue<T>, WorkSource<T>) {
    assert!(capacity > 0, "work queue needs capacity ≥ 1");
    let (tx, rx) = bounded(capacity);
    let counters = Arc::new(Counters::default());
    (
        WorkQueue {
            tx,
            counters: counters.clone(),
            capacity,
        },
        WorkSource { rx, counters },
    )
}

impl<T> WorkQueue<T> {
    /// Offers an item without blocking. Returns it back when the queue is
    /// full (counted as a busy rejection — the caller replies `Busy` or
    /// retries) or when all consumers are gone.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        match self.tx.try_send(item) {
            Ok(()) => {
                self.note_push();
                Ok(())
            }
            Err(TrySendError::Full(item)) => {
                self.counters
                    .busy_rejections
                    .fetch_add(1, Ordering::Relaxed);
                Err(item)
            }
            Err(TrySendError::Disconnected(item)) => Err(item),
        }
    }

    /// Pushes an item, blocking while the queue is full. A push that had
    /// to wait is counted, making silent saturation visible in
    /// [`QueueStats::blocked_pushes`]. Returns the item back only when all
    /// consumers are gone.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        match self.tx.try_send(item) {
            Ok(()) => {
                self.note_push();
                Ok(())
            }
            Err(TrySendError::Full(item)) => {
                self.counters.blocked_pushes.fetch_add(1, Ordering::Relaxed);
                match self.tx.send(item) {
                    Ok(()) => {
                        self.note_push();
                        Ok(())
                    }
                    Err(e) => Err(e.0),
                }
            }
            Err(TrySendError::Disconnected(item)) => Err(item),
        }
    }

    fn note_push(&self) {
        self.counters.pushed.fetch_add(1, Ordering::Relaxed);
        let depth = self.tx.len();
        self.counters.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the backpressure counters.
    pub fn stats(&self) -> QueueStats {
        self.counters.snapshot()
    }
}

impl<T> Clone for WorkQueue<T> {
    fn clone(&self) -> Self {
        WorkQueue {
            tx: self.tx.clone(),
            counters: self.counters.clone(),
            capacity: self.capacity,
        }
    }
}

impl<T> WorkSource<T> {
    /// Takes the next item, blocking until one arrives; `None` once all
    /// producers are gone and the queue drained.
    pub fn recv(&self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Takes the next item, waiting at most `timeout`; `None` on timeout
    /// or disconnection.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Some(v),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Snapshot of the backpressure counters.
    pub fn stats(&self) -> QueueStats {
        self.counters.snapshot()
    }
}

impl<T> Clone for WorkSource<T> {
    fn clone(&self) -> Self {
        WorkSource {
            rx: self.rx.clone(),
            counters: self.counters.clone(),
        }
    }
}

impl Counters {
    fn snapshot(&self) -> QueueStats {
        QueueStats {
            pushed: self.pushed.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            blocked_pushes: self.blocked_pushes.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_push_refuses_when_full() {
        let (q, src) = work_queue(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        let s = q.stats();
        assert_eq!(s.pushed, 2);
        assert_eq!(s.busy_rejections, 1);
        assert!(s.saturated());
        assert_eq!(src.recv(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn blocking_push_counts_waits() {
        let (q, src) = work_queue(1);
        q.push_blocking(10u32).unwrap();
        let consumer = {
            let src = src.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                let mut got = Vec::new();
                while let Some(v) = src.recv() {
                    got.push(v);
                }
                got
            })
        };
        q.push_blocking(11).unwrap(); // must wait for the consumer
        drop(q);
        drop(src);
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![10, 11]);
    }

    #[test]
    fn blocked_pushes_observable() {
        let (q, src) = work_queue(1);
        q.push_blocking(1).unwrap();
        let src2 = src.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            src2.recv()
        });
        q.push_blocking(2).unwrap();
        assert_eq!(t.join().unwrap(), Some(1));
        let s = q.stats();
        assert_eq!(s.pushed, 2);
        assert!(s.blocked_pushes >= 1, "{s:?}");
        assert_eq!(src.recv(), Some(2));
    }

    #[test]
    fn recv_none_after_producers_gone() {
        let (q, src) = work_queue(4);
        q.try_push(1).unwrap();
        drop(q);
        assert_eq!(src.recv(), Some(1));
        assert_eq!(src.recv(), None);
        assert_eq!(src.recv_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn stats_merge_sums_and_maxes() {
        let mut a = QueueStats {
            pushed: 5,
            busy_rejections: 1,
            blocked_pushes: 0,
            max_depth: 3,
        };
        a.merge(&QueueStats {
            pushed: 7,
            busy_rejections: 0,
            blocked_pushes: 2,
            max_depth: 9,
        });
        assert_eq!(a.pushed, 12);
        assert_eq!(a.busy_rejections, 1);
        assert_eq!(a.blocked_pushes, 2);
        assert_eq!(a.max_depth, 9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = work_queue::<u8>(0);
    }
}
