//! Bounded, deadline-aware work queues with *observable* backpressure.
//!
//! The paper's methodology hinges on the `in-queue` stage being a real,
//! measurable quantity. An unbounded channel hides saturation: requests
//! pile up silently and the only symptom is a growing in-queue time. A
//! bounded queue makes the pressure explicit — producers either block
//! (and the block is counted) or are refused outright (a `Busy` reply on
//! the wire). Both the in-process [`crate::live`] executor and the TCP
//! `kvs-net` slave servers run their worker pools behind this type, so
//! the two executors report saturation identically.
//!
//! Entries may carry an absolute deadline ([`WorkQueue::try_push_timed`]).
//! A full queue evicts entries whose deadline has already passed before
//! refusing new work, so expired requests never occupy capacity that live
//! requests could use; the evicted items are handed back to the producer,
//! which owns answering them (an `Expired` reply on the wire). Entries
//! pushed through the untimed API never expire.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Deadline value meaning "never expires" (used by the untimed push API).
pub const NO_DEADLINE: u64 = u64::MAX;

/// Counters shared by all handles of one queue.
#[derive(Debug, Default)]
struct Counters {
    pushed: AtomicU64,
    busy_rejections: AtomicU64,
    blocked_pushes: AtomicU64,
    expired: AtomicU64,
    max_depth: AtomicUsize,
}

/// A point-in-time snapshot of a queue's backpressure counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Items accepted into the queue.
    pub pushed: u64,
    /// Offers refused because the queue was full ([`WorkQueue::try_push`]).
    pub busy_rejections: u64,
    /// Blocking pushes that found the queue full and had to wait
    /// ([`WorkQueue::push_blocking`]).
    pub blocked_pushes: u64,
    /// Entries refused or evicted because their deadline had passed
    /// ([`WorkQueue::try_push_timed`]).
    pub expired: u64,
    /// High-water mark of the queue depth, observed at push time.
    pub max_depth: usize,
}

impl QueueStats {
    /// Folds another queue's counters into this one (sum counts, max the
    /// high-water mark) — for per-node queues reported as one figure.
    pub fn merge(&mut self, other: &QueueStats) {
        self.pushed += other.pushed;
        self.busy_rejections += other.busy_rejections;
        self.blocked_pushes += other.blocked_pushes;
        self.expired += other.expired;
        self.max_depth = self.max_depth.max(other.max_depth);
    }

    /// True when the queue ever refused or delayed a producer.
    pub fn saturated(&self) -> bool {
        self.busy_rejections > 0 || self.blocked_pushes > 0
    }
}

/// Outcome of a deadline-carrying push ([`WorkQueue::try_push_timed`]).
#[derive(Debug)]
pub enum TimedPush<T> {
    /// The item was enqueued. Any expired entries evicted to make room are
    /// handed back — the caller owns answering them.
    Accepted {
        /// Expired entries evicted to make room for the accepted item.
        evicted: Vec<T>,
    },
    /// The item's own deadline had already passed; it was never enqueued.
    AlreadyExpired(T),
    /// The queue is full of live (unexpired) work.
    Full(T),
    /// All consumers are gone.
    Disconnected(T),
}

struct Inner<T> {
    items: VecDeque<(T, u64)>,
    producers: usize,
    consumers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    counters: Counters,
    capacity: usize,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Producer handle of a bounded work queue.
pub struct WorkQueue<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer handle of a bounded work queue.
pub struct WorkSource<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded queue of at most `capacity` in-flight items.
///
/// # Panics
/// If `capacity == 0`.
pub fn work_queue<T>(capacity: usize) -> (WorkQueue<T>, WorkSource<T>) {
    assert!(capacity > 0, "work queue needs capacity ≥ 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            items: VecDeque::with_capacity(capacity),
            producers: 1,
            consumers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        counters: Counters::default(),
        capacity,
    });
    (
        WorkQueue {
            shared: shared.clone(),
        },
        WorkSource { shared },
    )
}

impl<T> WorkQueue<T> {
    /// Offers an item without blocking. Returns it back when the queue is
    /// full (counted as a busy rejection — the caller replies `Busy` or
    /// retries) or when all consumers are gone. The item never expires.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        match self.try_push_timed(item, NO_DEADLINE, 0) {
            TimedPush::Accepted { .. } => Ok(()),
            TimedPush::Full(item) | TimedPush::Disconnected(item) => Err(item),
            // Unreachable: NO_DEADLINE never expires.
            TimedPush::AlreadyExpired(item) => Err(item),
        }
    }

    /// Offers an item carrying an absolute deadline (same clock and unit
    /// as `now` — the caller supplies both, typically wall nanoseconds).
    /// An item whose deadline has already passed is refused outright; a
    /// full queue first evicts entries whose deadlines have passed and
    /// hands them back so the producer can answer them.
    pub fn try_push_timed(&self, item: T, deadline: u64, now: u64) -> TimedPush<T> {
        let c = &self.shared.counters;
        if deadline <= now {
            c.expired.fetch_add(1, Ordering::Relaxed);
            return TimedPush::AlreadyExpired(item);
        }
        let mut g = self.shared.lock();
        if g.consumers == 0 {
            return TimedPush::Disconnected(item);
        }
        let mut evicted = Vec::new();
        if g.items.len() >= self.shared.capacity {
            let mut kept = VecDeque::with_capacity(g.items.len());
            for (it, dl) in g.items.drain(..) {
                if dl <= now {
                    evicted.push(it);
                } else {
                    kept.push_back((it, dl));
                }
            }
            g.items = kept;
            c.expired.fetch_add(evicted.len() as u64, Ordering::Relaxed);
        }
        if g.items.len() >= self.shared.capacity {
            c.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return TimedPush::Full(item);
        }
        g.items.push_back((item, deadline));
        self.note_push(g.items.len());
        drop(g);
        self.shared.not_empty.notify_one();
        if !evicted.is_empty() {
            // Eviction freed at least one slot beyond the one we used.
            self.shared.not_full.notify_all();
        }
        TimedPush::Accepted { evicted }
    }

    /// Pushes an item, blocking while the queue is full. A push that had
    /// to wait is counted, making silent saturation visible in
    /// [`QueueStats::blocked_pushes`]. Returns the item back only when all
    /// consumers are gone. The item never expires.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut g = self.shared.lock();
        if g.consumers == 0 {
            return Err(item);
        }
        if g.items.len() >= self.shared.capacity {
            self.shared
                .counters
                .blocked_pushes
                .fetch_add(1, Ordering::Relaxed);
            while g.items.len() >= self.shared.capacity && g.consumers > 0 {
                g = self
                    .shared
                    .not_full
                    .wait(g)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if g.consumers == 0 {
                return Err(item);
            }
        }
        g.items.push_back((item, NO_DEADLINE));
        self.note_push(g.items.len());
        drop(g);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    fn note_push(&self, depth: usize) {
        let c = &self.shared.counters;
        c.pushed.fetch_add(1, Ordering::Relaxed);
        c.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Snapshot of the backpressure counters.
    pub fn stats(&self) -> QueueStats {
        self.shared.counters.snapshot()
    }
}

impl<T> Clone for WorkQueue<T> {
    fn clone(&self) -> Self {
        self.shared.lock().producers += 1;
        WorkQueue {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for WorkQueue<T> {
    fn drop(&mut self) {
        let mut g = self.shared.lock();
        g.producers -= 1;
        if g.producers == 0 {
            drop(g);
            // Wake consumers blocked on an empty queue so they observe EOF.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> WorkSource<T> {
    /// Takes the next item, blocking until one arrives; `None` once all
    /// producers are gone and the queue drained.
    pub fn recv(&self) -> Option<T> {
        let mut g = self.shared.lock();
        loop {
            if let Some((item, _)) = g.items.pop_front() {
                drop(g);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if g.producers == 0 {
                return None;
            }
            g = self
                .shared
                .not_empty
                .wait(g)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Takes the next item, waiting at most `timeout`; `None` on timeout
    /// or disconnection.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<T> {
        let give_up = Instant::now() + timeout;
        let mut g = self.shared.lock();
        loop {
            if let Some((item, _)) = g.items.pop_front() {
                drop(g);
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if g.producers == 0 {
                return None;
            }
            let left = give_up.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, res) = self
                .shared
                .not_empty
                .wait_timeout(g, left)
                .unwrap_or_else(|e| e.into_inner());
            g = guard;
            if res.timed_out() && g.items.is_empty() {
                return None;
            }
        }
    }

    /// Snapshot of the backpressure counters.
    pub fn stats(&self) -> QueueStats {
        self.shared.counters.snapshot()
    }
}

impl<T> Clone for WorkSource<T> {
    fn clone(&self) -> Self {
        self.shared.lock().consumers += 1;
        WorkSource {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for WorkSource<T> {
    fn drop(&mut self) {
        let mut g = self.shared.lock();
        g.consumers -= 1;
        if g.consumers == 0 {
            drop(g);
            // Wake producers blocked on a full queue so they observe the
            // disconnect instead of waiting forever.
            self.shared.not_full.notify_all();
        }
    }
}

impl Counters {
    fn snapshot(&self) -> QueueStats {
        QueueStats {
            pushed: self.pushed.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            blocked_pushes: self.blocked_pushes.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            max_depth: self.max_depth.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_push_refuses_when_full() {
        let (q, src) = work_queue(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        let s = q.stats();
        assert_eq!(s.pushed, 2);
        assert_eq!(s.busy_rejections, 1);
        assert!(s.saturated());
        assert_eq!(src.recv(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn blocking_push_counts_waits() {
        let (q, src) = work_queue(1);
        q.push_blocking(10u32).unwrap();
        let consumer = {
            let src = src.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                let mut got = Vec::new();
                while let Some(v) = src.recv() {
                    got.push(v);
                }
                got
            })
        };
        q.push_blocking(11).unwrap(); // must wait for the consumer
        drop(q);
        drop(src);
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![10, 11]);
    }

    #[test]
    fn blocked_pushes_observable() {
        let (q, src) = work_queue(1);
        q.push_blocking(1).unwrap();
        let src2 = src.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            src2.recv()
        });
        q.push_blocking(2).unwrap();
        assert_eq!(t.join().unwrap(), Some(1));
        let s = q.stats();
        assert_eq!(s.pushed, 2);
        assert!(s.blocked_pushes >= 1, "{s:?}");
        assert_eq!(src.recv(), Some(2));
    }

    #[test]
    fn recv_none_after_producers_gone() {
        let (q, src) = work_queue(4);
        q.try_push(1).unwrap();
        drop(q);
        assert_eq!(src.recv(), Some(1));
        assert_eq!(src.recv(), None);
        assert_eq!(src.recv_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn push_fails_after_consumers_gone() {
        let (q, src) = work_queue(4);
        drop(src);
        assert_eq!(q.try_push(1), Err(1));
        assert_eq!(q.push_blocking(2), Err(2));
        assert!(matches!(
            q.try_push_timed(3, NO_DEADLINE, 0),
            TimedPush::Disconnected(3)
        ));
    }

    #[test]
    fn expired_item_refused_at_push() {
        let (q, _src) = work_queue::<u32>(4);
        assert!(matches!(
            q.try_push_timed(7, 100, 100),
            TimedPush::AlreadyExpired(7)
        ));
        assert!(matches!(
            q.try_push_timed(8, 50, 100),
            TimedPush::AlreadyExpired(8)
        ));
        assert_eq!(q.stats().expired, 2);
        assert_eq!(q.stats().pushed, 0);
    }

    #[test]
    fn full_queue_evicts_expired_entries() {
        let (q, src) = work_queue::<u32>(2);
        // Both entries expire at t = 10; queue full.
        assert!(matches!(
            q.try_push_timed(1, 10, 0),
            TimedPush::Accepted { .. }
        ));
        assert!(matches!(
            q.try_push_timed(2, 10, 0),
            TimedPush::Accepted { .. }
        ));
        // Still before the deadlines: full of live work.
        assert!(matches!(q.try_push_timed(3, 100, 5), TimedPush::Full(3)));
        // Past the deadlines: both dead entries evicted, new one accepted.
        match q.try_push_timed(3, 100, 20) {
            TimedPush::Accepted { evicted } => assert_eq!(evicted, vec![1, 2]),
            other => panic!("expected acceptance, got {other:?}"),
        }
        assert_eq!(src.recv(), Some(3));
        let s = q.stats();
        assert_eq!(s.expired, 2);
        assert_eq!(s.busy_rejections, 1);
        assert_eq!(s.pushed, 3);
    }

    #[test]
    fn stats_merge_sums_and_maxes() {
        let mut a = QueueStats {
            pushed: 5,
            busy_rejections: 1,
            blocked_pushes: 0,
            expired: 2,
            max_depth: 3,
        };
        a.merge(&QueueStats {
            pushed: 7,
            busy_rejections: 0,
            blocked_pushes: 2,
            expired: 1,
            max_depth: 9,
        });
        assert_eq!(a.pushed, 12);
        assert_eq!(a.busy_rejections, 1);
        assert_eq!(a.blocked_pushes, 2);
        assert_eq!(a.expired, 3);
        assert_eq!(a.max_depth, 9);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = work_queue::<u8>(0);
    }
}
