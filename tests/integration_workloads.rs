//! Workload-pipeline integration plus property-based tests (proptest) on
//! the cross-crate invariants the experiments lean on.

use kvscale::prelude::*;
use kvscale::simcore::RngHub;
use kvscale::store::ReadReceipt;
use kvscale::workloads::alya::{generate, AlyaConfig};
use kvscale::workloads::d8tree::morton_at;
use kvscale::workloads::sampling::partitions_with_sizes;
use kvscale::workloads::{D8Tree, DataModel};
use proptest::prelude::*;

#[test]
fn particles_to_store_roundtrip() {
    let mut rng = RngHub::new(5).stream("alya");
    let particles = generate(
        &AlyaConfig {
            particles: 2_000,
            tree_depth: 5,
            ..Default::default()
        },
        &mut rng,
    );
    let tree = D8Tree::build(&particles, 3);
    let mut table = Table::new(TableOptions::default());
    for (pk, cells) in tree.level_partitions(3, &particles) {
        for cell in cells {
            table.put(pk.clone(), cell);
        }
    }
    table.flush();
    // Read back every cube and re-count particles.
    let mut seen = 0usize;
    for (cube, ids) in tree.level_cubes(3) {
        let (cells, receipt) = table.get(&cube.partition_key());
        assert_eq!(cells.len(), ids.len(), "cube {cube:?}");
        assert_eq!(receipt.cells_returned as usize, ids.len());
        seen += cells.len();
    }
    assert_eq!(seen, 2_000);
}

#[test]
fn column_index_threshold_is_46_bytes_times_1424() {
    // The workspace-wide contract tying schema, store and Figure 6.
    let sizes = vec![1_424u64, 1_425];
    let parts = partitions_with_sizes(&sizes, 4);
    let mut table = Table::new(TableOptions::default());
    for (pk, cells) in parts {
        for cell in cells {
            table.put(pk.clone(), cell);
        }
    }
    table.flush();
    let keys: Vec<PartitionKey> = {
        let parts = partitions_with_sizes(&sizes, 4);
        parts.into_iter().map(|(pk, _)| pk).collect()
    };
    let (_, below): (Vec<Cell>, ReadReceipt) = table.get(&keys[0]);
    let (_, above) = table.get(&keys[1]);
    assert!(!below.used_column_index, "1424 cells must not be indexed");
    assert!(above.used_column_index, "1425 cells must be indexed");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Morton encoding keeps spatial containment: refining a position to a
    /// deeper level stays inside the parent cube's code prefix.
    #[test]
    fn morton_levels_nest(x in 0.0f64..1.0, y in 0.0f64..1.0, z in 0.0f64..1.0,
                          level in 1u8..8) {
        let pos = [x, y, z];
        let parent = morton_at(pos, level);
        let child = morton_at(pos, level + 1);
        // Dropping the child's finest 3 bits must give the parent code.
        prop_assert_eq!(child >> 3, parent);
    }

    /// Every data model, at any dataset size, covers each element exactly
    /// once with dense ids and the paper's cells-per-partition ratio.
    #[test]
    fn data_models_partition_exactly(total in 1u64..30_000) {
        for model in DataModel::ALL {
            let parts = model.build_partitions(total, 4);
            let covered = parts.iter().map(|(_, c)| c.len() as u64).sum::<u64>();
            let whole = (total / model.cells_per_partition()) * model.cells_per_partition();
            prop_assert!(covered == whole.max(total.min(model.cells_per_partition())),
                "{model:?}: covered {covered} of {total}");
            // No duplicate partition keys.
            let mut keys: Vec<_> = parts.iter().map(|(pk, _)| pk.clone()).collect();
            keys.sort();
            keys.dedup();
            prop_assert_eq!(keys.len(), parts.len());
        }
    }

    /// The store returns exactly what was written for arbitrary partition
    /// layouts (sizes drawn 1..600, several partitions).
    #[test]
    fn store_roundtrips_arbitrary_layouts(sizes in proptest::collection::vec(1u64..600, 1..8)) {
        let parts = partitions_with_sizes(&sizes, 4);
        let mut table = Table::new(TableOptions::default());
        for (pk, cells) in &parts {
            for cell in cells {
                table.put(pk.clone(), cell.clone());
            }
        }
        table.flush();
        for (pk, cells) in &parts {
            let (read, _) = table.get(pk);
            prop_assert_eq!(&read, cells);
        }
    }

    /// Formula 1's expected max load is an upper-ish bound: the empirical
    /// mean max load never exceeds it by more than a small margin.
    #[test]
    fn keymax_tracks_monte_carlo(keys in 20u64..400, nodes in 2u64..32) {
        use kvscale::balance::simulation::{max_load_density, Placement};
        let mut rng = RngHub::new(11).stream_indexed("prop", keys ^ (nodes << 32));
        let density = max_load_density(keys, nodes as usize, Placement::SingleChoice, 300, &mut rng);
        let predicted = keymax(keys as f64, nodes);
        prop_assert!(density.mean() <= predicted * 1.25 + 1.5,
            "empirical {} vs keymax {}", density.mean(), predicted);
        prop_assert!(density.mean() >= keys as f64 / nodes as f64,
            "max load below the uniform share");
    }
}
