//! The model validated against the simulator — the Figure 8 story as a
//! test: predictions from the paper's formulas must track deterministic
//! simulator runs.

use kvscale::cluster::{run_query, ClusterConfig, ClusterData};
use kvscale::model::limits::{master_crossover, master_limit_sweep};
use kvscale::model::optimizer::scalability_losses;
use kvscale::prelude::*;
use kvscale::workloads::DataModel;

const ELEMENTS: u64 = 100_000;

/// Runs one deterministic experiment and returns (observed_ms, prediction).
fn observe(model: DataModel, nodes: u32) -> (f64, Prediction) {
    let partitions = model.build_partitions(ELEMENTS, 4);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    let mut data = ClusterData::load(nodes, 1, TableOptions::default(), partitions);
    let cfg = ClusterConfig::paper_optimized_master(nodes).deterministic();
    let result = run_query(&cfg, &mut data, &keys);
    let system = SystemModel::paper_optimized();
    let prediction = system.predict(
        model.partitions_for(ELEMENTS) as f64,
        model.cells_per_partition() as f64,
        nodes as u64,
    );
    (result.makespan.as_millis_f64(), prediction)
}

#[test]
fn model_tracks_simulator_within_tolerance() {
    // The paper's model uses Formula 7 (max speed-up) while runs execute at
    // a fixed parallelism, so we accept a generous ±45 % band — Figure 8's
    // "high precision … considering the high variance" claim, not an
    // equality. The *ranking* checks below are the strong assertions.
    for model in [DataModel::Medium, DataModel::Fine] {
        for nodes in [1u32, 4, 8] {
            let (observed, prediction) = observe(model, nodes);
            let err = (prediction.total_ms() - observed) / observed;
            assert!(
                err.abs() < 0.45,
                "{model:?} on {nodes}: predicted {:.0} vs observed {observed:.0} ({:+.0}%)",
                prediction.total_ms(),
                err * 100.0
            );
        }
    }
}

#[test]
fn model_ranks_data_models_like_the_simulator() {
    // Whatever the absolute errors, the model must agree with the
    // simulator about *which* granularity wins on a big cluster — the
    // paper's central design question.
    let nodes = 16u32;
    let mut sim_times = Vec::new();
    let mut model_times = Vec::new();
    for model in DataModel::ALL {
        let (observed, prediction) = observe(model, nodes);
        sim_times.push((model, observed));
        model_times.push((model, prediction.total_ms()));
    }
    let sim_best = sim_times
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0;
    let model_best = model_times
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0;
    assert_eq!(
        sim_best, model_best,
        "sim {sim_times:?} vs model {model_times:?}"
    );
}

#[test]
fn model_predicts_master_bound_transition_like_simulator() {
    // Fine-grained with the slow master: both worlds call it master-bound.
    let partitions = DataModel::Fine.build_partitions(ELEMENTS, 4);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    let mut data = ClusterData::load(16, 1, TableOptions::default(), partitions);
    let cfg = ClusterConfig::paper_slow_master(16).deterministic();
    let result = run_query(&cfg, &mut data, &keys);
    assert!(matches!(
        result.report.bottleneck,
        Bottleneck::MasterSend { .. }
    ));
    let system = SystemModel::paper_slow();
    let p = system.predict(DataModel::Fine.partitions_for(ELEMENTS) as f64, 100.0, 16);
    assert_eq!(p.dominant(), "master");
}

#[test]
fn optimizer_beats_fixed_granularities_in_the_simulator_too() {
    // Take the model's optimal partition count for 8 nodes and check the
    // *simulator* agrees it beats the paper's three fixed models.
    let system = SystemModel::paper_optimized();
    let opt = optimize_partitions(&system, ELEMENTS as f64, 8);
    let run_with_partitions = |parts: u64| -> f64 {
        let per = (ELEMENTS / parts).max(1);
        let partitions: Vec<(PartitionKey, Vec<Cell>)> = (0..parts)
            .map(|p| {
                let cells = (0..per)
                    .map(|c| Cell::synthetic(p * per + c, ((p + c) % 4) as u8))
                    .collect();
                (PartitionKey::from_id(p), cells)
            })
            .collect();
        let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
        let mut data = ClusterData::load(8, 1, TableOptions::default(), partitions);
        let cfg = ClusterConfig::paper_optimized_master(8).deterministic();
        run_query(&cfg, &mut data, &keys).makespan.as_millis_f64()
    };
    let opt_ms = run_with_partitions(opt.partitions);
    let coarse_ms = run_with_partitions(10);
    assert!(
        opt_ms < coarse_ms,
        "optimizer choice {} not better than coarse {} in the simulator",
        opt_ms,
        coarse_ms
    );
}

#[test]
fn figure10_and_figure11_are_internally_consistent() {
    let system = SystemModel::paper_optimized();
    let losses = scalability_losses(&system, 1_000_000.0, &[2, 4, 8, 16]);
    assert_eq!(losses.len(), 4);
    for l in &losses {
        assert!(l.total_loss >= -0.02, "{l:?}");
        assert!((l.imbalance_loss + l.efficiency_loss - l.total_loss).abs() < 1e-9);
    }
    let sweep = master_limit_sweep(&system, 1_000_000.0, &[16, 64, 256]);
    // Master share grows monotonically with cluster size.
    let ratios: Vec<f64> = sweep.iter().map(|p| p.master_ms / p.slave_ms).collect();
    assert!(ratios.windows(2).all(|w| w[1] >= w[0] * 0.99), "{ratios:?}");
    let _ = master_crossover(&sweep);
}
