//! Cross-crate integration: workloads → store → cluster, in both the
//! simulated and the live executors.

use kvscale::cluster::data::uniform_partitions;
use kvscale::cluster::live::{run_query_live, LiveConfig};
use kvscale::cluster::{run_query, ClusterConfig, ClusterData, Codec, ReplicaPolicy};
use kvscale::prelude::*;
use kvscale::simcore::RngHub;
use kvscale::workloads::alya::{generate, AlyaConfig};
use kvscale::workloads::{D8Tree, DataModel};

#[test]
fn d8tree_query_counts_match_index_populations() {
    let mut rng = RngHub::new(3).stream("alya");
    let particles = generate(
        &AlyaConfig {
            particles: 10_000,
            tree_depth: 5,
            ..Default::default()
        },
        &mut rng,
    );
    let tree = D8Tree::build(&particles, 4);
    let level = 3u8;
    let partitions = tree.level_partitions(level, &particles);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    let mut data = ClusterData::load(4, 1, TableOptions::default(), partitions);
    let cfg = ClusterConfig::paper_optimized_master(4).deterministic();
    let result = run_query(&cfg, &mut data, &keys);
    // Querying every cube at one level must see every particle exactly once
    // (the denormalization replicates across levels, not within one).
    assert_eq!(result.total_cells, 10_000);
    // Kind totals must match the generator's population.
    let mut expected = std::collections::BTreeMap::new();
    for p in &particles {
        *expected.entry(p.kind).or_insert(0u64) += 1;
    }
    assert_eq!(result.counts_by_kind, expected);
}

#[test]
fn live_and_sim_agree_on_answers_for_all_data_models() {
    for model in DataModel::ALL {
        let partitions = model.build_partitions(10_000, 4);
        let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
        let mut sim_data = ClusterData::load(3, 1, TableOptions::default(), partitions.clone());
        let live_data = ClusterData::load(3, 1, TableOptions::default(), partitions);
        let cfg = ClusterConfig::paper_optimized_master(3).deterministic();
        let sim = run_query(&cfg, &mut sim_data, &keys);
        let live = run_query_live(live_data, &keys, LiveConfig::default());
        assert_eq!(sim.counts_by_kind, live.counts_by_kind, "{model:?}");
        assert_eq!(sim.total_cells, live.total_cells);
        assert_eq!(sim.messages, live.messages);
    }
}

#[test]
fn replication_policies_preserve_answers_and_spread_load() {
    let partitions = uniform_partitions(90, 20, 4);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    let mut baseline_excess = None;
    for policy in [
        ReplicaPolicy::Primary,
        ReplicaPolicy::Random,
        ReplicaPolicy::RoundRobin,
        ReplicaPolicy::LeastLoaded,
    ] {
        let mut data = ClusterData::load(5, 3, TableOptions::default(), partitions.clone());
        let mut cfg = ClusterConfig::paper_optimized_master(5).deterministic();
        cfg.replication_factor = 3;
        cfg.replica_policy = policy;
        let result = run_query(&cfg, &mut data, &keys);
        assert_eq!(result.total_cells, 90 * 20, "{policy:?} lost cells");
        match policy {
            ReplicaPolicy::Primary => baseline_excess = Some(result.load_excess()),
            ReplicaPolicy::LeastLoaded => {
                let base = baseline_excess.expect("primary ran first");
                assert!(
                    result.load_excess() <= base + 1e-9,
                    "least-loaded ({}) worse than primary ({base})",
                    result.load_excess()
                );
            }
            _ => {}
        }
    }
}

#[test]
fn wire_bytes_depend_on_codec_not_executor() {
    let partitions = uniform_partitions(50, 10, 2);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    let mut sizes = std::collections::BTreeMap::new();
    for codec in [Codec::verbose(), Codec::compact()] {
        let mut data = ClusterData::load(2, 1, TableOptions::default(), partitions.clone());
        let mut cfg = ClusterConfig::paper_optimized_master(2).deterministic();
        cfg.master.codec = codec;
        let sim = run_query(&cfg, &mut data, &keys);
        let live_data = ClusterData::load(2, 1, TableOptions::default(), partitions.clone());
        let live = run_query_live(
            live_data,
            &keys,
            LiveConfig {
                codec,
                workers_per_node: 2,
                ..LiveConfig::default()
            },
        );
        assert_eq!(
            sim.bytes_to_slaves, live.bytes_to_slaves,
            "{:?}: sim and live disagree on request bytes",
            codec.kind
        );
        sizes.insert(format!("{:?}", codec.kind), sim.bytes_to_slaves);
    }
    assert!(sizes["Verbose"] > sizes["Compact"] * 4);
}

#[test]
fn gc_makes_coarse_reads_slower() {
    let partitions = uniform_partitions(30, 5_000, 4);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    let base_cfg = ClusterConfig::paper_optimized_master(4);

    let mut with_gc_cfg = base_cfg.clone();
    with_gc_cfg.db.cost = with_gc_cfg.db.cost.deterministic(); // keep GC, drop noise
    let mut data1 = ClusterData::load(4, 1, TableOptions::default(), partitions.clone());
    let with_gc = run_query(&with_gc_cfg, &mut data1, &keys);

    let no_gc_cfg = base_cfg.deterministic(); // drops GC and noise
    let mut data2 = ClusterData::load(4, 1, TableOptions::default(), partitions);
    let without_gc = run_query(&no_gc_cfg, &mut data2, &keys);

    assert!(
        with_gc.makespan > without_gc.makespan,
        "GC had no effect: {} vs {}",
        with_gc.makespan,
        without_gc.makespan
    );
}

#[test]
fn node_count_mismatch_is_caught() {
    // The harness-level invariant: every queried key must be resolvable.
    let partitions = uniform_partitions(10, 5, 2);
    let keys: Vec<PartitionKey> = partitions.iter().map(|(pk, _)| pk.clone()).collect();
    let mut data = ClusterData::load(2, 1, TableOptions::default(), partitions);
    let cfg = ClusterConfig::paper_optimized_master(2).deterministic();
    let result = run_query(&cfg, &mut data, &keys);
    assert_eq!(result.messages, 10);
    for trace in &result.traces {
        assert!(trace.node < 2);
        assert!(trace.is_complete());
    }
}
