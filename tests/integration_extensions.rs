//! Integration tests for the beyond-the-paper extensions, driven through
//! the public facade: storage tiering, architecture comparison, open-loop
//! serving, failure injection, persistence and sensitivity analysis.

use kvscale::cluster::data::uniform_partitions;
use kvscale::cluster::{run_open_loop, run_query, ClusterConfig, ClusterData, NodeFailure};
use kvscale::model::architecture::{optimize_for_architecture, Architecture};
use kvscale::model::sensitivity::{dominant_parameter, Parameter};
use kvscale::prelude::*;
use kvscale::store::StorageHierarchy;
use kvscale::workloads::datamodels::custom_partitions;

#[test]
fn tiering_steps_compose_with_the_query_model() {
    let hier = StorageHierarchy::knl_like();
    let row_bytes = 250 * 46;
    // Query-time surcharge grows monotonically with working-set size.
    let mut prev = 0.0;
    for ws_gib in [1u64, 50, 500, 4_096] {
        let ms = hier.read_ms(row_bytes, ws_gib << 30);
        assert!(ms >= prev, "tiering cost not monotone at {ws_gib} GiB");
        prev = ms;
    }
    // The cliffs are exactly the cumulative capacities.
    let cliffs = hier.capacity_cliffs();
    assert_eq!(cliffs.len(), hier.tiers().len() - 1);
}

#[test]
fn sharded_master_model_and_simulator_agree_on_direction() {
    // Model: sharding helps the slow master's fine-grained query.
    let model = SystemModel::paper_slow();
    let (_, single) = optimize_for_architecture(&model, Architecture::SingleMaster, 100_000.0, 8);
    let (_, sharded) = optimize_for_architecture(
        &model,
        Architecture::ShardedMasters { shards: 4 },
        100_000.0,
        8,
    );
    assert!(sharded.total_ms() < single.total_ms());

    // Simulator: same direction on a real run.
    let parts = custom_partitions(20_000, 2_000, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
    let mut d1 = ClusterData::load(8, 1, TableOptions::default(), parts.clone());
    let mut d2 = ClusterData::load(8, 1, TableOptions::default(), parts);
    let cfg1 = ClusterConfig::paper_slow_master(8).deterministic();
    let mut cfg4 = cfg1.clone();
    cfg4.master_shards = 4;
    let t1 = run_query(&cfg1, &mut d1, &keys).makespan;
    let t4 = run_query(&cfg4, &mut d2, &keys).makespan;
    assert!(t4 < t1, "simulated sharding didn't help: {t4} vs {t1}");
}

#[test]
fn open_loop_latency_is_bounded_below_by_service_time() {
    let parts = uniform_partitions(100, 250, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
    let mut data = ClusterData::load(4, 1, TableOptions::default(), parts);
    let cfg = ClusterConfig::paper_optimized_master(4).deterministic();
    let r = run_open_loop(
        &cfg,
        &mut data,
        &keys,
        100.0,
        SimDuration::from_secs(1),
        "floor",
    );
    let s = r.latency_ms.expect("completions");
    // At trivial load, p50 ≈ the serial service time of a 250-cell row.
    let floor = CostModel::paper_cassandra().service_ms_for_cells(250);
    assert!(
        s.p50 >= floor * 0.9,
        "p50 {} below service floor {floor}",
        s.p50
    );
    assert!(
        s.p50 <= floor * 2.5,
        "p50 {} far above the floor {floor}",
        s.p50
    );
}

#[test]
fn failover_end_to_end_through_the_facade_types() {
    let parts = uniform_partitions(80, 50, 4);
    let keys: Vec<PartitionKey> = parts.iter().map(|(pk, _)| pk.clone()).collect();
    let mut data = ClusterData::load(5, 3, TableOptions::default(), parts);
    let mut cfg = ClusterConfig::paper_optimized_master(5).deterministic();
    cfg.replication_factor = 3;
    cfg.failures = vec![
        NodeFailure {
            node: 1,
            at: SimDuration::ZERO,
        },
        NodeFailure {
            node: 3,
            at: SimDuration::ZERO,
        },
    ];
    cfg.failure_timeout = SimDuration::from_millis(50);
    // Two of five nodes dead, rf=3: every key still has a live replica.
    let result = run_query(&cfg, &mut data, &keys);
    assert_eq!(result.total_cells, 80 * 50);
    assert!(!result.report.requests_per_node.contains_key(&1));
    assert!(!result.report.requests_per_node.contains_key(&3));
}

#[test]
fn snapshot_survives_a_simulated_node_replacement() {
    // Persist a node's table, "replace the node", restore, and verify a
    // query over the restored table answers identically.
    let mut original = Table::new(TableOptions::default());
    for p in 0..20u64 {
        for c in 0..30u64 {
            original.put(PartitionKey::from_id(p), Cell::synthetic(c, (c % 4) as u8));
        }
    }
    let images = original.snapshot();
    let mut replacement = Table::restore(TableOptions::default(), &images).expect("restore");
    for p in 0..20u64 {
        let (a, _) = original.get(&PartitionKey::from_id(p));
        let (b, _) = replacement.get(&PartitionKey::from_id(p));
        assert_eq!(a, b, "partition {p} diverged after restore");
    }
}

#[test]
fn sensitivity_tracks_the_bottleneck_transitions() {
    // The dominant parameter must follow the §V-B story: fixing the master
    // moves the leverage into the database tier.
    let slow = SystemModel::paper_slow();
    let fast = SystemModel::paper_optimized();
    assert_eq!(
        dominant_parameter(&slow, 10_000.0, 100.0, 16),
        Parameter::MasterTxPerMessage
    );
    assert_ne!(
        dominant_parameter(&fast, 10_000.0, 100.0, 16),
        Parameter::MasterTxPerMessage
    );
}

#[test]
fn study_run_custom_matches_preset_granularity() {
    // run_custom at a preset's partition count must behave like the preset.
    let study = Study::new(10_000);
    let preset = study.run(kvscale::workloads::DataModel::Fine, 4);
    let custom = study.run_custom(100, 4); // fine = 10 000/100-cell = 100 parts
    assert_eq!(preset.total_cells, custom.total_cells);
    assert_eq!(preset.messages, custom.messages);
}
