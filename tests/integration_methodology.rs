//! End-to-end tests of the four-step methodology through the `Study`
//! facade: scalability analysis → stage tracing → bottleneck
//! classification → model calibration.

use kvscale::prelude::*;
use kvscale::workloads::DataModel;

const ELEMENTS: u64 = 20_000;

#[test]
fn scalability_table_invariants() {
    let study = Study::new(ELEMENTS);
    let table = study.scalability(&DataModel::ALL, &[1, 2, 4]);
    assert_eq!(table.cells.len(), 9);
    for cell in &table.cells {
        assert!(cell.observed_ms > 0.0, "{cell:?}");
        // The balanced estimate can never exceed the observation.
        assert!(cell.balanced_ms <= cell.observed_ms + 1e-9, "{cell:?}");
        // Overheads versus ideal are non-negative by construction at n=1.
        if cell.nodes == 1 {
            assert!(cell.overhead_vs_ideal().abs() < 1e-9);
        }
    }
    // More nodes must help models with enough partitions to spread (at
    // this reduced scale Coarse has only 2 partitions, which can both land
    // on one node — itself a Formula 1 lesson).
    for model in [DataModel::Medium, DataModel::Fine] {
        let t1 = table.get(model, 1).unwrap().observed_ms;
        let t4 = table.get(model, 4).unwrap().observed_ms;
        assert!(t4 < t1, "{model:?}: {t4} !< {t1}");
    }
}

#[test]
fn slow_master_changes_fine_grained_bottleneck() {
    // The paper's Figure 1 → Figure 5 transition: with the slow master the
    // fine-grained workload is master-bound; the optimized master frees it.
    // Needs enough keys for the 150 µs/message cost to dominate.
    let elements = 100_000;
    let slow = Study::with_slow_master(elements);
    let fast = Study::new(elements);
    let slow_run = slow.run(DataModel::Fine, 8);
    let fast_run = fast.run(DataModel::Fine, 8);
    assert!(
        matches!(slow_run.report.bottleneck, Bottleneck::MasterSend { .. }),
        "slow master: {:?}",
        slow_run.report.bottleneck
    );
    assert!(
        !matches!(fast_run.report.bottleneck, Bottleneck::MasterSend { .. }),
        "fast master: {:?}",
        fast_run.report.bottleneck
    );
    assert!(fast_run.makespan < slow_run.makespan);
    // Same answers regardless of the master's speed.
    assert_eq!(slow_run.counts_by_kind, fast_run.counts_by_kind);
}

#[test]
fn issue_span_matches_formula3() {
    let study = Study::with_slow_master(ELEMENTS);
    let result = study.run(DataModel::Fine, 4);
    let keys = DataModel::Fine.partitions_for(ELEMENTS) as f64;
    let expected_ms = keys * 0.150;
    let got_ms = result.issue_span.as_millis_f64();
    assert!(
        (got_ms - expected_ms).abs() / expected_ms < 0.25,
        "issue span {got_ms} vs Formula 3 {expected_ms}"
    );
}

#[test]
fn profile_gantt_covers_all_stages_and_nodes() {
    let study = Study::new(ELEMENTS);
    let (result, gantt) = study.profile(DataModel::Medium, 4);
    for stage in Stage::ALL {
        assert!(gantt.contains(stage.name()), "missing stage {stage}");
    }
    for &node in result.requests_per_node().keys() {
        assert!(
            gantt.contains(&format!("node {node}")),
            "missing node {node} in gantt"
        );
    }
}

#[test]
fn calibration_then_optimization_is_consistent() {
    let mut study = Study::new(50_000);
    study.config = study.config.deterministic();
    let cal = study.calibrate();
    // The calibrated model must agree with the generating cost model to
    // within a few percent on a mid-size row.
    let predicted = cal.system.db.query_time.query_time_ms(500.0);
    let truth = CostModel::paper_cassandra().service_ms_for_cells(500);
    assert!(
        (predicted - truth).abs() / truth < 0.10,
        "calibrated {predicted} vs truth {truth}"
    );
    // And its optimizer must beat naive extreme choices.
    let opt = cal.optimize(8);
    let coarse = cal
        .system
        .predict_for_total(cal.total_elements as f64, 10.0, 8)
        .total_ms();
    let fine = cal
        .system
        .predict_for_total(cal.total_elements as f64, cal.total_elements as f64, 8)
        .total_ms();
    assert!(opt.total_ms() <= coarse);
    assert!(opt.total_ms() <= fine);
}

#[test]
fn study_reruns_are_deterministic() {
    let study = Study::new(ELEMENTS);
    let a = study.run(DataModel::Coarse, 4);
    let b = study.run(DataModel::Coarse, 4);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.report.requests_per_node, b.report.requests_per_node);
    assert_eq!(a.counts_by_kind, b.counts_by_kind);
}
